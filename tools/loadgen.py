#!/usr/bin/env python
"""Replay a recorded trace against a live HTTP front door.

The network-edge parity gate, as a standalone process::

    PYTHONPATH=src python tools/loadgen.py tests/traces/mixed.jsonl \
        --url 127.0.0.1:8018 [--token SECRET] [--batch 16] [--loop 2]

Loads the trace, checks the server's ``/v1/healthz`` graph
fingerprints against the trace header (a mismatched deployment fails
in one line, not a wall of digest diffs), replays every request
through ``POST /v1/batch`` windows (``--batch 1`` uses
``POST /v1/query``), and diffs each returned ``digest`` against the
recorded one.  Exit status:

* ``0`` — every digest matched (the trace is the contract);
* ``1`` — digest mismatches, missing graphs, or non-2xx answers;
* ``2`` — usage / environment errors (bad URL, unreadable trace).

The ``--ready-file`` flag pairs with ``serve --http ...
--http-ready-file``: it waits for the server to write its bound
address, so scripts can use port 0 without a race.  The ``http-smoke``
CI job drives exactly this pairing on both execution backends.

All the actual replay logic lives in
:mod:`repro.service.api.client`; this file is argument parsing.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not os.environ.get("PYTHONPATH"):
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.errors import TigrError  # noqa: E402
from repro.service import load_trace  # noqa: E402
from repro.service.api.client import (  # noqa: E402
    DEFAULT_HTTP_TIMEOUT_S,
    replay_trace_http,
)


def _wait_for_ready_file(path: str, timeout_s: float) -> str:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                address = fh.read().strip()
            if address:
                return address
        time.sleep(0.1)
    raise TigrError(
        f"server never wrote its address to {path!r} "
        f"within {timeout_s:.0f}s"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/loadgen.py",
        description="Replay a recorded trace over HTTP and verify digests.",
    )
    parser.add_argument("trace", help="trace JSONL path (trace-v1 schema)")
    parser.add_argument("--url", default=None, metavar="HOST:PORT",
                        help="front door address (or use --ready-file)")
    parser.add_argument("--ready-file", default=None, metavar="PATH",
                        help="read the address from PATH (written by "
                             "serve --http ... --http-ready-file)")
    parser.add_argument("--ready-timeout", type=float, default=30.0,
                        help="seconds to wait for --ready-file (default 30)")
    parser.add_argument("--token", default=None,
                        help="bearer token, if the server requires auth")
    parser.add_argument("--batch", type=int, default=16,
                        help="requests per /v1/batch window; 1 uses "
                             "/v1/query (default 16)")
    parser.add_argument("--loop", type=int, default=1,
                        help="replay the trace N times (default 1)")
    parser.add_argument("--speed", type=float, default=0.0,
                        help="pacing: 0 = as fast as possible (default), "
                             "1 = recorded gaps, N = N x faster")
    parser.add_argument("--no-verify", action="store_true",
                        help="submit without digest checking (pure load)")
    parser.add_argument("--no-graph-check", action="store_true",
                        help="skip the healthz fingerprint pre-check")
    parser.add_argument("--malformed", choices=("strict", "skip"),
                        default="strict",
                        help="malformed trace-line policy (default strict)")
    parser.add_argument("--timeout", type=float,
                        default=DEFAULT_HTTP_TIMEOUT_S,
                        help="per-request socket timeout in seconds")
    args = parser.parse_args(argv)

    if bool(args.url) == bool(args.ready_file):
        parser.error("exactly one of --url / --ready-file is required")

    try:
        url = args.url or _wait_for_ready_file(
            args.ready_file, args.ready_timeout
        )
        trace = load_trace(args.trace, on_malformed=args.malformed)
        report = replay_trace_http(
            trace,
            url,
            token=args.token,
            batch=max(1, args.batch),
            loop=max(1, args.loop),
            speed=args.speed,
            verify=not args.no_verify,
            check_graphs=not args.no_graph_check,
            timeout_s=args.timeout,
        )
    except TigrError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report.source = args.trace
    print(report.to_text())
    if not report.ok:
        return 1
    if not report.digests_checked and report.results_failed:
        return 1  # nothing to verify against, and queries failed
    return 0


if __name__ == "__main__":
    sys.exit(main())
