#!/usr/bin/env python
"""Prove every seeded analyzer fixture still trips its rule.

CI runs this right after ``analyze --strict`` passes on the repo: a
clean tree plus fixtures that still fire is the evidence the gate
means something.  Each file under ``tests/fixtures/analyze/`` is
named ``<ruleid>_<slug>.py``; the analyzer must exit non-zero under
``--strict`` on it and report the encoded rule id.
"""

import contextlib
import io
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "fixtures", "analyze")

try:
    from repro.analyze import runner
except ImportError:  # source checkout without `pip install -e .`
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.analyze import runner


def main() -> int:
    names = sorted(
        name
        for name in os.listdir(FIXTURES)
        if name.endswith(".py") and not name.startswith("_")
    )
    if not names:
        print(f"no fixtures found under {FIXTURES}", file=sys.stderr)
        return 1
    failures = []
    for name in names:
        expected = name.split("_", 1)[0].upper()
        path = os.path.join(FIXTURES, name)
        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = runner.main([path, "--strict", "--format", "json"])
        fired = set(json.loads(stdout.getvalue())["counts"])
        if code == 0:
            failures.append(f"{name}: --strict exited 0 (nothing fired)")
        elif expected not in fired:
            failures.append(
                f"{name}: expected {expected}, got {sorted(fired) or 'none'}"
            )
        else:
            print(f"ok {name}: {expected} fired, strict exit {code}")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    print(f"{len(names) - len(failures)}/{len(names)} fixtures fired")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
