#!/usr/bin/env python
"""Fail on broken intra-repo markdown links.

Scans every tracked ``*.md`` file for inline links and images,
resolves relative targets against the linking file's directory, and
exits non-zero listing anything that does not resolve:

* a relative path target must exist (file or directory);
* a ``#fragment`` on a markdown target must match a heading in that
  file (GitHub anchor rules: lowercase, punctuation stripped, spaces
  to dashes; repeated headings get ``-1``, ``-2``, ... suffixes);
* every ``docs/*.md`` file must be linked from the README's
  documentation index — a manual page nobody can discover is a
  manual page that silently rots;
* external schemes (``http:``, ``https:``, ``mailto:``) are ignored —
  this guards repo self-consistency, not the internet.

Run from anywhere: paths are resolved relative to the repo root
(parent of this file's directory).  CI runs it as the docs job; run
locally with ``python tools/check_doc_links.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: inline markdown links/images: [text](target) / ![alt](target).
#: Reference-style links are rare in this repo and not checked.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings, for anchor validation.
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)

EXTERNAL = ("http://", "https://", "mailto:", "ftp://")

#: directories never scanned (build products, caches, envs).
SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__", ".pytest_cache"}


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor id transformation (close enough)."""
    # inline code/links inside headings contribute their text only
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    """Every anchor id the file's headings produce.

    GitHub disambiguates repeated headings by appending ``-1``,
    ``-2``, ... to the second and later occurrences, so two "Example"
    sections yield ``example`` and ``example-1`` — both are valid
    link targets.
    """
    content = path.read_text(encoding="utf-8")
    anchors: set = set()
    seen: dict = {}
    for match in HEADING_RE.finditer(content):
        anchor = github_anchor(match.group(1))
        count = seen.get(anchor, 0)
        seen[anchor] = count + 1
        anchors.add(anchor if count == 0 else f"{anchor}-{count}")
    return anchors


def markdown_files() -> list:
    files = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        files.append(path)
    return files


def check_file(path: Path) -> list:
    """All broken links in one file, as human-readable strings."""
    problems = []
    content = path.read_text(encoding="utf-8")
    # strip fenced code blocks: links inside them are examples
    content = re.sub(r"```.*?```", "", content, flags=re.DOTALL)
    for match in LINK_RE.finditer(content):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        if target.startswith("#"):
            fragment = target[1:]
            if github_anchor(fragment) not in anchors_of(path):
                problems.append(f"{path.relative_to(REPO_ROOT)}: "
                                f"no heading for in-page anchor {target!r}")
            continue
        raw, _, fragment = target.partition("#")
        resolved = (path.parent / raw).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO_ROOT)}: "
                            f"target does not exist: {target!r}")
            continue
        if fragment and resolved.suffix == ".md":
            if github_anchor(fragment) not in anchors_of(resolved):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: {raw!r} has no "
                    f"heading for anchor #{fragment}"
                )
    return problems


def check_readme_index() -> list:
    """Every ``docs/*.md`` page must be reachable from the README.

    The README's documentation table is the entry point readers
    actually use; a page absent from it is effectively unpublished,
    so its absence is an error, not a style nit.
    """
    readme = REPO_ROOT / "README.md"
    docs_dir = REPO_ROOT / "docs"
    if not readme.exists() or not docs_dir.is_dir():
        return []
    content = readme.read_text(encoding="utf-8")
    linked = set()
    for match in LINK_RE.finditer(content):
        raw = match.group(1).partition("#")[0]
        if not raw or raw.startswith(EXTERNAL):
            continue
        resolved = (readme.parent / raw).resolve()
        if resolved.suffix == ".md" and docs_dir in resolved.parents:
            linked.add(resolved)
    problems = []
    for page in sorted(docs_dir.glob("*.md")):
        if page.resolve() not in linked:
            problems.append(
                f"README.md: docs page not in the documentation index: "
                f"{page.relative_to(REPO_ROOT)}"
            )
    return problems


def main() -> int:
    files = markdown_files()
    problems = check_readme_index()
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print(f"{len(problems)} broken link(s) across {len(files)} files:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"ok: {len(files)} markdown files, all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
