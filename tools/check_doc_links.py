#!/usr/bin/env python
"""Fail on broken intra-repo markdown links.

Scans every tracked ``*.md`` file for inline links and images,
resolves relative targets against the linking file's directory, and
exits non-zero listing anything that does not resolve:

* a relative path target must exist (file or directory);
* a ``#fragment`` on a markdown target must match a heading in that
  file (GitHub anchor rules: lowercase, punctuation stripped, spaces
  to dashes);
* external schemes (``http:``, ``https:``, ``mailto:``) are ignored —
  this guards repo self-consistency, not the internet.

Run from anywhere: paths are resolved relative to the repo root
(parent of this file's directory).  CI runs it as the docs job; run
locally with ``python tools/check_doc_links.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: inline markdown links/images: [text](target) / ![alt](target).
#: Reference-style links are rare in this repo and not checked.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings, for anchor validation.
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)

EXTERNAL = ("http://", "https://", "mailto:", "ftp://")

#: directories never scanned (build products, caches, envs).
SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__", ".pytest_cache"}


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor id transformation (close enough)."""
    # inline code/links inside headings contribute their text only
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    content = path.read_text(encoding="utf-8")
    return {github_anchor(m.group(1)) for m in HEADING_RE.finditer(content)}


def markdown_files() -> list:
    files = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        files.append(path)
    return files


def check_file(path: Path) -> list:
    """All broken links in one file, as human-readable strings."""
    problems = []
    content = path.read_text(encoding="utf-8")
    # strip fenced code blocks: links inside them are examples
    content = re.sub(r"```.*?```", "", content, flags=re.DOTALL)
    for match in LINK_RE.finditer(content):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        if target.startswith("#"):
            fragment = target[1:]
            if github_anchor(fragment) not in anchors_of(path):
                problems.append(f"{path.relative_to(REPO_ROOT)}: "
                                f"no heading for in-page anchor {target!r}")
            continue
        raw, _, fragment = target.partition("#")
        resolved = (path.parent / raw).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO_ROOT)}: "
                            f"target does not exist: {target!r}")
            continue
        if fragment and resolved.suffix == ".md":
            if github_anchor(fragment) not in anchors_of(resolved):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: {raw!r} has no "
                    f"heading for anchor #{fragment}"
                )
    return problems


def main() -> int:
    files = markdown_files()
    problems = []
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print(f"{len(problems)} broken link(s) across {len(files)} files:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"ok: {len(files)} markdown files, all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
