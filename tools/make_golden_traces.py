#!/usr/bin/env python
"""Regenerate the golden trace fixtures under ``tests/traces/``.

Run from the repo root::

    PYTHONPATH=src python tools/make_golden_traces.py [outdir]

Each fixture is recorded by driving a real :class:`AnalyticsService`
with a :class:`TraceRecorder` attached, so the files carry genuine
result digests; ``tests/test_service_replay.py`` replays them on both
backends and any digest drift fails the suite.  The request mixes are
fully seeded — regenerating on an unchanged tree must produce traces
that replay clean (timing fields and request UUIDs differ run to run,
digests must not).

Fixture design (see ``tests/traces/README.md``):

``bfs-heavy.jsonl``
    One analytic, many sources: 16 BFS queries on the pokec stand-in
    across the three transform flavours, exercising same-graph
    coalescing and source dedup.
``mixed.jsonl``
    Every analytic the service knows, single- and multi-source,
    varied K — the broad regression net.
``degraded.jsonl``
    The deadline paths, made deterministic by construction: udt
    queries on a graph large enough that the cold build estimate
    (x2 safety) always exceeds their 0.1s budget (degrade to raw
    CSR), then a wall of cold builds saturating every worker, then a
    10 microsecond deadline that is always already expired when a
    dispatcher finally dequeues it ("timed out in queue").  Digests
    cover values + error text only, so both outcomes replay stably.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

from repro.graph.datasets import load_dataset
from repro.service import (
    AnalyticsService,
    GraphCatalog,
    QueryRequest,
    TraceRecorder,
    dataset_graph_entry,
)

#: bump when the fixture *design* changes (not on mere regeneration).
FIXTURE_NOTE = "golden fixture v1; regenerate: tools/make_golden_traces.py"


def _record(
    path: Path,
    graphs: dict,
    requests,
    *,
    workers: int = 2,
    note: str = FIXTURE_NOTE,
) -> int:
    """Drive one service over ``requests``, capturing to ``path``."""
    recipes = {
        name: dataset_graph_entry(
            spec["dataset"], scale=spec["scale"],
            fingerprint=spec["graph"].fingerprint(),
        )
        for name, spec in graphs.items()
    }
    recorder = TraceRecorder(str(path), graphs=recipes, note=note)
    with AnalyticsService(
        GraphCatalog(), workers=workers, queue_size=256, recorder=recorder
    ) as service:
        for name, spec in graphs.items():
            service.register(name, spec["graph"])
        tickets = service.submit_batch(list(requests))
        for ticket in tickets:
            ticket.result(300.0)
    recorder.close()
    print(
        f"  {path.name}: {recorder.requests_recorded} request(s), "
        f"{recorder.results_recorded} digest(s)"
    )
    return recorder.results_recorded


def bfs_heavy(outdir: Path) -> None:
    graph = load_dataset("pokec", scale=0.2)
    rng = random.Random(20180324)
    requests = []
    for index in range(16):
        transform = ("auto", "udt", "virtual")[index % 3]
        requests.append(
            QueryRequest.single(
                "bfs", "pokec", rng.randrange(graph.num_nodes),
                transform=transform,
            )
        )
    _record(
        outdir / "bfs-heavy.jsonl",
        {"pokec": {"dataset": "pokec", "scale": 0.2, "graph": graph}},
        requests,
    )


def mixed(outdir: Path) -> None:
    graph = load_dataset("pokec", scale=0.2)
    rng = random.Random(7)
    requests = []
    for algorithm in ("bfs", "sssp", "sswp", "bc"):
        for transform in ("auto", "udt"):
            requests.append(
                QueryRequest.single(
                    algorithm, "pokec", rng.randrange(graph.num_nodes),
                    transform=transform,
                )
            )
    # multi-source lanes + a custom K + the sourceless analytics
    requests.append(
        QueryRequest(
            "bfs", "pokec",
            sources=tuple(rng.randrange(graph.num_nodes) for _ in range(4)),
            transform="udt",
        )
    )
    requests.append(
        QueryRequest(
            "sssp", "pokec",
            sources=tuple(rng.randrange(graph.num_nodes) for _ in range(3)),
            transform="virtual", degree_bound=8,
        )
    )
    requests.append(QueryRequest("cc", "pokec", transform="udt"))
    requests.append(QueryRequest("pr", "pokec", transform="virtual"))
    _record(
        outdir / "mixed.jsonl",
        {"pokec": {"dataset": "pokec", "scale": 0.2, "graph": graph}},
        requests,
    )


def degraded(outdir: Path) -> None:
    graph = load_dataset("pokec", scale=2.0)
    rng = random.Random(13)

    def source() -> int:
        return rng.randrange(graph.num_nodes)

    requests = []
    # Head of the stream, workers idle: dequeued in microseconds, but
    # the cold udt build estimate (x2 safety) dwarfs the 0.1s budget,
    # so the planner degrades to the raw CSR every time.  Degradation
    # is invisible to the digest (same answers), so a warm-cache
    # replay pass that does NOT degrade still matches.  One
    # multi-source request, not three single-source ones: a single
    # request is a single batch under every replay submission window,
    # so it can never queue behind its own siblings and expire.
    requests.append(
        QueryRequest(
            "bfs", "pokec-xl",
            sources=(source(), source(), source()),
            transform="udt", timeout_s=0.1,
        )
    )
    # A wall of distinct (algorithm, transform, K) cells: each is its
    # own batch and a cold artifact build, saturating every dispatcher
    # for far longer than the next request's deadline.
    for algorithm, transform, k in (
        ("bfs", "virtual", None),
        ("sssp", "udt", None),
        ("sssp", "virtual", None),
        ("sswp", "udt", None),
        ("bc", "udt", None),
        ("bfs", "virtual", 8),
        ("cc", "udt", None),
        ("pr", "udt", None),
    ):
        if algorithm in ("cc", "pr"):
            requests.append(
                QueryRequest(
                    algorithm, "pokec-xl", transform=transform, degree_bound=k
                )
            )
        else:
            requests.append(
                QueryRequest.single(
                    algorithm, "pokec-xl", source(),
                    transform=transform, degree_bound=k,
                )
            )
    # Tail of the stream: transform="none" so it cannot coalesce into
    # any batch above, and a 10us deadline no dispatcher can beat
    # while the wall is building.  Always "timed out in queue"; the
    # error text is part of the digest, so the failure replays stably.
    requests.append(
        QueryRequest.single(
            "bfs", "pokec-xl", source(), transform="none", timeout_s=1e-5
        )
    )
    _record(
        outdir / "degraded.jsonl",
        {"pokec-xl": {"dataset": "pokec", "scale": 2.0, "graph": graph}},
        requests,
    )


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    outdir = Path(args[0]) if args else Path("tests/traces")
    outdir.mkdir(parents=True, exist_ok=True)
    print(f"recording golden traces into {outdir}/")
    bfs_heavy(outdir)
    mixed(outdir)
    degraded(outdir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
