"""Command-line interface for the Tigr reproduction.

Subcommands::

    python -m repro info <dataset|file>          # degree statistics
    python -m repro transform <dataset> [...]    # transform + report
    python -m repro run <algorithm> <dataset>    # run an analytic
    python -m repro compare <algorithm> <dataset>  # all Table 2 methods
    python -m repro query <algorithm> <dataset>  # one query via the
                                                 # serving layer
    python -m repro analyze [paths...]           # static split-safety
                                                 # + concurrency lint
    python -m repro serve <dataset> [...]        # drive a synthetic
                                                 # workload through the
                                                 # concurrent service
    python -m repro forecast <trace> [...]       # mine traces into a
                                                 # warm-set plan for
                                                 # serve --prewarm
    python -m repro calibrate                    # measure this machine
                                                 # and cache the cost-
                                                 # model profile
    python -m repro bench [...]                  # paper experiments
                                                 # (alias of repro.bench)

Datasets are the Table 3 stand-in names (``pokec`` … ``twitter``) or
a path to an edge-list / ``.npz`` file.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional

import numpy as np

from repro.baselines import standard_methods
from repro.baselines.base import ALGORITHMS
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.core.weights import DumbWeight
from repro.errors import TigrError
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.io import load_edge_list, load_npz
from repro.graph.stats import degree_stats, estimate_diameter


def _load(name: str, *, scale: float = 1.0) -> CSRGraph:
    """Resolve a dataset name or file path into a graph."""
    if name.lower() in DATASETS:
        return load_dataset(name, scale=scale)
    if not os.path.exists(name):
        known = ", ".join(dataset_names())
        raise TigrError(f"{name!r} is neither a known dataset ({known}) nor a file")
    if name.endswith(".npz"):
        return load_npz(name)
    if name.endswith(".mtx"):
        from repro.graph.formats import load_mtx

        return load_mtx(name)
    if name.endswith((".graph", ".metis")):
        from repro.graph.formats import load_metis

        return load_metis(name)
    return load_edge_list(name)


def cmd_info(args) -> int:
    graph = _load(args.graph, scale=args.scale)
    stats = degree_stats(graph)
    print(f"graph: {graph}")
    print(f"  {'fingerprint':28s} {graph.fingerprint()}")
    for key, value in stats.as_dict().items():
        if isinstance(value, float):
            print(f"  {key:28s} {value:.4g}")
        else:
            print(f"  {key:28s} {value}")
    if args.diameter:
        print(f"  {'diameter_estimate':28s} {estimate_diameter(graph, seed=0)}")
    return 0


def cmd_transform(args) -> int:
    graph = _load(args.graph, scale=args.scale)
    if args.method == "udt":
        result = udt_transform(
            graph, args.k, dumb_weight=DumbWeight.for_algorithm(args.weights_for)
        )
        stats = result.stats
        print(f"UDT transform, K={args.k}:")
        print(f"  families split:   {stats.num_families}")
        print(f"  new nodes:        {stats.new_nodes}")
        print(f"  new edges:        {stats.new_edges}")
        print(f"  max degree after: {stats.max_degree_after}")
        print(f"  max family hops:  {stats.max_family_hops}")
        print(f"  space ratio:      {stats.space_ratio(graph, result.graph) * 100:.2f}%")
    else:
        virtual = virtual_transform(graph, args.k, coalesced=args.method == "virtual+")
        print(f"virtual transform ({'coalesced' if virtual.coalesced else 'default'}), "
              f"K={args.k}:")
        print(f"  virtual nodes: {virtual.num_virtual_nodes}")
        print(f"  max virtual degree: {virtual.max_virtual_degree()}")
        print(f"  space ratio:   {virtual.space_ratio() * 100:.2f}%")
    return 0


def _pick_method(name: str, k_udt: int, k_v: int):
    for method in standard_methods(k_udt=k_udt, k_v=k_v):
        if method.name == name:
            return method
    raise TigrError(
        f"unknown method {name!r}; known: "
        + ", ".join(m.name for m in standard_methods())
    )


def cmd_run(args) -> int:
    graph = _load(args.graph, scale=args.scale)
    method = _pick_method(args.method, args.k_udt, args.k_v)
    spec = ALGORITHMS[args.algorithm]
    source = args.source
    if spec.needs_source and source is None:
        source = int(np.argmax(graph.out_degrees()))
        print(f"(using max-outdegree source {source})")
    result = method.run(graph, args.algorithm, source)
    if result.oom:
        print(f"{method.name}: OOM (needs {result.footprint_bytes:,} bytes)")
        return 1
    metrics = result.metrics
    print(f"{args.algorithm} via {method.name}:")
    print(f"  simulated time:  {result.time_ms:.4f} ms")
    print(f"  iterations:      {metrics.num_iterations}")
    print(f"  warp efficiency: {metrics.warp_efficiency:.1%}")
    print(f"  instructions:    {metrics.total_instructions:.3e}")
    finite = result.values[np.isfinite(result.values)]
    print(f"  values: {len(finite)} finite, "
          f"range [{finite.min():.4g}, {finite.max():.4g}]" if len(finite)
          else "  values: none finite")
    return 0


def cmd_compare(args) -> int:
    graph = _load(args.graph, scale=args.scale)
    spec = ALGORITHMS[args.algorithm]
    source = args.source
    if spec.needs_source and source is None:
        source = int(np.argmax(graph.out_degrees()))
    rows = []
    for method in standard_methods(k_udt=args.k_udt, k_v=args.k_v):
        if not method.supports(args.algorithm):
            rows.append((method.name, "-"))
            continue
        result = method.run(graph, args.algorithm, source)
        rows.append((method.name, result.display_time))
    width = max(len(name) for name, _ in rows)
    print(f"{args.algorithm} on {args.graph} (simulated ms):")
    for name, cell in rows:
        print(f"  {name:{width}s}  {cell}")
    return 0


def _parse_sources(args, graph: CSRGraph):
    """Source list from --source/--sources, defaulting to the max-degree hub."""
    sources = []
    if args.source is not None:
        sources.append(int(args.source))
    if args.sources:
        try:
            sources.extend(int(s) for s in args.sources.split(","))
        except ValueError:
            raise TigrError(
                f"--sources must be comma-separated integers, got {args.sources!r}"
            ) from None
    if not sources and ALGORITHMS[args.algorithm].needs_source:
        hub = int(np.argmax(graph.out_degrees()))
        print(f"(using max-outdegree source {hub})")
        sources = [hub]
    return sources


def _apply_kernel_backend(args) -> None:
    """Pin the engine kernel backend for this process tree.

    The service builds its own :class:`EngineOptions` deep inside the
    worker pool, so the CLI flag travels as ``$REPRO_KERNEL_BACKEND``
    — the engines' documented fallback — which process workers inherit
    at spawn.  Validated eagerly so a typo fails before any work runs.
    """
    choice = getattr(args, "kernel_backend", None)
    if choice is None:
        return
    from repro.engine import kernels

    if choice != "auto" and choice not in kernels.registered_backends():
        known = ", ".join(("auto",) + kernels.registered_backends())
        raise TigrError(
            f"unknown kernel backend {choice!r}; known: {known}"
        )
    os.environ["REPRO_KERNEL_BACKEND"] = choice


def _apply_catalog_policy(args) -> None:
    """Pin the catalog eviction policy for this process tree.

    Same shape as :func:`_apply_kernel_backend`: the choice travels as
    ``$REPRO_CATALOG_POLICY`` so every :class:`GraphCatalog` this
    process builds — including the ones process-pool workers build for
    the shared write-through tier — evicts by the same rules
    (docs/cache-economics.md).  Validated eagerly.
    """
    choice = getattr(args, "catalog_policy", None)
    if choice is None:
        return
    from repro.service import CATALOG_POLICY_ENV, resolve_policy

    os.environ[CATALOG_POLICY_ENV] = resolve_policy(choice)


def _load_warm_plan(args):
    """The warm-set plan the serve flags describe, or ``None``."""
    plan_path = getattr(args, "prewarm", None)
    trace_path = getattr(args, "prewarm_from_trace", None)
    if plan_path and trace_path:
        raise TigrError(
            "--prewarm and --prewarm-from-trace are mutually exclusive"
        )
    if plan_path:
        from repro.service import load_plan

        return load_plan(plan_path)
    if trace_path:
        from repro.service import forecast_traces

        return forecast_traces(
            [trace_path],
            on_malformed=getattr(args, "malformed", "strict"),
        )
    return None


def _start_prewarmer(args, service, graphs=None):
    """Kick off background pre-warming when asked; returns it or None.

    With ``--prewarm-wait S`` the call blocks up to ``S`` seconds
    (0 = until done) and prints a summary — the shape trace replays
    and benchmarks want, where "cold start" means *before* the warm
    set exists.
    """
    plan = _load_warm_plan(args)
    if plan is None:
        return None
    from repro.service import Prewarmer

    prewarmer = Prewarmer(
        service, plan, graphs=graphs,
        top=getattr(args, "prewarm_top", 0) or 0,
    )
    prewarmer.start()
    wait = getattr(args, "prewarm_wait", None)
    if wait is not None:
        prewarmer.join(timeout=wait if wait > 0 else None)
        print(f"prewarm: built={prewarmer.built} "
              f"already_warm={prewarmer.already_warm} "
              f"skipped={prewarmer.skipped}", flush=True)
        for error in prewarmer.errors:
            print(f"prewarm skip: {error}", file=sys.stderr)
    return prewarmer


def cmd_forecast(args) -> int:
    """``forecast``: mine recorded traces into a warm-set plan."""
    from repro.service import forecast_traces, save_plan

    plan = forecast_traces(
        args.traces, buckets=args.buckets, on_malformed=args.malformed
    )
    shown = plan.top(args.top) if args.top else plan
    if args.json:
        import json

        print(json.dumps(shown.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"warm-set forecast from {len(plan.sources)} trace(s): "
              f"{plan.requests_total} request(s) over "
              f"{plan.trace_seconds:.1f}s, {len(plan.entries)} cacheable "
              f"artifact(s), {plan.uncacheable} uncacheable")
        if shown.entries:
            print(f"  {'score':>10s} {'reqs':>5s} {'est build':>10s}  artifact")
        for entry in shown.entries:
            print(f"  {entry.score:10.4f} {entry.requests:5d} "
                  f"{entry.est_build_s:9.4f}s  {entry.graph}/{entry.algorithm} "
                  f"{entry.kind} K={entry.k} fp={entry.fingerprint[:12]}")
    if args.out:
        save_plan(shown, args.out)
        print(f"wrote warm-set plan ({len(shown.entries)} entries) "
              f"to {args.out}")
    return 0


def cmd_query(args) -> int:
    from repro.service import AnalyticsService, GraphCatalog, QueryRequest

    _apply_kernel_backend(args)
    _apply_catalog_policy(args)
    graph = _load(args.graph, scale=args.scale)
    sources = _parse_sources(args, graph)
    catalog = GraphCatalog(spill_dir=args.spill_dir)
    with AnalyticsService(
        catalog, workers=args.workers, backend=args.backend
    ) as service:
        service.register(args.graph, graph)
        for round_no in range(args.repeat):
            requests = (
                [QueryRequest.single(args.algorithm, args.graph, s,
                                     transform=args.transform,
                                     degree_bound=args.k,
                                     timeout_s=args.timeout)
                 for s in sources]
                or [QueryRequest(args.algorithm, args.graph,
                                 transform=args.transform,
                                 degree_bound=args.k,
                                 timeout_s=args.timeout)]
            )
            results = [t.result() for t in service.submit_batch(requests)]
            for result in results:
                if not result.ok:
                    print(f"error: {result.error}", file=sys.stderr)
                    return 2
            label = f"round {round_no + 1}: " if args.repeat > 1 else ""
            head = results[0]
            print(f"{label}{args.algorithm} via service "
                  f"(transform={head.transform}, K={head.degree_bound}):")
            print(f"  cache hit:    {head.cache_hit}"
                  + (" (degraded)" if head.degraded else ""))
            print(f"  batched with: {head.batched_with} other request(s)")
            for stage, ms in head.timings.as_dict().items():
                print(f"  {stage:13s} {ms * 1e3:.3f} ms")
            for result in results:
                for source, values in result.values.items():
                    finite = values[np.isfinite(values)]
                    where = f"source {source}" if source >= 0 else "all nodes"
                    print(f"  values[{where}]: {len(finite)} finite, "
                          f"range [{finite.min():.4g}, {finite.max():.4g}]"
                          if len(finite) else f"  values[{where}]: none finite")
        if args.stats:
            print("service metrics:")
            for key, value in service.metrics.summary().items():
                print(f"  {key:28s} {value:.4g}"
                      if isinstance(value, float) else f"  {key:28s} {value}")
    return 0


def cmd_analyze(args) -> int:
    from repro.analyze.runner import run as analyze_run

    return analyze_run(args)


def _trace_graph_entry(name: str, scale: float, graph) -> dict:
    """A trace-header recipe for the graph the CLI loaded."""
    from repro.service import dataset_graph_entry

    if name.lower() in DATASETS:
        return dataset_graph_entry(
            name.lower(), scale=scale, fingerprint=graph.fingerprint()
        )
    if name.endswith(".npz"):
        return {"path": name, "fingerprint": graph.fingerprint()}
    # other file formats replay via overrides only; record the
    # fingerprint so a mismatched override is still caught.
    return {"fingerprint": graph.fingerprint()}


def _make_service(args, catalog, *, recorder=None):
    """Build the serve tier the flags ask for: plain or sharded.

    ``--shards N`` (N >= 1) switches every serve mode — synthetic,
    trace replay, HTTP — to the scatter-gather
    :class:`~repro.service.sharding.ShardedAnalyticsService`, with
    ``--shard-remote``/``--quota``/``--priority``/``--route`` layering
    remote executors and tenant policy on top (docs/sharding.md).
    """
    from repro.service import AnalyticsService

    kwargs = dict(
        workers=args.workers, backend=args.backend,
        queue_size=args.queue_size, default_timeout_s=args.timeout,
        recorder=recorder,
    )
    shards = getattr(args, "shards", 0) or 0
    if shards <= 0:
        return AnalyticsService(catalog, **kwargs)
    from repro.service import (
        RoutingPolicy,
        ShardedAnalyticsService,
        parse_host_port,
        parse_priority_arg,
        parse_quota_arg,
    )

    policy = RoutingPolicy(
        quotas=dict(parse_quota_arg(v) for v in (args.quota or ())),
        priorities=dict(parse_priority_arg(v) for v in (args.priority or ())),
        route=args.route,
    )
    remotes = tuple(parse_host_port(v) for v in (args.shard_remote or ()))
    return ShardedAnalyticsService(
        catalog, shards=shards, shard_remotes=remotes, policy=policy, **kwargs
    )


def cmd_serve_trace(args) -> int:
    """``serve --trace``: drive the service from a recorded stream."""
    from repro.service import GraphCatalog, TraceRecorder, load_trace, replay_trace

    trace = load_trace(args.trace, on_malformed=args.malformed)
    overrides = {}
    if args.graph is not None:
        overrides[args.graph] = _load(args.graph, scale=args.scale)
    recorder = None
    if args.record:
        recorder = TraceRecorder(args.record, graphs=trace.header.graphs)
    catalog = GraphCatalog(
        memory_budget_bytes=args.cache_mb * 1024 * 1024,
        spill_dir=args.spill_dir,
    )
    try:
        with _make_service(args, catalog) as service:
            _start_prewarmer(args, service, overrides)
            report = replay_trace(
                trace,
                service=service,
                speed=args.speed,
                loop=args.loop,
                batch=args.batch,
                graphs=overrides,
                recorder=recorder,
            )
            report.source = args.trace
            print(report.to_text())
            print("service metrics:")
            for key, value in service.metrics.summary().items():
                print(f"  {key:28s} {value:.4g}"
                      if isinstance(value, float) else f"  {key:28s} {value}")
    finally:
        if recorder is not None:
            recorder.close()
    if not report.ok:
        return 1
    if not report.digests_checked and report.results_failed:
        return 1  # nothing to verify against, and queries failed
    return 0


def _parse_host_port(spec: str) -> tuple:
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise TigrError(
            f"--http expects HOST:PORT (port 0 picks one), got {spec!r}"
        )
    return host or "127.0.0.1", int(port)


def cmd_serve_http(args) -> int:
    """``serve --http``: front the service with the HTTP/JSON API."""
    from repro.service import GraphCatalog
    from repro.service.api import run_server

    host, port = _parse_host_port(args.http)
    graphs = {}
    if args.graph is not None:
        graphs[args.graph] = _load(args.graph, scale=args.scale)
    if args.trace is not None:
        from repro.service import load_trace, resolve_trace_graphs

        trace = load_trace(args.trace, on_malformed=args.malformed)
        graphs = resolve_trace_graphs(trace, overrides=graphs)
    if not graphs:
        raise TigrError(
            "serve --http needs a graph argument and/or --trace with "
            "graph recipes, else every query would answer 404"
        )
    catalog = GraphCatalog(
        memory_budget_bytes=args.cache_mb * 1024 * 1024,
        spill_dir=args.spill_dir,
    )
    with _make_service(args, catalog) as service:
        for name, graph in graphs.items():
            service.register(name, graph)
        prewarmer = None
        plan = _load_warm_plan(args)
        if plan is not None:
            from repro.service import Prewarmer

            # Handed to the server unstarted: ApiServer.start() kicks
            # it off right before binding, and /v1/healthz reports it.
            prewarmer = Prewarmer(
                service, plan, graphs=graphs,
                top=getattr(args, "prewarm_top", 0) or 0,
            )

        def ready(bound_host: str, bound_port: int) -> None:
            address = f"{bound_host}:{bound_port}"
            print(f"serving {', '.join(sorted(graphs))} on http://{address} "
                  f"({service.backend} backend, {service.workers} workers); "
                  f"Ctrl-C drains and exits", flush=True)
            if args.http_ready_file:
                with open(args.http_ready_file, "w", encoding="utf-8") as fh:
                    fh.write(address + "\n")

        run_server(
            service,
            ready_callback=ready,
            host=host,
            port=port,
            auth_tokens=tuple(args.auth_token or ()),
            rate_limit=args.rate_limit,
            burst=args.burst,
            prewarmer=prewarmer,
        )
        print("service metrics:")
        for key, value in service.metrics.summary().items():
            print(f"  {key:28s} {value:.4g}"
                  if isinstance(value, float) else f"  {key:28s} {value}")
    return 0


def cmd_serve(args) -> int:
    import random

    from repro.service import GraphCatalog, QueryRequest

    _apply_kernel_backend(args)
    _apply_catalog_policy(args)
    if args.http is not None:
        return cmd_serve_http(args)
    if args.trace is not None:
        return cmd_serve_trace(args)
    if args.graph is None:
        raise TigrError("serve needs a graph (or --trace with graph recipes)")
    graph = _load(args.graph, scale=args.scale)
    rng = random.Random(args.seed)
    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    for algorithm in algorithms:
        if algorithm not in ALGORITHMS:
            raise TigrError(
                f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
            )
    catalog = GraphCatalog(
        memory_budget_bytes=args.cache_mb * 1024 * 1024,
        spill_dir=args.spill_dir,
    )
    recorder = None
    if args.record:
        from repro.service import TraceRecorder

        recorder = TraceRecorder(
            args.record,
            graphs={args.graph: _trace_graph_entry(args.graph, args.scale, graph)},
        )
    start = time.perf_counter()
    with _make_service(args, catalog, recorder=recorder) as service:
        service.register(args.graph, graph)
        _start_prewarmer(args, service)
        n = graph.num_nodes
        requests = []
        for _ in range(args.requests):
            algorithm = rng.choice(algorithms)
            if ALGORITHMS[algorithm].needs_source:
                requests.append(QueryRequest.single(
                    algorithm, args.graph, rng.randrange(n)))
            else:
                requests.append(QueryRequest(algorithm, args.graph))
        tickets = []
        for lo in range(0, len(requests), args.batch):
            tickets.extend(service.submit_batch(requests[lo:lo + args.batch]))
        results = [t.result() for t in tickets]
        elapsed = time.perf_counter() - start
        ok = sum(r.ok for r in results)
        print(f"served {ok}/{len(results)} queries in {elapsed:.3f}s "
              f"({ok / elapsed:.1f} queries/s, {args.workers} workers)")
        print("service metrics:")
        for key, value in service.metrics.summary().items():
            print(f"  {key:28s} {value:.4g}"
                  if isinstance(value, float) else f"  {key:28s} {value}")
    if recorder is not None:
        recorder.close()
        print(f"recorded {recorder.requests_recorded} request(s) / "
              f"{recorder.results_recorded} digest(s) to {args.record}")
    return 0 if ok == len(results) else 1


def cmd_shard_host(args) -> int:
    """``shard-host``: serve shard slices to a remote sharded service."""
    from repro.service import ShardHostServer, parse_host_port

    host, port = parse_host_port(args.listen)
    server = ShardHostServer((host, port))
    bound = f"{server.server_address[0]}:{server.server_address[1]}"
    print(f"shard host listening on {bound}; Ctrl-C exits", flush=True)
    if args.ready_file:
        with open(args.ready_file, "w", encoding="utf-8") as fh:
            fh.write(bound + "\n")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def cmd_calibrate(args) -> int:
    """Measure this machine and cache the cost-model profile."""
    from repro.engine import costmodel

    profile, saved_to = costmodel.calibrate_and_save(
        scale=args.scale, seed=args.seed
    )
    if args.json:
        import json

        print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
        print(f"saved to {saved_to}", file=sys.stderr)
        return 0
    print(f"calibration profile ({profile.machine}):")
    print(f"  {'probe graph':28s} {profile.probe_nodes} nodes / "
          f"{profile.probe_edges} edges")
    print(f"  {'run overhead':28s} {profile.run_overhead_s * 1e6:.1f} us")
    print(f"  {'scatter (minimum.at)':28s} "
          f"{profile.scatter_medges_s:.1f} Medges/s")
    print(f"  {'gather (fancy index)':28s} "
          f"{profile.gather_medges_s:.1f} Medges/s")
    print(f"  {'lane pack (bitwise_or.at)':28s} "
          f"{profile.lane_pack_medges_s:.1f} Medges/s")
    print(f"  {'push (per edge)':28s} {profile.push_per_edge_s * 1e9:.2f} ns")
    print(f"  {'pull (per edge)':28s} {profile.pull_per_edge_s * 1e9:.2f} ns")
    print(f"  {'pull threshold':28s} {profile.pull_threshold():.3f}")
    for name in sorted(profile.backend_edges_per_s):
        eps = profile.backend_edges_per_s[name]
        print(f"  {'backend ' + name:28s} {eps / 1e6:.1f} Medges/s")
    for family in sorted(profile.lanes):
        fit = profile.lanes[family]
        cross = fit.crossover_sources
        verdict = ("lanes never win" if cross == float("inf")
                   else f"lanes win at >= {cross:.1f} sources")
        print(f"  {'lanes ' + family:28s} {verdict}")
    print(f"saved to {saved_to}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    import repro

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Tigr (ASPLOS'18) reproduction toolkit.",
    )
    parser.add_argument(
        "--version", action="version", version=repro.version_string(),
        help="print the version (the same string GET /v1/healthz reports)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="degree statistics of a graph")
    p.add_argument("graph")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--diameter", action="store_true",
                   help="also estimate the diameter (slower)")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("transform", help="apply a split transformation")
    p.add_argument("graph")
    p.add_argument("--method", choices=("udt", "virtual", "virtual+"),
                   default="virtual+")
    p.add_argument("--k", type=int, default=10, help="degree bound K")
    p.add_argument("--weights-for", default="sssp",
                   help="analytic deciding the dumb-weight policy (udt only)")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=cmd_transform)

    for name, fn in (("run", cmd_run), ("compare", cmd_compare)):
        p = sub.add_parser(
            name,
            help="run one analytic" if name == "run" else "compare all methods",
        )
        p.add_argument("algorithm", choices=sorted(ALGORITHMS))
        p.add_argument("graph")
        if name == "run":
            p.add_argument("--method", default="tigr-v+")
        p.add_argument("--source", type=int, default=None)
        p.add_argument("--k-udt", type=int, default=16)
        p.add_argument("--k-v", type=int, default=10)
        p.add_argument("--scale", type=float, default=1.0)
        p.set_defaults(func=fn)

    p = sub.add_parser("query", help="run one analytic through the serving layer")
    p.add_argument("algorithm", choices=sorted(ALGORITHMS))
    p.add_argument("graph")
    p.add_argument("--source", type=int, default=None)
    p.add_argument("--sources", default=None,
                   help="comma-separated source list (batched, deduplicated)")
    p.add_argument("--transform",
                   choices=("auto", "none", "udt", "virtual", "virtual+"),
                   default="auto")
    p.add_argument("--k", type=int, default=None, help="degree bound override")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-request deadline in seconds")
    p.add_argument("--repeat", type=int, default=1,
                   help="submit the query N times (shows warm-cache hits)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--backend", choices=("threads", "processes"), default=None,
                   help="execution backend (default: $REPRO_SERVICE_WORKERS "
                        "or threads; see docs/operations.md)")
    p.add_argument("--spill-dir", default=None,
                   help="directory for evicted-artifact .npz spill "
                        "(with --backend processes, also the tier worker "
                        "processes hydrate from)")
    p.add_argument("--stats", action="store_true",
                   help="print service metrics after the run")
    p.add_argument("--kernel-backend", default=None, metavar="NAME",
                   help="engine kernel backend: auto (cost model), numpy, "
                        "or a JIT backend like cjit/numba (docs/kernels.md); "
                        "default: $REPRO_KERNEL_BACKEND or auto")
    p.add_argument("--catalog-policy", choices=("lru", "gdsf"), default=None,
                   help="artifact-cache eviction policy (default: "
                        "$REPRO_CATALOG_POLICY or lru; "
                        "docs/cache-economics.md)")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "serve",
        help="drive a synthetic or trace-recorded workload through the service",
    )
    p.add_argument("graph", nargs="?", default=None,
                   help="graph to serve (optional with --trace when the "
                        "trace header carries graph recipes)")
    p.add_argument("--trace", default=None, metavar="SRC",
                   help="replay a recorded JSONL trace instead of the "
                        "synthetic workload; SRC is a path, '-' (stdin), "
                        "or tcp://host:port (docs/service.md); with "
                        "--http, only the header's graph recipes are used")
    p.add_argument("--http", default=None, metavar="HOST:PORT",
                   help="serve the HTTP/JSON API instead of a local "
                        "workload (port 0 picks a free one; docs/http-api.md)")
    p.add_argument("--auth-token", action="append", default=None,
                   metavar="TOKEN",
                   help="accepted bearer token for --http (repeatable; "
                        "no tokens disables auth)")
    p.add_argument("--rate-limit", type=float, default=None, metavar="RPS",
                   help="per-client requests/second for --http "
                        "(default: unlimited)")
    p.add_argument("--burst", type=int, default=16,
                   help="token-bucket depth for --rate-limit (default 16)")
    p.add_argument("--http-ready-file", default=None, metavar="PATH",
                   help="write the bound HOST:PORT to PATH once listening "
                        "(lets scripts use port 0 without a race)")
    p.add_argument("--record", default=None, metavar="OUT",
                   help="record served traffic (synthetic or replayed) "
                        "plus result digests to OUT as a replayable trace")
    p.add_argument("--speed", type=float, default=0.0,
                   help="trace pacing: 0 = as fast as possible (default), "
                        "1 = recorded inter-arrival gaps, N = N x faster")
    p.add_argument("--loop", type=int, default=1,
                   help="replay the trace N times through one service "
                        "(later passes hit a warm catalog)")
    p.add_argument("--malformed", choices=("strict", "skip"), default="strict",
                   help="malformed trace-line policy (default strict)")
    p.add_argument("--requests", type=int, default=64,
                   help="number of synthetic queries (default 64)")
    p.add_argument("--algorithms", default="bfs,sssp,pr",
                   help="comma-separated analytics to sample from")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--backend", choices=("threads", "processes"), default=None,
                   help="execution backend (default: $REPRO_SERVICE_WORKERS "
                        "or threads; see docs/operations.md)")
    p.add_argument("--queue-size", type=int, default=128)
    p.add_argument("--batch", type=int, default=16,
                   help="submission batch size (same-graph coalescing window)")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-request deadline in seconds")
    p.add_argument("--cache-mb", type=int, default=256,
                   help="catalog memory budget in MiB")
    p.add_argument("--spill-dir", default=None)
    p.add_argument("--catalog-policy", choices=("lru", "gdsf"), default=None,
                   help="artifact-cache eviction policy (default: "
                        "$REPRO_CATALOG_POLICY or lru; "
                        "docs/cache-economics.md)")
    p.add_argument("--prewarm", default=None, metavar="PLAN",
                   help="pre-build the warm set a forecast plan names "
                        "(made by 'python -m repro forecast --out PLAN') "
                        "on a background thread before serving")
    p.add_argument("--prewarm-from-trace", default=None, metavar="TRACE",
                   help="forecast TRACE on the fly and pre-warm its plan "
                        "(exclusive with --prewarm)")
    p.add_argument("--prewarm-top", type=int, default=0, metavar="N",
                   help="only warm the N highest-scoring plan entries "
                        "(0 = all)")
    p.add_argument("--prewarm-wait", type=float, default=None, metavar="S",
                   help="block up to S seconds for pre-warming before "
                        "traffic starts (0 = until done; default: serve "
                        "immediately while warming in the background; "
                        "ignored with --http, where /v1/healthz reports "
                        "progress instead)")
    p.add_argument("--kernel-backend", default=None, metavar="NAME",
                   help="engine kernel backend: auto (cost model), numpy, "
                        "or a JIT backend like cjit/numba (docs/kernels.md); "
                        "default: $REPRO_KERNEL_BACKEND or auto")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="scatter-gather shardable analytics across N shard "
                        "executors (0 = single engine; docs/sharding.md)")
    p.add_argument("--shard-remote", action="append", default=None,
                   metavar="HOST:PORT",
                   help="host shard i on a running 'repro shard-host' "
                        "(repeatable; remaining shards run in-process)")
    p.add_argument("--quota", action="append", default=None,
                   metavar="TENANT=RATE[:BURST]",
                   help="token-bucket admission quota for one tenant "
                        "(repeatable; unlisted tenants are unmetered)")
    p.add_argument("--priority", action="append", default=None,
                   metavar="TENANT=CLASS",
                   help="priority class for one tenant: interactive, "
                        "default, batch, or an integer (lower runs sooner; "
                        "repeatable)")
    p.add_argument("--route", choices=("sharded", "single", "auto"),
                   default="sharded",
                   help="with --shards: always scatter-gather, never, or "
                        "let the cost model decide per batch (default "
                        "sharded)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "forecast",
        help="mine recorded traces into a warm-set plan for serve --prewarm",
    )
    p.add_argument("traces", nargs="+",
                   help="recorded JSONL trace file(s); multiple traces "
                        "merge by artifact identity")
    p.add_argument("--out", default=None, metavar="PLAN",
                   help="write the plan as JSON (feed to serve --prewarm)")
    p.add_argument("--top", type=int, default=0,
                   help="only print the N highest-scoring entries "
                        "(the full plan is still written to --out)")
    p.add_argument("--buckets", type=int, default=16,
                   help="arrival-histogram buckets per entry (default 16)")
    p.add_argument("--malformed", choices=("strict", "skip"), default="strict",
                   help="malformed trace-line policy (default strict)")
    p.add_argument("--json", action="store_true",
                   help="print the plan as JSON instead of a table")
    p.set_defaults(func=cmd_forecast)

    p = sub.add_parser(
        "analyze",
        help="static split-safety verifier + concurrency/scatter lint",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to scan (default: the repro package)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text",
                   help="output format (sarif targets GitHub code scanning)")
    p.add_argument("--json", action="store_true",
                   help="shorthand for --format json")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on any error-severity finding")
    p.add_argument("--rule", action="append", default=None, metavar="ID",
                   help="only report matching rules: ids, comma lists, or "
                        "globs like 'ASYNC*' (repeatable)")
    p.add_argument("--no-suppress", action="store_true",
                   help="report findings even on '# analyze: ignore' lines")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "shard-host",
        help="host shard executors for a remote 'serve --shards' tier",
    )
    p.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                   help="bind address (port 0 picks a free one; default "
                        "127.0.0.1:0)")
    p.add_argument("--ready-file", default=None, metavar="PATH",
                   help="write the bound HOST:PORT to PATH once listening "
                        "(lets scripts use port 0 without a race)")
    p.set_defaults(func=cmd_shard_host)

    p = sub.add_parser(
        "calibrate",
        help="measure this machine and cache the cost-model profile",
    )
    p.add_argument("--scale", type=float, default=1.0,
                   help="shrink the probe sizes (smoke runs; noisier fits)")
    p.add_argument("--seed", type=int, default=17,
                   help="probe-graph RNG seed")
    p.add_argument("--json", action="store_true",
                   help="print the profile as JSON instead of a summary")
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser("bench", help="regenerate the paper's experiments")
    p.add_argument("experiments", nargs="*", default=None)
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=None)  # handled specially below
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "bench":
        from repro.bench.__main__ import main as bench_main

        forwarded = list(args.experiments or [])
        forwarded += ["--scale", str(args.scale)]
        return bench_main(forwarded)
    try:
        return args.func(args)
    except TigrError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
