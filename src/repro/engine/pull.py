"""The pull-based BSP engine (§2.1, Theorem 3).

Pull-based propagation gathers values along *incoming* edges: each
scheduled thread reads its in-neighbors' values and folds them into
its own node's value.  The engine runs on the **reverse** graph so CSR
neighbor lists enumerate in-edges; the scheduler (node or virtual) is
built over that reverse graph.

With a virtual scheduler, one physical node's in-edges are divided
over several virtual threads, each folding a *subset* of neighbors
into the shared physical slot.  Theorem 3: the result equals the
original vertex function exactly when the reduction is associative —
which MIN/MAX/ADD are, and which the test suite verifies.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import EngineError
from repro.engine import kernels
from repro.engine.program import PushProgram
from repro.engine.push import EngineOptions, EngineResult
from repro.engine.schedule import Scheduler
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import CSRGraph, NODE_DTYPE
from repro.indexing import ranges_to_indices


def run_pull(
    scheduler: Scheduler,
    program: PushProgram,
    forward_graph: CSRGraph,
    source: Optional[int] = None,
    *,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> EngineResult:
    """Run a program in pull mode.

    Parameters
    ----------
    scheduler:
        Built over the **reverse** graph (its edge array enumerates
        in-edges; edge weights must have followed their edges, which
        :meth:`repro.graph.csr.CSRGraph.reverse` guarantees).
    program:
        The same program objects used for push runs work here: the
        relax function is direction-agnostic (value + weight ->
        candidate) and the reduction must be associative, which all
        :class:`~repro.engine.program.ReduceOp` members are.
    forward_graph:
        The original orientation, used by the worklist to find which
        nodes an update can affect (the out-neighbors of changed
        nodes must re-gather next iteration).
    """
    reverse = scheduler.graph
    n = reverse.num_nodes
    if forward_graph.num_nodes != n:
        raise EngineError("forward graph does not match the reverse graph")
    if program.needs_weights and reverse.weights is None:
        raise EngineError(f"program {program.name!r} needs edge weights")

    values = program.initial_values(n, source)
    frontier = np.asarray(program.initial_frontier(n, source), dtype=NODE_DTYPE)
    # In pull mode the nodes that must *gather* first are those the
    # initially-changed nodes can influence: their forward neighbors
    # (plus themselves for self-consistent programs).
    frontier = _influenced(forward_graph, frontier)

    weights = reverse.weights
    in_sources = reverse.targets  # reverse target == original source
    backend = kernels.resolve_backend(
        options.kernel_backend, edges=reverse.num_edges
    )
    spec = kernels.spec_for(program) if backend.jit else None

    converged = False
    iterations = 0
    edges_processed = 0

    for _ in range(options.max_iterations):
        active = frontier if options.worklist else scheduler.all_nodes()
        if len(active) == 0:
            converged = True
            break
        batch = scheduler.batch(active)
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1
        edges_processed += batch.total_edges

        before = values.copy()
        if batch.total_edges and not backend.try_pull(
            spec, values, before, batch, in_sources, weights
        ):
            eidx = batch.edge_indices()
            neighbor_vals = before[in_sources[eidx]]
            w = weights[eidx] if weights is not None else None
            candidates = program.relax(neighbor_vals, w)
            own = batch.sources_per_edge()  # the gathering node itself
            program.reduce.scatter(values, own, candidates)

        changed = np.flatnonzero(values != before)
        if len(changed) == 0:
            converged = True
            break
        frontier = _influenced(forward_graph, changed)

    if not converged and options.require_convergence:
        raise EngineError(
            f"{program.name} (pull) did not converge within {options.max_iterations} iterations"
        )
    return EngineResult(
        values=values,
        num_iterations=iterations,
        converged=converged,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
    )


def run_pull_lanes(
    scheduler: Scheduler,
    program: PushProgram,
    forward_graph: CSRGraph,
    sources: Sequence[int],
    *,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> EngineResult:
    """Run a program in pull mode with a lane per source.

    The union worklist makes a node re-gather whenever *any* lane's
    in-neighborhood changed; lanes whose neighborhood is quiescent
    re-fold values already incorporated, which the required idempotent
    reduction absorbs — so column ``k`` equals the scalar
    :func:`run_pull` for ``sources[k]`` bitwise.
    """
    reverse = scheduler.graph
    n = reverse.num_nodes
    num_lanes = len(sources)
    if forward_graph.num_nodes != n:
        raise EngineError("forward graph does not match the reverse graph")
    if not program.lane_safe:
        raise EngineError(
            f"program {program.name!r} is not lane-safe: its "
            f"{program.reduce.value} reduction is not idempotent"
        )
    if program.needs_weights and reverse.weights is None:
        raise EngineError(f"program {program.name!r} needs edge weights")
    if num_lanes == 0:
        return EngineResult(
            values=np.zeros((n, 0)), num_iterations=0, converged=True,
            metrics=simulator.finish() if simulator is not None else None,
            num_lanes=0,
        )

    # lane-major (S, n) internally, as in run_push_lanes: contiguous
    # per-lane rows keep relax and scatter on ufunc.at's fast 1-D path
    values_t = np.ascontiguousarray(program.initial_lane_values(n, sources).T)
    frontier = _influenced(
        forward_graph, program.initial_lane_frontier(n, sources)
    )

    weights = reverse.weights
    in_sources = reverse.targets
    backend = kernels.resolve_backend(
        options.kernel_backend, edges=reverse.num_edges
    )
    spec = kernels.spec_for(program) if backend.jit else None

    converged = False
    iterations = 0
    edges_processed = 0
    lane_iterations = 0

    for _ in range(options.max_iterations):
        active = frontier if options.worklist else scheduler.all_nodes()
        if len(active) == 0:
            converged = True
            break
        batch = scheduler.batch(active)
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1
        edges_processed += batch.total_edges
        lane_iterations += num_lanes

        before_t = values_t.copy()
        if batch.total_edges:
            # each lane is one scalar pull launch over contiguous row
            # views; the fused kernel's gates are deterministic per
            # launch shape, so lanes fuse all-or-nothing in practice —
            # any declined lane still runs the numpy path below
            pending = [
                lane for lane in range(num_lanes)
                if not backend.try_pull(
                    spec, values_t[lane], before_t[lane], batch,
                    in_sources, weights,
                )
            ]
            if pending:
                eidx = batch.edge_indices()
                nbr = in_sources[eidx]
                own = batch.sources_per_edge()
                w = weights[eidx][:, None] if weights is not None else None
                for lane in pending:
                    candidates = program.lane_relax(
                        before_t[lane][nbr][:, None], w
                    )
                    program.reduce.scatter(
                        values_t[lane], own, candidates[:, 0]
                    )

        changed = np.flatnonzero((values_t != before_t).any(axis=0))
        if len(changed) == 0:
            converged = True
            break
        frontier = _influenced(forward_graph, changed)

    if not converged and options.require_convergence:
        raise EngineError(
            f"{program.name} (pull lanes) did not converge within "
            f"{options.max_iterations} iterations"
        )
    return EngineResult(
        values=np.ascontiguousarray(values_t.T),
        num_iterations=iterations,
        converged=converged,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
        num_lanes=num_lanes,
        lane_iterations=lane_iterations,
    )


def _influenced(forward_graph: CSRGraph, changed: np.ndarray) -> np.ndarray:
    """Nodes whose pull result may differ after ``changed`` updated:
    the forward out-neighbors of the changed nodes."""
    changed = np.asarray(changed, dtype=NODE_DTYPE)
    starts = forward_graph.offsets[changed]
    counts = forward_graph.offsets[changed + 1] - starts
    slots = ranges_to_indices(starts, counts)
    return np.unique(forward_graph.targets[slots])
