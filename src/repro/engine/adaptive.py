"""Direction-adaptive BSP: push sparse frontiers, pull dense ones.

§7.1 cites Besta et al.'s push-vs-pull analysis [4]; the engines here
make the choice per iteration, generalising direction-optimising BFS
to every monotone vertex program:

* **sparse frontier** → push: scatter candidates along the frontier's
  out-edges (atomics, but work proportional to the frontier);
* **dense frontier** → pull: every node gathers over its in-edges and
  folds into its own value — a full sweep, but coalescible and free
  of atomics (each node owns its write).

Both directions compute the identical BSP update for monotone
(MIN/MAX) programs — a pull sweep folds every in-neighbor's current
value, a superset of what the frontier would have pushed, and folding
stale candidates into a monotone reduction is a no-op.  Hence results
*and iteration counts* match plain push exactly; the tests assert
both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.engine import kernels
from repro.engine.program import PushProgram, ReduceOp
from repro.engine.push import EngineOptions, EngineResult
from repro.engine.schedule import NodeScheduler, Scheduler
from repro.errors import EngineError
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import CSRGraph, NODE_DTYPE


@dataclass(frozen=True)
class AdaptiveOptions(EngineOptions):
    """Engine options plus the direction-switch threshold.

    A pull iteration runs when the frontier's out-edges exceed
    ``pull_threshold`` of the graph's edges (the Beamer-style
    heuristic, expressed as a fraction).  ``None`` asks the measured
    cost model: a pull sweep pays ``m * pull_per_edge`` while a push
    pays ``frontier_edges * push_per_edge``, so the calibrated
    break-even fraction is ``pull_per_edge / push_per_edge`` — see
    :meth:`repro.engine.costmodel.CalibrationProfile.pull_threshold`.
    """

    pull_threshold: Optional[float] = 0.10


@dataclass
class AdaptiveResult(EngineResult):
    """Engine result plus direction bookkeeping."""

    pull_iterations: int = 0
    push_iterations: int = 0


def run_adaptive(
    graph: CSRGraph,
    program: PushProgram,
    source: Optional[int] = None,
    *,
    reverse: Optional[CSRGraph] = None,
    options: AdaptiveOptions = AdaptiveOptions(),
    simulator: Optional[GPUSimulator] = None,
    pull_scheduler: Optional[Scheduler] = None,
) -> AdaptiveResult:
    """Run a monotone program with per-iteration direction choice.

    Parameters
    ----------
    reverse:
        The transpose graph for pull iterations; computed once here
        when not supplied (callers running many analytics should
        pass a precomputed one).
    pull_scheduler:
        Scheduler over the reverse graph for pull iterations
        (defaults to node scheduling; a virtual scheduler composes
        Tigr with direction adaptivity).
    """
    if program.reduce not in (ReduceOp.MIN, ReduceOp.MAX):
        raise EngineError("adaptive direction switching requires a monotone "
                          "(MIN/MAX) program")
    if program.needs_weights and graph.weights is None:
        raise EngineError(f"program {program.name!r} needs edge weights")
    n = graph.num_nodes
    if reverse is None:
        reverse = graph.reverse()
    push_scheduler = NodeScheduler(graph)
    if pull_scheduler is None:
        pull_scheduler = NodeScheduler(reverse)

    degrees = graph.out_degrees()
    total_edges = max(graph.num_edges, 1)
    values = program.initial_values(n, source)
    frontier = np.asarray(program.initial_frontier(n, source), dtype=NODE_DTYPE)

    pull_threshold = options.pull_threshold
    if pull_threshold is None:
        from repro.engine import costmodel

        pull_threshold = costmodel.get_profile().pull_threshold()
    backend = kernels.resolve_backend(
        options.kernel_backend, edges=graph.num_edges
    )
    spec = kernels.spec_for(program) if backend.jit else None

    converged = False
    iterations = pushes = pulls = 0
    edges_processed = 0

    for _ in range(options.max_iterations):
        if len(frontier) == 0:
            converged = True
            break
        iterations += 1
        before = values.copy()
        frontier_edges = int(degrees[frontier].sum())

        if frontier_edges > pull_threshold * total_edges:
            # ---- pull sweep over every node's in-edges -------------
            pulls += 1
            batch = pull_scheduler.batch(pull_scheduler.all_nodes())
            if simulator is not None:
                simulator.record_iteration(batch.trace())
            edges_processed += batch.total_edges
            if batch.total_edges and not backend.try_pull(
                spec, values, before, batch, reverse.targets, reverse.weights
            ):
                eidx = batch.edge_indices()
                neighbor_vals = before[reverse.targets[eidx]]
                w = reverse.weights[eidx] if reverse.weights is not None else None
                candidates = program.relax(neighbor_vals, w)
                program.reduce.scatter(values, batch.sources_per_edge(), candidates)
        else:
            # ---- push the frontier ---------------------------------
            pushes += 1
            batch = push_scheduler.batch(frontier)
            if simulator is not None:
                simulator.record_iteration(batch.trace())
            edges_processed += batch.total_edges
            if batch.total_edges and not backend.try_push(
                spec, values, before, batch, graph.targets, graph.weights
            ):
                eidx = batch.edge_indices()
                src_vals = before[batch.sources_per_edge()]
                w = graph.weights[eidx] if graph.weights is not None else None
                candidates = program.relax(src_vals, w)
                program.reduce.scatter(values, graph.targets[eidx], candidates)

        changed = np.flatnonzero(values != before)
        if len(changed) == 0:
            converged = True
            break
        frontier = changed.astype(NODE_DTYPE)

    if not converged and options.require_convergence:
        raise EngineError(
            f"{program.name} (adaptive) did not converge within "
            f"{options.max_iterations} iterations"
        )
    return AdaptiveResult(
        values=values,
        num_iterations=iterations,
        converged=converged,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
        pull_iterations=pulls,
        push_iterations=pushes,
    )
