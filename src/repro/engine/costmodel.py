"""Measured cost model: every strategy choice becomes a prediction.

The engines expose several execution strategies whose crossover points
are machine- and graph-dependent: lane-parallel multi-source passes vs
a scalar loop (``results/multisource-lanes.json`` shows lanes *losing*
below ~8 sources, and never winning for sssp), push vs pull direction
switching (``AdaptiveOptions.pull_threshold``), and the scalar numpy
path vs a JIT kernel backend (:mod:`repro.engine.kernels`).  Instead
of hard-coded heuristics, this module calibrates a small per-machine
profile once and turns each choice into a measured prediction keyed on
(algorithm, n, m, degree profile, source count).

The profile has three ingredients:

* **microbenchmarks** — scatter / gather / lane-pack throughput of the
  numpy primitives the engines are built from;
* **engine probes** — full engine runs on an R-MAT probe graph: the
  per-edge cost of a scalar pass, a linear fit of the lane engine's
  cost (``fixed + marginal * S`` per edge, from probes at S=4 and
  S=16), push vs pull per-edge cost, and per-kernel-backend edge
  throughput;
* **a fixed per-run overhead** — the Python cost of one engine launch
  sequence, which dominates on small graphs and is why lane batching
  always wins there regardless of per-edge rates.

Predictions use *ratios* of these quantities, which transfer across
graph sizes within a degree-profile family (everything scales with
``m``), so one probe graph calibrates the whole size sweep.

The profile is cached on disk under :func:`cache_dir` (shared with the
JIT backend's compiled kernels) and refreshed with ``python -m repro
calibrate``.  Without a calibration run, :data:`BUILTIN_PROFILE` — a
conservative profile measured on the reference CI machine — applies,
so behavior is deterministic out of the box.

Every choice this model makes is a pure *strategy* choice: both sides
of each decision produce bitwise-identical values, so a stale or
wrong profile can cost time, never correctness (golden-trace digests
are invariant under the profile).
"""

from __future__ import annotations

import json
import math
import os
import platform
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

PROFILE_VERSION = 1
PROFILE_FILENAME = "calibration.json"

#: algorithm families the lane fits are keyed on: ``bfs`` covers the
#: bit-packed unweighted hop-count path, ``sssp`` the generic float
#: lanes every weighted (or non-hop) program uses.
LANE_FAMILIES = ("bfs", "sssp")

#: lanes must predict at least this fraction cheaper than the loop
#: before ``choose_multisource_mode`` leaves the scalar path — the
#: crossover region is where the fits are least trustworthy.
LANE_PICK_MARGIN = 0.10


def cache_dir() -> str:
    """Per-machine cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.

    Holds the calibration profile and the JIT backend's compiled
    kernels; safe to delete at any time (everything regenerates).
    """
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def profile_path() -> str:
    """Where :func:`save_profile` / :func:`get_profile` look on disk."""
    return os.path.join(cache_dir(), PROFILE_FILENAME)


@dataclass(frozen=True)
class LaneFit:
    """Linear cost fit of one algorithm family's lane engine.

    All three rates are seconds *per edge of the probe graph's edge
    array*; only their ratios enter predictions, so the units cancel.

    ``loop_per_edge_s``: one scalar pass, per edge, per source.
    ``lanes_fixed_per_edge_s`` + ``S * lanes_marginal_per_edge_s``:
    one lane pass carrying ``S`` lanes, per edge — fitted from probes
    at S=4 and S=16.
    """

    loop_per_edge_s: float
    lanes_fixed_per_edge_s: float
    lanes_marginal_per_edge_s: float

    @property
    def crossover_sources(self) -> float:
        """The source count above which lanes beat the loop on a graph
        big enough that per-edge costs dominate the fixed overhead.

        ``inf`` when the loop always wins (the lane engine's marginal
        per-lane cost exceeds a whole scalar pass — the measured sssp
        regime)."""
        gain = self.loop_per_edge_s - self.lanes_marginal_per_edge_s
        if gain <= 0:
            return float("inf")
        return self.lanes_fixed_per_edge_s / gain


@dataclass(frozen=True)
class CalibrationProfile:
    """One machine's measured engine rates."""

    version: int = PROFILE_VERSION
    #: ``"builtin"`` or ``"measured"``.
    source: str = "builtin"
    machine: str = ""
    created: str = ""
    #: probe graph the engine rates were measured on.
    probe_nodes: int = 0
    probe_edges: int = 0
    #: fixed Python cost of one engine run (scheduling, frontier
    #: setup, result assembly) — dominates on small graphs.
    run_overhead_s: float = 3e-4
    #: numpy primitive throughput, million edges (elements) / second.
    scatter_medges_s: float = 0.0
    gather_medges_s: float = 0.0
    lane_pack_medges_s: float = 0.0
    #: scalar engine per-edge cost by direction (seconds / edge).
    push_per_edge_s: float = 0.0
    pull_per_edge_s: float = 0.0
    #: measured full-run edge throughput per kernel backend (edges/s,
    #: warm — compile cost excluded).
    backend_edges_per_s: Dict[str, float] = field(default_factory=dict)
    #: below this many edges, per-launch dispatch overhead swamps any
    #: JIT win and ``auto`` stays on the numpy path.
    jit_min_edges: int = 4096
    #: lane-vs-loop fits per algorithm family.
    lanes: Dict[str, LaneFit] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Predictions
    # ------------------------------------------------------------------
    def multisource_cost(
        self,
        mode: str,
        *,
        algorithm: str,
        num_sources: int,
        num_edges: int,
        max_lanes: int = 64,
    ) -> float:
        """Predicted seconds to answer ``num_sources`` sources.

        ``mode`` is ``"loop"`` or ``"lanes"``; ``algorithm`` one of
        :data:`LANE_FAMILIES` (callers map program names onto the
        nearest family).  The lanes estimate accounts for lane
        blocking: every ``max_lanes``-wide block is its own pass with
        its own fixed costs.
        """
        fit = self._fit(algorithm)
        m = max(num_edges, 1)
        s = max(num_sources, 0)
        if mode == "loop":
            return s * (self.run_overhead_s + m * fit.loop_per_edge_s)
        if mode == "lanes":
            blocks = max(1, math.ceil(s / max(max_lanes, 1)))
            return (
                blocks * (self.run_overhead_s + m * fit.lanes_fixed_per_edge_s)
                + s * m * fit.lanes_marginal_per_edge_s
            )
        raise ValueError(f"unknown multisource mode {mode!r}")

    def choose_multisource_mode(
        self,
        *,
        algorithm: str,
        num_sources: int,
        num_edges: int,
        max_lanes: int = 64,
    ) -> str:
        """``"loop"`` or ``"lanes"`` — whichever predicts cheaper.

        A single source is always a plain scalar run; above that the
        measured costs decide.  On small graphs the per-run overhead
        term makes lanes win at any width (S runs collapse into one);
        on large graphs the per-edge fit decides — which is how the
        sssp lane regression is avoided without a special case.

        The pick is deliberately loop-biased: lanes must predict at
        least :data:`LANE_PICK_MARGIN` cheaper.  Near the crossover the
        fits' transfer error between the probe graph and the query's
        graph exceeds the predicted gain, and the loop is the safer
        miss — its cost model is a straight line through one measured
        point, while the lane estimate also carries the fixed/marginal
        split.
        """
        if num_sources <= 1:
            return "loop"
        loop = self.multisource_cost(
            "loop", algorithm=algorithm, num_sources=num_sources,
            num_edges=num_edges, max_lanes=max_lanes,
        )
        lanes = self.multisource_cost(
            "lanes", algorithm=algorithm, num_sources=num_sources,
            num_edges=num_edges, max_lanes=max_lanes,
        )
        return "lanes" if lanes <= loop * (1.0 - LANE_PICK_MARGIN) else "loop"

    def pull_threshold(self) -> float:
        """Measured frontier-density threshold for direction switching.

        A pull iteration sweeps every in-edge; a push iteration touches
        only the frontier's out-edges.  Pull is cheaper exactly when
        ``frontier_edges * push_per_edge > m * pull_per_edge`` — i.e.
        above the frontier fraction ``pull_per_edge / push_per_edge``.
        Clamped away from the degenerate ends so a noisy probe can
        never pin the engine to one direction.
        """
        if self.push_per_edge_s <= 0 or self.pull_per_edge_s <= 0:
            return 0.10
        ratio = self.pull_per_edge_s / self.push_per_edge_s
        return min(0.95, max(0.02, ratio))

    def choose_kernel_backend(
        self, *, edges: int, candidates: Sequence[str]
    ) -> str:
        """The backend predicted fastest for a graph of ``edges`` edges.

        Small graphs stay on numpy (per-launch dispatch overhead
        swamps the win); otherwise the measured edge throughputs rank
        the available candidates.  An available backend the profile
        never measured (e.g. numba installed after calibration) is
        assumed 2x numpy until a recalibration measures it.
        """
        names = [c for c in candidates if c != "numpy"]
        if not names or edges < self.jit_min_edges:
            return "numpy"
        numpy_eps = self.backend_edges_per_s.get("numpy", 0.0)
        best, best_eps = "numpy", numpy_eps
        for name in names:
            eps = self.backend_edges_per_s.get(name, 2.0 * numpy_eps)
            if eps > best_eps:
                best, best_eps = name, eps
        return best

    def _fit(self, algorithm: str) -> LaneFit:
        fit = self.lanes.get(algorithm)
        if fit is None:
            # unknown family: fall back to the generic float-lane fit,
            # else bfs, else a neutral fit that preserves the historic
            # lanes-for-S>1 behavior.
            fit = self.lanes.get("sssp") or self.lanes.get("bfs")
        if fit is None:
            fit = LaneFit(1.0, 1.0, 0.0)
        return fit

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "source": self.source,
            "machine": self.machine,
            "created": self.created,
            "probe_nodes": self.probe_nodes,
            "probe_edges": self.probe_edges,
            "run_overhead_s": self.run_overhead_s,
            "scatter_medges_s": self.scatter_medges_s,
            "gather_medges_s": self.gather_medges_s,
            "lane_pack_medges_s": self.lane_pack_medges_s,
            "push_per_edge_s": self.push_per_edge_s,
            "pull_per_edge_s": self.pull_per_edge_s,
            "backend_edges_per_s": dict(self.backend_edges_per_s),
            "jit_min_edges": self.jit_min_edges,
            "lanes": {
                name: {
                    "loop_per_edge_s": fit.loop_per_edge_s,
                    "lanes_fixed_per_edge_s": fit.lanes_fixed_per_edge_s,
                    "lanes_marginal_per_edge_s": fit.lanes_marginal_per_edge_s,
                }
                for name, fit in sorted(self.lanes.items())
            },
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "CalibrationProfile":
        lanes = {
            str(name): LaneFit(
                loop_per_edge_s=float(fit["loop_per_edge_s"]),
                lanes_fixed_per_edge_s=float(fit["lanes_fixed_per_edge_s"]),
                lanes_marginal_per_edge_s=float(
                    fit["lanes_marginal_per_edge_s"]
                ),
            )
            for name, fit in dict(data.get("lanes", {})).items()
        }
        return CalibrationProfile(
            version=int(data["version"]),
            source=str(data.get("source", "measured")),
            machine=str(data.get("machine", "")),
            created=str(data.get("created", "")),
            probe_nodes=int(data.get("probe_nodes", 0)),
            probe_edges=int(data.get("probe_edges", 0)),
            run_overhead_s=float(data.get("run_overhead_s", 3e-4)),
            scatter_medges_s=float(data.get("scatter_medges_s", 0.0)),
            gather_medges_s=float(data.get("gather_medges_s", 0.0)),
            lane_pack_medges_s=float(data.get("lane_pack_medges_s", 0.0)),
            push_per_edge_s=float(data.get("push_per_edge_s", 0.0)),
            pull_per_edge_s=float(data.get("pull_per_edge_s", 0.0)),
            backend_edges_per_s={
                str(k): float(v)
                for k, v in dict(data.get("backend_edges_per_s", {})).items()
            },
            jit_min_edges=int(data.get("jit_min_edges", 4096)),
            lanes=lanes,
        )


#: the reference profile, measured by ``python -m repro calibrate``
#: on the maintainers' CI machine (x86-64, numpy 2.x, system gcc).
#: Encodes the measured regimes the bench data shows: bfs lanes cross
#: over between 4 and 16 sources on edge-dominated graphs, sssp's lane
#: marginal cost exceeds a scalar pass (loop always wins at scale),
#: and the C JIT backend roughly triples scalar push throughput.  The
#: strategy fits were taken under default backend resolution, i.e.
#: they already include the JIT acceleration production runs get.
BUILTIN_PROFILE = CalibrationProfile(
    version=PROFILE_VERSION,
    source="builtin",
    machine="reference",
    created="2026-08-08",
    probe_nodes=20_000,
    probe_edges=292_277,
    run_overhead_s=4.27e-04,
    scatter_medges_s=182.0,
    gather_medges_s=67.5,
    lane_pack_medges_s=68.9,
    push_per_edge_s=4.43e-09,
    pull_per_edge_s=2.64e-08,
    backend_edges_per_s={
        "numpy": 5.84e07,
        "cjit": 1.96e08,
    },
    jit_min_edges=4096,
    lanes={
        "bfs": LaneFit(
            loop_per_edge_s=4.89e-09,
            lanes_fixed_per_edge_s=1.35e-08,
            lanes_marginal_per_edge_s=1.37e-09,
        ),
        "sssp": LaneFit(
            loop_per_edge_s=8.86e-09,
            lanes_fixed_per_edge_s=1e-12,
            lanes_marginal_per_edge_s=1.14e-08,
        ),
    },
)


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------
def save_profile(
    profile: CalibrationProfile, path: Optional[str] = None
) -> str:
    """Write the profile to disk (atomic rename) and return the path."""
    path = path or profile_path()
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(profile.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_profile(path: Optional[str] = None) -> Optional[CalibrationProfile]:
    """The on-disk profile, or ``None`` (missing, corrupt, or stale
    version — each falls back to :data:`BUILTIN_PROFILE` silently
    except corruption, which warns once so a truncated write is not
    mistaken for 'never calibrated')."""
    path = path or profile_path()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        warnings.warn(
            f"ignoring unreadable calibration profile {path}: {exc}",
            RuntimeWarning, stacklevel=2,
        )
        return None
    try:
        if int(data.get("version", -1)) != PROFILE_VERSION:
            return None
        return CalibrationProfile.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        warnings.warn(
            f"ignoring malformed calibration profile {path}: {exc}",
            RuntimeWarning, stacklevel=2,
        )
        return None


_active: Optional[CalibrationProfile] = None


def get_profile() -> CalibrationProfile:
    """The active profile: pinned > on-disk calibration > builtin.

    Cached per process; :func:`set_profile` pins or (with ``None``)
    re-reads the disk on next use.
    """
    global _active
    if _active is None:
        _active = load_profile() or BUILTIN_PROFILE
    return _active


def set_profile(profile: Optional[CalibrationProfile]) -> None:
    """Pin the active profile (tests, calibration), or reset with
    ``None`` so the next :func:`get_profile` re-reads the disk."""
    global _active
    _active = profile


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
def _best_of(repeats: int, fn) -> float:
    """Minimum wall time of ``repeats`` calls (deterministic work, so
    the minimum is the least-noisy estimate)."""
    import time

    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _micro_medges(seconds: float, elements: int) -> float:
    return elements / max(seconds, 1e-12) / 1e6


def run_calibration(
    *, scale: float = 1.0, seed: int = 17, repeats: int = 3
) -> CalibrationProfile:
    """Measure this machine and return a fresh profile.

    ``scale`` shrinks the probe sizes for smoke runs; fits are
    per-edge rates, so a scaled probe still transfers (noisier).
    Takes a few seconds at full scale.
    """
    import datetime
    import time

    import numpy as np

    from repro.algorithms.bfs import bfs
    from repro.algorithms.sssp import sssp
    from repro.engine import kernels
    from repro.engine.push import EngineOptions, run_push, run_push_lanes
    from repro.engine.pull import run_pull
    from repro.engine.schedule import NodeScheduler
    from repro.algorithms.programs import BFSProgram, SSSPProgram
    from repro.graph.generators import rmat

    rng = np.random.default_rng(seed)

    # -- numpy primitive microbenchmarks -------------------------------
    size = max(10_000, int(1_000_000 * scale))
    n_micro = max(1024, size // 8)
    idx = rng.integers(0, n_micro, size=size)
    cand = rng.random(size)
    values = rng.random(n_micro)
    scatter_s = _best_of(repeats, lambda: np.minimum.at(values, idx, cand))
    gather_s = _best_of(repeats, lambda: cand[idx % size])
    words = np.zeros(n_micro, dtype=np.uint64)
    bits = rng.integers(0, 2**63, size=size, dtype=np.uint64)
    pack_s = _best_of(repeats, lambda: np.bitwise_or.at(words, idx, bits))

    # -- probe graphs --------------------------------------------------
    n = max(2_000, int(20_000 * scale))
    weighted = rmat(n, 16 * n, seed=seed, weight_range=(1.0, 8.0))
    hop = weighted.without_weights()
    m = weighted.num_edges
    # The strategy probes run under the *default* backend resolution:
    # the model predicts production runs, and a production loop/pull
    # pass engages whatever JIT backend auto picks — fits taken with
    # numpy pinned would predict a configuration that never runs
    # (and would place the bfs lane crossover a full source too low
    # on machines where cjit accelerates the scalar loop).
    options = EngineOptions()

    # fixed per-run overhead: a full engine run on a near-empty graph
    tiny = rmat(256, 1024, seed=seed)
    tiny_sched = NodeScheduler(tiny.without_weights())
    run_overhead_s = _best_of(
        max(repeats, 5), lambda: bfs(tiny_sched, 0, options=options)
    )

    # -- lane-vs-loop fits ---------------------------------------------
    def lane_fit(graph, program, runner) -> LaneFit:
        sched = NodeScheduler(graph)
        sources = sorted(
            int(s) for s in rng.choice(graph.num_nodes, 16, replace=False)
        )
        loop4_s = _best_of(repeats, lambda: [
            runner(sched, s, options=options) for s in sources[:4]
        ])
        lanes4_s = _best_of(repeats, lambda: run_push_lanes(
            sched, program, sources[:4], options=options
        ))
        lanes16_s = _best_of(repeats, lambda: run_push_lanes(
            sched, program, sources, options=options
        ))
        loop_per_edge = max((loop4_s / 4 - run_overhead_s) / m, 1e-12)
        marginal = max((lanes16_s - lanes4_s) / (12 * m), 0.0)
        fixed = max(
            (lanes4_s - run_overhead_s) / m - 4 * marginal, 1e-12
        )
        return LaneFit(loop_per_edge, fixed, marginal)

    lanes = {
        "bfs": lane_fit(hop, BFSProgram(), bfs),
        "sssp": lane_fit(weighted, SSSPProgram(), sssp),
    }

    # -- push vs pull per-edge cost ------------------------------------
    sched = NodeScheduler(weighted)
    program = SSSPProgram()
    push_result = run_push(sched, program, 0, options=options)
    push_s = _best_of(repeats, lambda: run_push(
        sched, program, 0, options=options
    ))
    reverse = weighted.reverse()
    rev_sched = NodeScheduler(reverse)
    pull_result = run_pull(rev_sched, program, weighted, 0, options=options)
    pull_s = _best_of(repeats, lambda: run_pull(
        rev_sched, program, weighted, 0, options=options
    ))
    push_per_edge = max(
        (push_s - run_overhead_s) / max(push_result.edges_processed, 1), 1e-12
    )
    pull_per_edge = max(
        (pull_s - run_overhead_s) / max(pull_result.edges_processed, 1), 1e-12
    )

    # -- kernel backend throughput (warm) ------------------------------
    backend_eps: Dict[str, float] = {}
    for name in kernels.available_backends():
        opts = EngineOptions(kernel_backend=name)
        run_push(sched, program, 0, options=opts)  # warm (JIT compiles)
        seconds = _best_of(repeats, lambda: run_push(
            sched, program, 0, options=opts
        ))
        backend_eps[name] = push_result.edges_processed / max(seconds, 1e-12)

    return CalibrationProfile(
        version=PROFILE_VERSION,
        source="measured",
        machine=f"{platform.machine()} {platform.system()}".strip(),
        created=datetime.date.today().isoformat(),
        probe_nodes=weighted.num_nodes,
        probe_edges=m,
        run_overhead_s=run_overhead_s,
        scatter_medges_s=_micro_medges(scatter_s, size),
        gather_medges_s=_micro_medges(gather_s, size),
        lane_pack_medges_s=_micro_medges(pack_s, size),
        push_per_edge_s=push_per_edge,
        pull_per_edge_s=pull_per_edge,
        backend_edges_per_s=backend_eps,
        jit_min_edges=4096,
        lanes=lanes,
    )


def calibrate_and_save(
    *, scale: float = 1.0, seed: int = 17, repeats: int = 3,
    path: Optional[str] = None,
) -> Tuple[CalibrationProfile, str]:
    """Run calibration, persist it, and make it the active profile."""
    profile = run_calibration(scale=scale, seed=seed, repeats=repeats)
    saved_to = save_profile(profile, path)
    set_profile(profile)
    return profile, saved_to
