"""The push-based BSP engine (§2.1, Algorithm 2).

One iteration: schedule the active nodes into threads, gather each
thread's edges, relax along every edge, scatter-reduce candidates into
destination values, and detect changes.  With the worklist
optimization (§5) only changed nodes are active next iteration; with
synchronization relaxation the launch is processed in sequential
blocks so later blocks see values computed earlier in the same
iteration.

:func:`run_push_lanes` is the lane-parallel (multi-source) mode: one
BSP pass carries ``S`` per-source lanes, values are an ``(n, S)``
matrix, the frontier is the union of per-lane frontiers, and one edge
gather serves every lane.  Unweighted hop-count programs additionally
take an MS-BFS fast path whose per-node visited sets are bit-packed
into ``uint64`` words, so frontier propagation costs ``O(E * S/64)``
instead of ``O(E * S)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import EngineError
from repro.engine import kernels
from repro.engine.frontier import DENSE_THRESHOLD, Frontier, LaneFrontier
from repro.engine.kernels import KernelBackend, KernelSpec
from repro.engine.program import PushProgram
from repro.engine.schedule import Scheduler, ThreadBatch
from repro.gpu.metrics import RunMetrics
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import NODE_DTYPE


@dataclass(frozen=True)
class EngineOptions:
    """Knobs of the paper's lightweight GPU engine (§5).

    Attributes
    ----------
    worklist:
        Track active nodes and only process those each iteration.
        Disabled, every node is processed every iteration (the
        "Without Worklist" columns of Table 8).
    sync_relaxation_blocks:
        1 = strict BSP.  ``b > 1`` processes each launch in ``b``
        sequential blocks; later blocks observe values written by
        earlier ones in the same iteration ("synchronization
        relaxation", §5), which can only speed up convergence for
        monotone programs.
    max_iterations:
        Safety bound; exceeding it without convergence raises
        :class:`~repro.errors.EngineError` when ``require_convergence``.
    dense_threshold:
        Frontier occupancy above which the worklist switches to the
        dense (bitmap) representation — the Ligra heuristic; see
        :mod:`repro.engine.frontier`.
    kernel_backend:
        Which :mod:`repro.engine.kernels` backend runs the relax /
        reduce inner loops.  ``None`` defers to
        ``$REPRO_KERNEL_BACKEND`` and then to the measured cost
        model's ``auto`` choice.  Every backend is bitwise identical;
        this knob only trades speed.
    """

    worklist: bool = True
    sync_relaxation_blocks: int = 1
    max_iterations: int = 100_000
    require_convergence: bool = True
    dense_threshold: float = DENSE_THRESHOLD
    kernel_backend: Optional[str] = None


@dataclass
class EngineResult:
    """Outcome of one engine run.

    ``values`` is per physical node: a vector ``(n,)`` from the scalar
    engines, a matrix ``(n, num_lanes)`` from the lane-parallel ones
    (column ``k`` is source ``k``'s run).
    """

    values: np.ndarray
    num_iterations: int
    converged: bool
    metrics: Optional[RunMetrics] = None
    #: total edges relaxed over the run (useful work measure).
    edges_processed: int = 0
    #: worklist iterations whose frontier ran in dense (bitmap) form.
    dense_iterations: int = 0
    #: per-source lanes carried by the pass (1 for scalar runs).
    num_lanes: int = 1
    #: sum over iterations of lanes still live — ``/ num_iterations``
    #: is the mean lane occupancy the batch sustained.
    lane_iterations: int = 0


def run_push(
    scheduler: Scheduler,
    program: PushProgram,
    source: Optional[int] = None,
    *,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> EngineResult:
    """Run a push program to convergence.

    Parameters
    ----------
    scheduler:
        Decides the thread mapping; its graph supplies edges/weights.
        For virtual transformations pass a
        :class:`~repro.engine.schedule.VirtualScheduler` — values stay
        per *physical* node, which is the implicit value
        synchronization of §4.1.
    program:
        The analytic (relax + reduction + initialisation).
    source:
        Source node for single-source analytics; ``None`` for
        all-nodes initialisation (CC).
    simulator:
        Optional :class:`~repro.gpu.simulator.GPUSimulator`; when
        given, each iteration's thread batch is costed and
        ``result.metrics`` carries the run totals.
    """
    graph = scheduler.graph
    n = graph.num_nodes
    if options.sync_relaxation_blocks < 1:
        raise EngineError("sync_relaxation_blocks must be >= 1")
    if program.needs_weights and graph.weights is None:
        raise EngineError(f"program {program.name!r} needs edge weights")

    values = program.initial_values(n, source)
    frontier = Frontier.from_ids(
        n, program.initial_frontier(n, source),
        dense_threshold=options.dense_threshold,
    )
    weights = graph.weights
    targets = graph.targets
    backend = kernels.resolve_backend(
        options.kernel_backend, edges=graph.num_edges
    )
    spec = kernels.spec_for(program) if backend.jit else None

    converged = False
    iterations = 0
    edges_processed = 0
    dense_iterations = 0

    for _ in range(options.max_iterations):
        active = frontier.ids() if options.worklist else scheduler.all_nodes()
        if len(active) == 0:
            converged = True
            break
        if options.worklist and frontier.is_dense:
            dense_iterations += 1
        batch = scheduler.batch(active)
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1
        edges_processed += batch.total_edges

        before = values.copy()
        if options.sync_relaxation_blocks == 1:
            _apply_batch(
                batch, program, values, before, targets, weights,
                backend=backend, spec=spec,
            )
        else:
            bounds = np.linspace(
                0, batch.num_threads, options.sync_relaxation_blocks + 1
            ).astype(np.int64)
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                if hi > lo:
                    # later blocks read values already updated: relaxation
                    # (read aliases write, so fused backends decline)
                    _apply_batch(
                        batch.slice(int(lo), int(hi)),
                        program, values, values, targets, weights,
                        backend=backend, spec=spec,
                    )

        changed_mask = values != before
        if not changed_mask.any():
            converged = True
            break
        frontier = Frontier.from_mask(
            n, changed_mask, dense_threshold=options.dense_threshold
        )

    if not converged and options.require_convergence:
        raise EngineError(
            f"{program.name} did not converge within {options.max_iterations} iterations"
        )
    return EngineResult(
        values=values,
        num_iterations=iterations,
        converged=converged,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
        dense_iterations=dense_iterations,
    )


def run_push_lanes(
    scheduler: Scheduler,
    program: PushProgram,
    sources: Sequence[int],
    *,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> EngineResult:
    """Run one push pass carrying a lane per source.

    Column ``k`` of ``result.values`` is bitwise-identical to
    ``run_push(scheduler, program, sources[k], options=options).values``
    — the union frontier only *adds* relaxations of unchanged lane
    values, which an idempotent reduction folds away, and every float
    candidate is the same path expression either way.

    Requires ``program.lane_safe`` (idempotent reduction); ADD-based
    programs would double-count the redundant pushes and are refused.
    """
    graph = scheduler.graph
    n = graph.num_nodes
    num_lanes = len(sources)
    if not program.lane_safe:
        raise EngineError(
            f"program {program.name!r} is not lane-safe: its "
            f"{program.reduce.value} reduction is not idempotent"
        )
    if options.sync_relaxation_blocks < 1:
        raise EngineError("sync_relaxation_blocks must be >= 1")
    if program.needs_weights and graph.weights is None:
        raise EngineError(f"program {program.name!r} needs edge weights")
    if num_lanes == 0:
        return EngineResult(
            values=np.zeros((n, 0)), num_iterations=0, converged=True,
            metrics=simulator.finish() if simulator is not None else None,
            num_lanes=0,
        )

    backend = kernels.resolve_backend(
        options.kernel_backend, edges=graph.num_edges
    )
    spec = kernels.spec_for(program) if backend.jit else None

    if (
        program.unit_hop_metric
        and graph.weights is None
        and options.worklist
        and options.sync_relaxation_blocks == 1
    ):
        return _run_bitpacked_hops(
            scheduler, program, sources, options=options,
            simulator=simulator, backend=backend,
        )

    # lane-major (S, n) layout internally: each lane's values live in
    # one contiguous row, keeping the per-lane relax and scatter on
    # ufunc.at's fast 1-D path (its 2-D form is ~100x slower/element)
    values_t = np.ascontiguousarray(program.initial_lane_values(n, sources).T)
    frontier = LaneFrontier.from_union_ids(
        n, program.initial_lane_frontier(n, sources), num_lanes,
        dense_threshold=options.dense_threshold,
    )
    weights = graph.weights
    targets = graph.targets

    converged = False
    iterations = 0
    edges_processed = 0
    dense_iterations = 0
    lane_iterations = 0

    for _ in range(options.max_iterations):
        active = frontier.ids() if options.worklist else scheduler.all_nodes()
        if len(active) == 0:
            converged = True
            break
        if options.worklist and frontier.is_dense:
            dense_iterations += 1
        batch = scheduler.batch(active)
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1
        edges_processed += batch.total_edges
        lane_iterations += (
            frontier.active_lanes if options.worklist else num_lanes
        )

        before_t = values_t.copy()
        if options.sync_relaxation_blocks == 1:
            _apply_batch_lanes(
                batch, program, values_t, before_t, targets, weights,
                backend=backend, spec=spec,
            )
        else:
            bounds = np.linspace(
                0, batch.num_threads, options.sync_relaxation_blocks + 1
            ).astype(np.int64)
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                if hi > lo:
                    _apply_batch_lanes(
                        batch.slice(int(lo), int(hi)),
                        program, values_t, values_t, targets, weights,
                        backend=backend, spec=spec,
                    )

        changed_t = values_t != before_t
        if not changed_t.any():
            converged = True
            break
        frontier = LaneFrontier.from_lane_mask(
            n, changed_t.T, dense_threshold=options.dense_threshold
        )

    if not converged and options.require_convergence:
        raise EngineError(
            f"{program.name} (lanes) did not converge within "
            f"{options.max_iterations} iterations"
        )
    return EngineResult(
        values=np.ascontiguousarray(values_t.T),
        num_iterations=iterations,
        converged=converged,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
        dense_iterations=dense_iterations,
        num_lanes=num_lanes,
        lane_iterations=lane_iterations,
    )


def _apply_batch_lanes(
    batch: ThreadBatch,
    program: PushProgram,
    values_t: np.ndarray,
    read_values_t: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray],
    *,
    backend: Optional[KernelBackend] = None,
    spec: Optional[KernelSpec] = None,
) -> None:
    """One launch, all lanes: a single edge gather feeds per-lane
    fused relax + scatter.

    Values are lane-major ``(S, n)``.  Each lane's source values enter
    ``lane_relax`` as an ``(E, 1)`` column — the same elementwise
    arithmetic as a batched ``(E, S)`` call, so results are bitwise
    identical — and its candidates scatter through ``ufunc.at``'s fast
    contiguous 1-D path.  ``filter_pushes`` is deliberately not
    consulted here: no lane-safe program defines one, and a scalar
    mask cannot describe per-lane usefulness.

    A JIT kernel backend can take the whole launch — all lanes, no
    edge-array temporaries — and is bitwise identical (same gather
    order, same folds); any gate failure falls through to numpy.
    """
    if batch.total_edges == 0:
        return
    if backend is not None and backend.try_push_lanes(
        spec, values_t, read_values_t, batch, targets, weights
    ):
        return
    eidx = batch.edge_indices()
    spe = batch.sources_per_edge()
    dst = targets[eidx]
    w = weights[eidx][:, None] if weights is not None else None
    for lane in range(values_t.shape[0]):
        candidates = program.lane_relax(read_values_t[lane][spe][:, None], w)
        program.reduce.scatter(values_t[lane], dst, candidates[:, 0])


def _run_bitpacked_hops(
    scheduler: Scheduler,
    program: PushProgram,
    sources: Sequence[int],
    *,
    options: EngineOptions,
    simulator: Optional[GPUSimulator],
    backend: Optional[KernelBackend] = None,
) -> EngineResult:
    """MS-BFS fast path: per-node visited sets bit-packed into uint64.

    Level-synchronous BFS discovers each node at its exact hop count,
    so the distance matrix equals the generic engine's fixed point
    bitwise (hop counts are small integers, exactly representable).
    Frontier propagation is an OR-scatter over ``ceil(S/64)`` words
    per edge — 64 lanes ride one machine word.
    """
    graph = scheduler.graph
    n = graph.num_nodes
    num_lanes = len(sources)
    words = (num_lanes + 63) // 64
    targets = graph.targets

    src_ids = np.asarray(sources, dtype=np.int64)
    lanes = np.arange(num_lanes, dtype=np.int64)
    visited = np.zeros((n, words), dtype=np.uint64)
    frontier_bits = np.zeros((n, words), dtype=np.uint64)
    np.bitwise_or.at(
        frontier_bits,
        (src_ids, lanes // 64),
        np.uint64(1) << (lanes % 64).astype(np.uint64),
    )
    visited |= frontier_bits

    values = np.full((n, num_lanes), np.inf)
    values[src_ids, lanes] = 0.0
    # single-word masks (the max_lanes=64 default) run on flat (n,)
    # arrays: ufunc.at's contiguous 1-D loop and 1-D gathers are far
    # faster than their 2-D forms
    flat = words == 1

    visited_w = visited[:, 0] if flat else visited
    frontier_w = frontier_bits[:, 0] if flat else frontier_bits
    values_flat = values.reshape(-1)

    active = np.unique(src_ids).astype(NODE_DTYPE)
    converged = False
    iterations = 0
    edges_processed = 0
    dense_iterations = 0
    lane_iterations = 0
    level = 0

    for _ in range(options.max_iterations):
        if len(active) == 0:
            converged = True
            break
        batch = scheduler.batch(active)
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1
        edges_processed += batch.total_edges
        lane_iterations += _popcount(frontier_w[active])
        if len(active) >= options.dense_threshold * max(n, 1):
            dense_iterations += 1

        new_w = np.zeros_like(visited_w)
        if batch.total_edges:
            # the OR is commutative and idempotent, so the fused
            # kernel's edge order cannot matter — bitwise equal either
            # way (the flat single-word form is the only one fused)
            if not (flat and backend is not None and backend.try_or_scatter(
                new_w, frontier_w, batch, targets
            )):
                eidx = batch.edge_indices()
                np.bitwise_or.at(
                    new_w, targets[eidx], frontier_w[batch.sources_per_edge()]
                )
        new_w &= ~visited_w
        level += 1

        fresh = np.flatnonzero(new_w if flat else new_w.any(axis=1))
        if len(fresh) == 0:
            converged = True
            break
        fresh_words = new_w[fresh]
        np.bitwise_or.at(visited_w, fresh, fresh_words)
        # unpack only the freshly discovered rows into lane columns;
        # the fill goes through a flat 1-D index (2-D fancy assignment
        # pays a slow pair-iteration path)
        unpacked = np.unpackbits(
            (fresh_words[:, None] if flat else fresh_words).view(np.uint8),
            axis=1, bitorder="little",
        )[:, :num_lanes]
        rows, cols = np.nonzero(unpacked)
        values_flat[fresh[rows] * num_lanes + cols] = float(level)
        frontier_w = new_w
        active = fresh.astype(NODE_DTYPE)

    if not converged and options.require_convergence:
        raise EngineError(
            f"{program.name} (lanes) did not converge within "
            f"{options.max_iterations} iterations"
        )
    return EngineResult(
        values=values,
        num_iterations=iterations,
        converged=converged,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
        dense_iterations=dense_iterations,
        num_lanes=num_lanes,
        lane_iterations=lane_iterations,
    )


def _popcount(bits: np.ndarray) -> int:
    """Total set bits across a uint64 array (lanes live this level)."""
    if bits.size == 0:
        return 0
    return int(
        np.unpackbits(np.ascontiguousarray(bits).view(np.uint8)).sum()
    )


def _apply_batch(
    batch: ThreadBatch,
    program: PushProgram,
    values: np.ndarray,
    read_values: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray],
    *,
    backend: Optional[KernelBackend] = None,
    spec: Optional[KernelSpec] = None,
) -> None:
    """Relax one batch's edges and scatter-reduce into ``values``.

    ``read_values`` is the array source values are read from: the
    iteration-start snapshot under strict BSP, or ``values`` itself
    under synchronization relaxation.

    When a JIT kernel backend accepts the launch, the whole gather /
    relax / scatter runs fused in one pass over the thread descriptors
    — bitwise identical to the numpy path below (same element order,
    same folds).  Any gate failure (aliased read array, uncertified
    program, wrong dtypes) falls through silently.
    """
    if batch.total_edges == 0:
        return
    if backend is not None and backend.try_push(
        spec, values, read_values, batch, targets, weights
    ):
        return
    eidx = batch.edge_indices()
    src_vals = read_values[batch.sources_per_edge()]
    w = weights[eidx] if weights is not None else None
    candidates = program.relax(src_vals, w)
    dst = targets[eidx]
    mask = program.filter_pushes(candidates, src_vals)
    if mask is not None:
        dst = dst[mask]
        candidates = candidates[mask]
    program.reduce.scatter(values, dst, candidates)
