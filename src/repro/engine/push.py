"""The push-based BSP engine (§2.1, Algorithm 2).

One iteration: schedule the active nodes into threads, gather each
thread's edges, relax along every edge, scatter-reduce candidates into
destination values, and detect changes.  With the worklist
optimization (§5) only changed nodes are active next iteration; with
synchronization relaxation the launch is processed in sequential
blocks so later blocks see values computed earlier in the same
iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import EngineError
from repro.engine.frontier import DENSE_THRESHOLD, Frontier
from repro.engine.program import PushProgram
from repro.engine.schedule import Scheduler, ThreadBatch
from repro.gpu.metrics import RunMetrics
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import NODE_DTYPE


@dataclass(frozen=True)
class EngineOptions:
    """Knobs of the paper's lightweight GPU engine (§5).

    Attributes
    ----------
    worklist:
        Track active nodes and only process those each iteration.
        Disabled, every node is processed every iteration (the
        "Without Worklist" columns of Table 8).
    sync_relaxation_blocks:
        1 = strict BSP.  ``b > 1`` processes each launch in ``b``
        sequential blocks; later blocks observe values written by
        earlier ones in the same iteration ("synchronization
        relaxation", §5), which can only speed up convergence for
        monotone programs.
    max_iterations:
        Safety bound; exceeding it without convergence raises
        :class:`~repro.errors.EngineError` when ``require_convergence``.
    dense_threshold:
        Frontier occupancy above which the worklist switches to the
        dense (bitmap) representation — the Ligra heuristic; see
        :mod:`repro.engine.frontier`.
    """

    worklist: bool = True
    sync_relaxation_blocks: int = 1
    max_iterations: int = 100_000
    require_convergence: bool = True
    dense_threshold: float = DENSE_THRESHOLD


@dataclass
class EngineResult:
    """Outcome of one engine run."""

    values: np.ndarray
    num_iterations: int
    converged: bool
    metrics: Optional[RunMetrics] = None
    #: total edges relaxed over the run (useful work measure).
    edges_processed: int = 0
    #: worklist iterations whose frontier ran in dense (bitmap) form.
    dense_iterations: int = 0


def run_push(
    scheduler: Scheduler,
    program: PushProgram,
    source: Optional[int] = None,
    *,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> EngineResult:
    """Run a push program to convergence.

    Parameters
    ----------
    scheduler:
        Decides the thread mapping; its graph supplies edges/weights.
        For virtual transformations pass a
        :class:`~repro.engine.schedule.VirtualScheduler` — values stay
        per *physical* node, which is the implicit value
        synchronization of §4.1.
    program:
        The analytic (relax + reduction + initialisation).
    source:
        Source node for single-source analytics; ``None`` for
        all-nodes initialisation (CC).
    simulator:
        Optional :class:`~repro.gpu.simulator.GPUSimulator`; when
        given, each iteration's thread batch is costed and
        ``result.metrics`` carries the run totals.
    """
    graph = scheduler.graph
    n = graph.num_nodes
    if options.sync_relaxation_blocks < 1:
        raise EngineError("sync_relaxation_blocks must be >= 1")
    if program.needs_weights and graph.weights is None:
        raise EngineError(f"program {program.name!r} needs edge weights")

    values = program.initial_values(n, source)
    frontier = Frontier.from_ids(
        n, program.initial_frontier(n, source),
        dense_threshold=options.dense_threshold,
    )
    weights = graph.weights
    targets = graph.targets

    converged = False
    iterations = 0
    edges_processed = 0
    dense_iterations = 0

    for _ in range(options.max_iterations):
        active = frontier.ids() if options.worklist else scheduler.all_nodes()
        if len(active) == 0:
            converged = True
            break
        if options.worklist and frontier.is_dense:
            dense_iterations += 1
        batch = scheduler.batch(active)
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1
        edges_processed += batch.total_edges

        before = values.copy()
        if options.sync_relaxation_blocks == 1:
            _apply_batch(batch, program, values, before, targets, weights)
        else:
            bounds = np.linspace(
                0, batch.num_threads, options.sync_relaxation_blocks + 1
            ).astype(np.int64)
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                if hi > lo:
                    # later blocks read values already updated: relaxation
                    _apply_batch(
                        batch.slice(int(lo), int(hi)),
                        program, values, values, targets, weights,
                    )

        changed_mask = values != before
        if not changed_mask.any():
            converged = True
            break
        frontier = Frontier.from_mask(
            n, changed_mask, dense_threshold=options.dense_threshold
        )

    if not converged and options.require_convergence:
        raise EngineError(
            f"{program.name} did not converge within {options.max_iterations} iterations"
        )
    return EngineResult(
        values=values,
        num_iterations=iterations,
        converged=converged,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
        dense_iterations=dense_iterations,
    )


def _apply_batch(
    batch: ThreadBatch,
    program: PushProgram,
    values: np.ndarray,
    read_values: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray],
) -> None:
    """Relax one batch's edges and scatter-reduce into ``values``.

    ``read_values`` is the array source values are read from: the
    iteration-start snapshot under strict BSP, or ``values`` itself
    under synchronization relaxation.
    """
    eidx = batch.edge_indices()
    if len(eidx) == 0:
        return
    src_vals = read_values[batch.sources_per_edge()]
    w = weights[eidx] if weights is not None else None
    candidates = program.relax(src_vals, w)
    dst = targets[eidx]
    mask = program.filter_pushes(candidates, src_vals)
    if mask is not None:
        dst = dst[mask]
        candidates = candidates[mask]
    program.reduce.scatter(values, dst, candidates)
