"""Pluggable kernel backends behind the Push/PullProgram API.

The engines' hot path is always the same shape: gather each active
thread's edges, relax along every edge, and scatter-reduce candidates
into destination values.  The numpy realisation of that shape pays
for several full-edge-array temporaries per launch (``edge_indices``,
``sources_per_edge``, the gathered source values, the relax result)
before ``ufunc.at`` even runs.  A compiled kernel walks the thread
descriptors directly — one pass over the edges, zero temporaries —
and produces **bitwise identical** results because it performs the
exact same float operations in the exact same order ``ufunc.at``
would.

Three backends are registered:

``numpy``
    The scalar baseline: the engines' own vectorised code path.  Its
    ``try_*`` hooks all decline, so the engine falls through to the
    canonical numpy implementation that every other backend is
    measured (and parity-tested) against.
``cjit``
    Generates a small C source file covering every certified
    (relax-class, reduction) pair, compiles it once with the system C
    compiler into a cached shared library (under
    :func:`repro.engine.costmodel.cache_dir`), and calls it through
    :mod:`ctypes`.  Available wherever a C compiler is; the compile
    is amortised across every subsequent run in the process *and*
    across processes via the on-disk cache.
``numba``
    JIT-compiles the pure-Python reference kernels in this module
    with :func:`numba.njit`.  Auto-detected: when numba is not
    installed the backend reports unavailable and resolution falls
    back gracefully.

Backend choice is per engine run: ``EngineOptions.kernel_backend``
wins, else ``$REPRO_KERNEL_BACKEND``, else ``"auto"`` — which asks
the measured cost model (:mod:`repro.engine.costmodel`) whether the
graph is big enough for a JIT kernel to pay for its call overhead.

Safety gates (any failure falls back to numpy, never errors):

* the program's (relax, reduce) pair must be certified by
  :data:`repro.core.applicability.PROGRAM_EXPECTATIONS` — the same
  table ``repro analyze`` diffs against the source (SPLIT001–006),
  so a program whose relax body drifted from its declared class is
  caught *statically* before a fused kernel could disagree with it;
* the program must not override ``filter_pushes`` or ``lane_relax``
  (a fused kernel cannot honor arbitrary Python hooks);
* arrays must be C-contiguous ``float64``/``int64`` and the batch
  must carry per-thread owners (``phys``); warp-segmentation batches
  decline;
* the read array must not alias the write array (synchronization
  relaxation re-reads values mid-launch, which only the buffered
  numpy path reproduces).

Every registered backend must also declare a parity fixture in
:data:`repro.core.applicability.KERNEL_BACKEND_EXPECTATIONS`; rule
KERN001 of ``repro analyze --strict`` fails the build otherwise.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import threading
import warnings
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.core.applicability import PROGRAM_EXPECTATIONS
from repro.engine.program import PushProgram
from repro.errors import EngineError

#: relax-body codes shared by every compiled backend (and the pure
#: Python reference kernels below).
RELAX_ADDITIVE = 0     # c = src + w   (w = 1.0 on unweighted graphs)
RELAX_WIDEST = 1       # c = min(src, w)
RELAX_PROPAGATION = 2  # c = src

#: reduction codes.
REDUCE_MIN = 0
REDUCE_MAX = 1
REDUCE_ADD = 2

_RELAX_CODES = {
    "additive": RELAX_ADDITIVE,
    "widest_path": RELAX_WIDEST,
    "propagation": RELAX_PROPAGATION,
}
_REDUCE_CODES = {"min": REDUCE_MIN, "max": REDUCE_MAX, "add": REDUCE_ADD}


class KernelSpec(NamedTuple):
    """A fusable (relax-class, reduction) pair in code form."""

    relax: int
    reduce: int

    @property
    def needs_weights(self) -> bool:
        return self.relax == RELAX_WIDEST


def spec_for(program: PushProgram) -> Optional[KernelSpec]:
    """The compiled-kernel spec for a program, or ``None``.

    Derived from the applicability table — the single source of truth
    the static analyzer certifies against the relax body — and gated
    on the program not overriding the hooks a fused kernel cannot
    reproduce.  ``None`` means "run the numpy path"; it is never an
    error.
    """
    expectation = PROGRAM_EXPECTATIONS.get(program.name)
    if expectation is None:
        return None
    if program.reduce.value != expectation.reduce_op:
        return None  # drifted from the table; analyzer flags it too
    if type(program).filter_pushes is not PushProgram.filter_pushes:
        return None
    if type(program).lane_relax is not PushProgram.lane_relax:
        return None
    relax = _RELAX_CODES.get(expectation.relax_class)
    reduce_ = _REDUCE_CODES.get(expectation.reduce_op)
    if relax is None or reduce_ is None:
        return None
    return KernelSpec(relax, reduce_)


# ----------------------------------------------------------------------
# Pure-Python reference kernels
# ----------------------------------------------------------------------
# These loops define, operation for operation, what every compiled
# backend must do.  The numba backend JIT-compiles them directly; the
# C backend is a transliteration.  They match the engines' vectorised
# numpy path bitwise: the gather order is thread-by-thread in strided
# slot order (exactly `strided_ranges_to_indices`), and the fold is
# the same comparison / addition `ufunc.at` applies element-wise.

def _push_kernel(v, rv, phys, counts, starts, strides, targets, w,
                 has_w, relax, reduce_):
    for t in range(phys.shape[0]):
        s = rv[phys[t]]
        b = starts[t]
        st = strides[t]
        for j in range(counts[t]):
            e = b + j * st
            if relax == 0:
                c = s + (w[e] if has_w else 1.0)
            elif relax == 1:
                c = min(s, w[e])
            else:
                c = s
            d = targets[e]
            if reduce_ == 0:
                if c < v[d]:
                    v[d] = c
            elif reduce_ == 1:
                if c > v[d]:
                    v[d] = c
            else:
                v[d] += c


def _pull_kernel(v, rv, own, counts, starts, strides, in_sources, w,
                 has_w, relax, reduce_):
    for t in range(own.shape[0]):
        o = own[t]
        b = starts[t]
        st = strides[t]
        for j in range(counts[t]):
            e = b + j * st
            s = rv[in_sources[e]]
            if relax == 0:
                c = s + (w[e] if has_w else 1.0)
            elif relax == 1:
                c = min(s, w[e])
            else:
                c = s
            if reduce_ == 0:
                if c < v[o]:
                    v[o] = c
            elif reduce_ == 1:
                if c > v[o]:
                    v[o] = c
            else:
                v[o] += c


def _push_lanes_kernel(vt, rvt, phys, counts, starts, strides, targets, w,
                       has_w, relax, reduce_):
    lanes = vt.shape[0]
    for lane in range(lanes):
        v = vt[lane]
        rv = rvt[lane]
        for t in range(phys.shape[0]):
            s = rv[phys[t]]
            b = starts[t]
            st = strides[t]
            for j in range(counts[t]):
                e = b + j * st
                if relax == 0:
                    c = s + (w[e] if has_w else 1.0)
                elif relax == 1:
                    c = min(s, w[e])
                else:
                    c = s
                d = targets[e]
                if reduce_ == 0:
                    if c < v[d]:
                        v[d] = c
                elif reduce_ == 1:
                    if c > v[d]:
                        v[d] = c
                else:
                    v[d] += c


def _or_kernel(new_w, frontier_w, phys, counts, starts, strides, targets):
    for t in range(phys.shape[0]):
        bits = frontier_w[phys[t]]
        b = starts[t]
        st = strides[t]
        for j in range(counts[t]):
            e = b + j * st
            new_w[targets[e]] |= bits


def _edge_mul_add_kernel(out, values, src, dst, scale):
    for e in range(src.shape[0]):
        out[dst[e]] += values[src[e]] * scale[e]


# ----------------------------------------------------------------------
# Backend base class and registry
# ----------------------------------------------------------------------
def _i64(a: np.ndarray) -> bool:
    return a.dtype == np.int64 and a.flags.c_contiguous


def _f64(a: np.ndarray) -> bool:
    return a.dtype == np.float64 and a.flags.c_contiguous


def _u64(a: np.ndarray) -> bool:
    return a.dtype == np.uint64 and a.flags.c_contiguous


class KernelBackend:
    """One relax/reduce inner-loop implementation.

    The base class *is* the ``numpy`` backend: every ``try_*`` hook
    declines, which makes the engines run their canonical vectorised
    path.  Compiled backends override the hooks and return ``True``
    when they handled the launch; any gate failure returns ``False``
    and the engine falls back — so a backend can never change
    results, only speed.
    """

    #: registry key; must appear in KERNEL_BACKEND_EXPECTATIONS.
    name = "numpy"
    #: whether this backend JIT-compiles kernels.
    jit = False

    def __init__(self) -> None:
        #: launches handled by compiled kernels (parity tests assert
        #: the fused path actually engaged).
        self.engaged = 0
        #: launches declined to the numpy path.
        self.declined = 0

    def is_available(self) -> bool:
        return True

    def availability_note(self) -> str:
        """Human-readable reason when :meth:`is_available` is False."""
        return "always available"

    # Each hook mirrors one engine call site.  Argument arrays are the
    # engine's own (full ``targets``/``weights`` arrays, per-batch
    # descriptor arrays); the hook must not mutate anything but the
    # destination values.
    def try_push(self, spec, values, read_values, batch, targets, weights) -> bool:
        return False

    def try_pull(self, spec, values, read_values, batch, in_sources, weights) -> bool:
        return False

    def try_push_lanes(self, spec, values_t, read_t, batch, targets, weights) -> bool:
        return False

    def try_or_scatter(self, new_w, frontier_w, batch, targets) -> bool:
        return False

    def try_edge_mul_add(self, out, values, src, dst, scale) -> bool:
        return False

    # ------------------------------------------------------------------
    def _gate_common(self, spec, values, read_values, batch, weights) -> bool:
        """Shared admission checks for the batch-form hooks."""
        if spec is None or batch.phys is None:
            return False
        if values is read_values:
            # synchronization relaxation re-reads mid-launch; only the
            # buffered numpy path reproduces that order.
            return False
        if not (_f64(values) and _f64(read_values) and _i64(batch.phys)
                and _i64(batch.counts) and _i64(batch.starts)
                and _i64(batch.strides)):
            return False
        if weights is None:
            if spec.needs_weights:
                return False
        elif not _f64(weights):
            return False
        return True


_REGISTRY: Dict[str, KernelBackend] = {}
_REGISTRY_LOCK = threading.Lock()


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add a backend instance to the registry (idempotent by name)."""
    with _REGISTRY_LOCK:
        _REGISTRY[backend.name] = backend
    return backend


def registered_backends() -> Tuple[str, ...]:
    """Every registered backend name, available or not."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def available_backends() -> Tuple[str, ...]:
    """Backend names that can actually run on this machine."""
    with _REGISTRY_LOCK:
        items = list(_REGISTRY.items())
    return tuple(sorted(n for n, b in items if b.is_available()))


def get_backend(name: str) -> KernelBackend:
    """The registered backend, availability unchecked.

    Raises :class:`~repro.errors.EngineError` for unknown names (a
    typo in ``--kernel-backend`` should fail loudly, not silently run
    the scalar path).
    """
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
    if backend is None:
        raise EngineError(
            f"unknown kernel backend {name!r}; registered: "
            + ", ".join(registered_backends())
        )
    return backend


_warned_unavailable: set = set()


def resolve_backend(
    name: Optional[str] = None, *, edges: Optional[int] = None
) -> KernelBackend:
    """Pick the backend for one engine run.

    ``name`` (usually ``EngineOptions.kernel_backend``) wins, then
    ``$REPRO_KERNEL_BACKEND``, then ``"auto"``.  ``auto`` asks the
    measured cost model which backend minimises predicted kernel time
    for a graph of ``edges`` edges.  A requested-but-unavailable
    backend (numba not installed, no C compiler) warns once and falls
    back to numpy — results are identical either way, so degrading is
    always safe.
    """
    if name is None:
        name = os.environ.get("REPRO_KERNEL_BACKEND") or "auto"
    if name == "auto":
        from repro.engine import costmodel

        name = costmodel.get_profile().choose_kernel_backend(
            edges=edges or 0, candidates=available_backends(),
        )
    backend = get_backend(name)
    if not backend.is_available():
        if name not in _warned_unavailable:
            _warned_unavailable.add(name)
            warnings.warn(
                f"kernel backend {name!r} is unavailable "
                f"({backend.availability_note()}); falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
        return get_backend("numpy")
    return backend


# ----------------------------------------------------------------------
# C backend (system compiler + ctypes)
# ----------------------------------------------------------------------
#: the C transliteration of the reference kernels.  One function per
#: shape; relax/reduce arrive as int flags that gcc's loop unswitching
#: hoists out of the hot loops at -O3.
_C_SOURCE = r"""
#include <stdint.h>

#define RELAX(c, s, e) do { \
    if (relax == 0)      (c) = (s) + (has_w ? w[(e)] : 1.0); \
    else if (relax == 1) (c) = ((s) < w[(e)] ? (s) : w[(e)]); \
    else                 (c) = (s); \
} while (0)

#define FOLD(v, d, c) do { \
    if (reduce == 0)      { if ((c) < (v)[(d)]) (v)[(d)] = (c); } \
    else if (reduce == 1) { if ((c) > (v)[(d)]) (v)[(d)] = (c); } \
    else                  { (v)[(d)] += (c); } \
} while (0)

void push_batch(double* v, const double* rv, const int64_t* phys,
                const int64_t* counts, const int64_t* starts,
                const int64_t* strides, const int64_t* targets,
                const double* w, int64_t nthreads,
                int has_w, int relax, int reduce) {
    for (int64_t t = 0; t < nthreads; t++) {
        const double s = rv[phys[t]];
        const int64_t b = starts[t], st = strides[t], k = counts[t];
        for (int64_t j = 0; j < k; j++) {
            const int64_t e = b + j * st;
            double c;
            RELAX(c, s, e);
            FOLD(v, targets[e], c);
        }
    }
}

void pull_batch(double* v, const double* rv, const int64_t* own,
                const int64_t* counts, const int64_t* starts,
                const int64_t* strides, const int64_t* in_sources,
                const double* w, int64_t nthreads,
                int has_w, int relax, int reduce) {
    for (int64_t t = 0; t < nthreads; t++) {
        const int64_t o = own[t];
        const int64_t b = starts[t], st = strides[t], k = counts[t];
        for (int64_t j = 0; j < k; j++) {
            const int64_t e = b + j * st;
            double c;
            RELAX(c, rv[in_sources[e]], e);
            FOLD(v, o, c);
        }
    }
}

void push_lanes(double* vt, const double* rvt, int64_t lanes, int64_t n,
                const int64_t* phys, const int64_t* counts,
                const int64_t* starts, const int64_t* strides,
                const int64_t* targets, const double* w, int64_t nthreads,
                int has_w, int relax, int reduce) {
    for (int64_t lane = 0; lane < lanes; lane++) {
        double* v = vt + lane * n;
        const double* rv = rvt + lane * n;
        for (int64_t t = 0; t < nthreads; t++) {
            const double s = rv[phys[t]];
            const int64_t b = starts[t], st = strides[t], k = counts[t];
            for (int64_t j = 0; j < k; j++) {
                const int64_t e = b + j * st;
                double c;
                RELAX(c, s, e);
                FOLD(v, targets[e], c);
            }
        }
    }
}

void or_batch(uint64_t* new_w, const uint64_t* frontier_w,
              const int64_t* phys, const int64_t* counts,
              const int64_t* starts, const int64_t* strides,
              const int64_t* targets, int64_t nthreads) {
    for (int64_t t = 0; t < nthreads; t++) {
        const uint64_t bits = frontier_w[phys[t]];
        const int64_t b = starts[t], st = strides[t], k = counts[t];
        for (int64_t j = 0; j < k; j++) {
            new_w[targets[b + j * st]] |= bits;
        }
    }
}

void edge_mul_add(double* out, const double* values, const int64_t* src,
                  const int64_t* dst, const double* scale, int64_t nedges) {
    for (int64_t e = 0; e < nedges; e++) {
        out[dst[e]] += values[src[e]] * scale[e];
    }
}

void scatter_reduce(double* v, const int64_t* idx, const double* c,
                    int64_t n, int reduce) {
    int relax = 2; (void)relax;
    for (int64_t i = 0; i < n; i++) {
        FOLD(v, idx[i], c[i]);
    }
}
"""


def _find_cc() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


class CJitBackend(KernelBackend):
    """Kernels compiled once with the system C compiler.

    The shared library is content-addressed by (source hash, compiler)
    and cached under the repro cache dir, so the compile cost is paid
    once per machine, not per process.  Loading is lazy: the compiler
    is only invoked the first time a hook actually fires.
    """

    name = "cjit"
    jit = True

    def __init__(self) -> None:
        super().__init__()
        self._lib: Optional[ctypes.CDLL] = None
        self._failed: Optional[str] = None
        self._lock = threading.Lock()
        #: wall seconds the one-time compile took (0 on cache hit).
        self.compile_seconds = 0.0

    # -- compilation ----------------------------------------------------
    def is_available(self) -> bool:
        with self._lock:
            if self._lib is not None:
                return True
            if self._failed is not None:
                return False
        return _find_cc() is not None

    def availability_note(self) -> str:
        with self._lock:
            failed = self._failed
        if failed is not None:
            return failed
        if _find_cc() is None:
            return "no C compiler on PATH (set $CC or install gcc/clang)"
        return "available"

    def _ensure_lib(self) -> Optional[ctypes.CDLL]:
        # an uncontended lock costs ~100ns — noise next to a launch
        with self._lock:
            if self._lib is None and self._failed is None:
                try:
                    self._lib = self._compile()
                except Exception as exc:  # compile trouble = degrade, never fail
                    self._failed = f"kernel compile failed: {exc}"
                    warnings.warn(
                        f"cjit backend disabled: {self._failed}",
                        RuntimeWarning, stacklevel=2,
                    )
            return self._lib

    def _compile(self) -> ctypes.CDLL:
        import time

        from repro.engine.costmodel import cache_dir

        cc = _find_cc()
        if cc is None:
            raise EngineError("no C compiler on PATH")
        digest = hashlib.sha256(
            (_C_SOURCE + "\0" + cc).encode()
        ).hexdigest()[:16]
        lib_dir = os.path.join(cache_dir(), "kernels")
        os.makedirs(lib_dir, exist_ok=True)
        lib_path = os.path.join(lib_dir, f"repro-kernels-{digest}.so")
        if not os.path.exists(lib_path):
            started = time.perf_counter()
            src_path = os.path.join(lib_dir, f"repro-kernels-{digest}.c")
            tmp_path = f"{lib_path}.tmp.{os.getpid()}"
            with open(src_path, "w", encoding="utf-8") as fh:
                fh.write(_C_SOURCE)
            subprocess.run(
                [cc, "-O3", "-fPIC", "-shared", "-o", tmp_path, src_path],
                check=True, capture_output=True, text=True,
            )
            os.replace(tmp_path, lib_path)  # atomic: racers see whole files
            self.compile_seconds = time.perf_counter() - started
        lib = ctypes.CDLL(lib_path)
        for fn in ("push_batch", "pull_batch", "push_lanes", "or_batch",
                   "edge_mul_add", "scatter_reduce"):
            getattr(lib, fn).restype = None
        return lib

    # -- hooks ----------------------------------------------------------
    @staticmethod
    def _ptr(a: np.ndarray) -> ctypes.c_void_p:
        return ctypes.c_void_p(a.ctypes.data)

    def try_push(self, spec, values, read_values, batch, targets, weights) -> bool:
        if not self._gate_common(spec, values, read_values, batch, weights):
            return False
        if not _i64(targets):
            return False
        lib = self._ensure_lib()
        if lib is None:
            return False
        w = weights if weights is not None else values  # never read when has_w=0
        lib.push_batch(
            self._ptr(values), self._ptr(read_values), self._ptr(batch.phys),
            self._ptr(batch.counts), self._ptr(batch.starts),
            self._ptr(batch.strides), self._ptr(targets), self._ptr(w),
            ctypes.c_int64(batch.num_threads),
            ctypes.c_int(int(weights is not None)),
            ctypes.c_int(spec.relax), ctypes.c_int(spec.reduce),
        )
        self.engaged += 1
        return True

    def try_pull(self, spec, values, read_values, batch, in_sources, weights) -> bool:
        if not self._gate_common(spec, values, read_values, batch, weights):
            return False
        if not _i64(in_sources):
            return False
        lib = self._ensure_lib()
        if lib is None:
            return False
        w = weights if weights is not None else values
        lib.pull_batch(
            self._ptr(values), self._ptr(read_values), self._ptr(batch.phys),
            self._ptr(batch.counts), self._ptr(batch.starts),
            self._ptr(batch.strides), self._ptr(in_sources), self._ptr(w),
            ctypes.c_int64(batch.num_threads),
            ctypes.c_int(int(weights is not None)),
            ctypes.c_int(spec.relax), ctypes.c_int(spec.reduce),
        )
        self.engaged += 1
        return True

    def try_push_lanes(self, spec, values_t, read_t, batch, targets, weights) -> bool:
        if not self._gate_common(spec, values_t, read_t, batch, weights):
            return False
        if not _i64(targets) or values_t.ndim != 2:
            return False
        lib = self._ensure_lib()
        if lib is None:
            return False
        lanes, n = values_t.shape
        w = weights if weights is not None else values_t
        lib.push_lanes(
            self._ptr(values_t), self._ptr(read_t),
            ctypes.c_int64(lanes), ctypes.c_int64(n),
            self._ptr(batch.phys), self._ptr(batch.counts),
            self._ptr(batch.starts), self._ptr(batch.strides),
            self._ptr(targets), self._ptr(w),
            ctypes.c_int64(batch.num_threads),
            ctypes.c_int(int(weights is not None)),
            ctypes.c_int(spec.relax), ctypes.c_int(spec.reduce),
        )
        self.engaged += 1
        return True

    def try_or_scatter(self, new_w, frontier_w, batch, targets) -> bool:
        if batch.phys is None:
            return False
        if not (_u64(new_w) and _u64(frontier_w) and _i64(batch.phys)
                and _i64(batch.counts) and _i64(batch.starts)
                and _i64(batch.strides) and _i64(targets)):
            return False
        if new_w.ndim != 1 or frontier_w.ndim != 1:
            return False
        lib = self._ensure_lib()
        if lib is None:
            return False
        lib.or_batch(
            self._ptr(new_w), self._ptr(frontier_w), self._ptr(batch.phys),
            self._ptr(batch.counts), self._ptr(batch.starts),
            self._ptr(batch.strides), self._ptr(targets),
            ctypes.c_int64(batch.num_threads),
        )
        self.engaged += 1
        return True

    def try_edge_mul_add(self, out, values, src, dst, scale) -> bool:
        if not (_f64(out) and _f64(values) and _f64(scale)
                and _i64(src) and _i64(dst)):
            return False
        lib = self._ensure_lib()
        if lib is None:
            return False
        lib.edge_mul_add(
            self._ptr(out), self._ptr(values), self._ptr(src),
            self._ptr(dst), self._ptr(scale), ctypes.c_int64(len(src)),
        )
        self.engaged += 1
        return True


# ----------------------------------------------------------------------
# Numba backend
# ----------------------------------------------------------------------
class NumbaBackend(KernelBackend):
    """The reference kernels JIT-compiled with :func:`numba.njit`.

    Optional: :meth:`is_available` probes for an importable numba
    without importing it at module load.  Kernels compile lazily per
    shape on first use; ``compile_seconds`` accumulates the one-time
    cost so benches can report warm and compile-included timings
    separately.
    """

    name = "numba"
    jit = True

    def __init__(self) -> None:
        super().__init__()
        self._kernels: Dict[str, object] = {}
        self._failed: Optional[str] = None
        self._lock = threading.Lock()
        self.compile_seconds = 0.0

    def is_available(self) -> bool:
        with self._lock:
            if self._kernels:
                return True
            if self._failed is not None:
                return False
        import importlib.util

        try:
            return importlib.util.find_spec("numba") is not None
        except (ImportError, ValueError):
            return False

    def availability_note(self) -> str:
        with self._lock:
            failed = self._failed
        if failed is not None:
            return failed
        return "numba is not installed (pip install numba)"

    def _kernel(self, key: str, py_func):
        with self._lock:
            kernel = self._kernels.get(key)
            if kernel is not None or self._failed is not None:
                return kernel
            try:
                import time

                import numba

                started = time.perf_counter()
                kernel = numba.njit(cache=False)(py_func)
                self.compile_seconds += time.perf_counter() - started
            except Exception as exc:
                self._failed = f"numba unavailable: {exc}"
                warnings.warn(
                    f"numba backend disabled: {self._failed}",
                    RuntimeWarning, stacklevel=2,
                )
                return None
            self._kernels[key] = kernel
        return kernel

    _EMPTY_W = np.empty(0, dtype=np.float64)

    def try_push(self, spec, values, read_values, batch, targets, weights) -> bool:
        if not self._gate_common(spec, values, read_values, batch, weights):
            return False
        if not _i64(targets):
            return False
        kernel = self._kernel("push", _push_kernel)
        if kernel is None:
            return False
        kernel(values, read_values, batch.phys, batch.counts, batch.starts,
               batch.strides, targets,
               weights if weights is not None else self._EMPTY_W,
               weights is not None, spec.relax, spec.reduce)
        self.engaged += 1
        return True

    def try_pull(self, spec, values, read_values, batch, in_sources, weights) -> bool:
        if not self._gate_common(spec, values, read_values, batch, weights):
            return False
        if not _i64(in_sources):
            return False
        kernel = self._kernel("pull", _pull_kernel)
        if kernel is None:
            return False
        kernel(values, read_values, batch.phys, batch.counts, batch.starts,
               batch.strides, in_sources,
               weights if weights is not None else self._EMPTY_W,
               weights is not None, spec.relax, spec.reduce)
        self.engaged += 1
        return True

    def try_push_lanes(self, spec, values_t, read_t, batch, targets, weights) -> bool:
        if not self._gate_common(spec, values_t, read_t, batch, weights):
            return False
        if not _i64(targets) or values_t.ndim != 2:
            return False
        kernel = self._kernel("push_lanes", _push_lanes_kernel)
        if kernel is None:
            return False
        kernel(values_t, read_t, batch.phys, batch.counts, batch.starts,
               batch.strides, targets,
               weights if weights is not None else self._EMPTY_W,
               weights is not None, spec.relax, spec.reduce)
        self.engaged += 1
        return True

    def try_or_scatter(self, new_w, frontier_w, batch, targets) -> bool:
        if batch.phys is None:
            return False
        if not (_u64(new_w) and _u64(frontier_w) and _i64(batch.phys)
                and _i64(batch.counts) and _i64(batch.starts)
                and _i64(batch.strides) and _i64(targets)):
            return False
        if new_w.ndim != 1 or frontier_w.ndim != 1:
            return False
        kernel = self._kernel("or", _or_kernel)
        if kernel is None:
            return False
        kernel(new_w, frontier_w, batch.phys, batch.counts, batch.starts,
               batch.strides, targets)
        self.engaged += 1
        return True

    def try_edge_mul_add(self, out, values, src, dst, scale) -> bool:
        if not (_f64(out) and _f64(values) and _f64(scale)
                and _i64(src) and _i64(dst)):
            return False
        kernel = self._kernel("edge_mul_add", _edge_mul_add_kernel)
        if kernel is None:
            return False
        kernel(out, values, src, dst, scale)
        self.engaged += 1
        return True


#: the default registry: the scalar baseline plus both JIT backends.
NUMPY_BACKEND = register_backend(KernelBackend())
CJIT_BACKEND = register_backend(CJitBackend())
NUMBA_BACKEND = register_backend(NumbaBackend())


def jit_backends() -> List[str]:
    """Available backends that JIT-compile (cost-model candidates)."""
    with _REGISTRY_LOCK:
        items = list(_REGISTRY.items())
    return sorted(
        n for n, b in items if b.jit and b.is_available()
    )
