"""Vertex programs: the ``vertex_func`` abstraction of §2.1.

A push-based vertex program is a pair (relax, reduce):

* ``relax(src_value, edge_weight) -> candidate`` computes the value a
  node offers each out-neighbor (``alt = v.dist + weight`` in
  Figure 2);
* the reduction folds candidates into the destination's value
  (``atomicMin`` in Algorithm 2).

All six paper analytics fit this shape with MIN/MAX/ADD reductions,
which are associative and commutative — the property Theorem 3 needs
for pull-based virtual correctness, and what makes scatter order
irrelevant (so numpy's ``ufunc.at`` faithfully models the GPU's
atomics).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np


class ReduceOp(enum.Enum):
    """Monotone reduction applied at the destination node."""

    MIN = "min"
    MAX = "max"
    ADD = "add"

    @property
    def ufunc(self) -> np.ufunc:
        """The numpy ufunc realising this reduction."""
        if self is ReduceOp.MIN:
            return np.minimum
        if self is ReduceOp.MAX:
            return np.maximum
        return np.add

    def scatter(self, values: np.ndarray, index: np.ndarray, candidates: np.ndarray) -> None:
        """Apply the reduction in place: ``values[index] op= candidates``.

        Uses unbuffered ``ufunc.at`` so repeated indices fold
        correctly — the numpy equivalent of the GPU's atomic
        operations.
        """
        self.ufunc.at(values, index, candidates)

    @property
    def identity(self) -> float:
        """The value that leaves the reduction unchanged."""
        if self is ReduceOp.MIN:
            return float(np.inf)
        if self is ReduceOp.MAX:
            return float(-np.inf)
        return 0.0

    @property
    def idempotent(self) -> bool:
        """Whether folding the same candidate twice is a no-op.

        MIN and MAX are idempotent; ADD is not.  Idempotence is what
        makes lane-parallel execution safe: the union frontier relaxes
        a node for *every* lane, including lanes whose value did not
        change, and those redundant candidates must fold away.
        """
        return self is not ReduceOp.ADD


class PushProgram(ABC):
    """One vertex-centric analytic in push form.

    Subclasses define initialisation and the relax function; the
    engine owns the loop, the scatter, and convergence detection.
    """

    #: human-readable analytic name (``"sssp"`` etc.).
    name: str = "program"
    #: reduction folding candidates into destination values.
    reduce: ReduceOp = ReduceOp.MIN
    #: whether :meth:`relax` consumes edge weights.
    needs_weights: bool = False
    #: on an *unweighted* graph the relax is exactly ``src + 1`` and
    #: values are hop counts — the marker the lane engine keys its
    #: bit-packed MS-BFS fast path on.
    unit_hop_metric: bool = False

    @abstractmethod
    def initial_values(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        """Per-physical-node value array before iteration 0."""

    @abstractmethod
    def initial_frontier(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        """Physical node ids active in iteration 0."""

    @abstractmethod
    def relax(
        self, src_values: np.ndarray, edge_weights: Optional[np.ndarray]
    ) -> np.ndarray:
        """Candidate values offered along each edge (vectorised).

        ``src_values`` holds the *source* node's current value per
        edge; ``edge_weights`` parallels it (``None`` on unweighted
        graphs).  Must not mutate its inputs.
        """

    def filter_pushes(
        self, candidates: np.ndarray, src_values: np.ndarray
    ) -> Optional[np.ndarray]:
        """Optional mask of candidates worth scattering.

        Default: all of them.  Programs can prune provably useless
        pushes (e.g. from unreached sources) to mirror what the CUDA
        kernels' branch would skip.
        """
        return None

    # ------------------------------------------------------------------
    # Lane-parallel (multi-source) extensions
    # ------------------------------------------------------------------
    @property
    def lane_safe(self) -> bool:
        """Whether this (relax, reduce) pair may run lane-parallel.

        Lane-parallel execution schedules the *union* of per-lane
        frontiers, so a node is relaxed for every lane whenever any
        lane activated it.  That over-relaxation is harmless exactly
        when the reduction is idempotent (MIN/MAX): redundant
        candidates equal values already folded in.  ADD reductions
        would double-count and must stay scalar.  The applicability
        table (:data:`repro.core.applicability.PROGRAM_EXPECTATIONS`)
        certifies this per program, and ``repro analyze`` diffs the
        two (SPLIT006).
        """
        return self.reduce.idempotent

    def lane_relax(
        self, src_values: np.ndarray, edge_weights: Optional[np.ndarray]
    ) -> np.ndarray:
        """Vectorised relax across lanes: ``(E, S) -> (E, S)``.

        ``src_values`` holds each edge's source value per lane;
        ``edge_weights`` is the per-edge weight *column* ``(E, 1)`` (or
        ``None``), shared by every lane.  The default delegates to the
        scalar :meth:`relax`, which is correct for any elementwise
        relax body — numpy broadcasting applies the same arithmetic
        per lane.  Programs whose relax cannot broadcast override
        this.
        """
        return self.relax(src_values, edge_weights)

    def initial_lane_values(
        self, num_nodes: int, sources: Sequence[int]
    ) -> np.ndarray:
        """Per-node value matrix ``(num_nodes, len(sources))``.

        Column ``k`` is the scalar initialisation for ``sources[k]``.
        """
        if len(sources) == 0:
            return np.zeros((num_nodes, 0))
        return np.stack(
            [self.initial_values(num_nodes, int(s)) for s in sources], axis=1
        )

    def initial_lane_frontier(
        self, num_nodes: int, sources: Sequence[int]
    ) -> np.ndarray:
        """Union of the per-lane initial frontiers (deduplicated)."""
        if len(sources) == 0:
            return np.zeros(0, dtype=np.int64)
        return np.unique(
            np.concatenate(
                [self.initial_frontier(num_nodes, int(s)) for s in sources]
            )
        )
