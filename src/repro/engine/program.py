"""Vertex programs: the ``vertex_func`` abstraction of §2.1.

A push-based vertex program is a pair (relax, reduce):

* ``relax(src_value, edge_weight) -> candidate`` computes the value a
  node offers each out-neighbor (``alt = v.dist + weight`` in
  Figure 2);
* the reduction folds candidates into the destination's value
  (``atomicMin`` in Algorithm 2).

All six paper analytics fit this shape with MIN/MAX/ADD reductions,
which are associative and commutative — the property Theorem 3 needs
for pull-based virtual correctness, and what makes scatter order
irrelevant (so numpy's ``ufunc.at`` faithfully models the GPU's
atomics).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np


class ReduceOp(enum.Enum):
    """Monotone reduction applied at the destination node."""

    MIN = "min"
    MAX = "max"
    ADD = "add"

    def scatter(self, values: np.ndarray, index: np.ndarray, candidates: np.ndarray) -> None:
        """Apply the reduction in place: ``values[index] op= candidates``.

        Uses unbuffered ``ufunc.at`` so repeated indices fold
        correctly — the numpy equivalent of the GPU's atomic
        operations.
        """
        if self is ReduceOp.MIN:
            np.minimum.at(values, index, candidates)
        elif self is ReduceOp.MAX:
            np.maximum.at(values, index, candidates)
        else:
            np.add.at(values, index, candidates)

    @property
    def identity(self) -> float:
        """The value that leaves the reduction unchanged."""
        if self is ReduceOp.MIN:
            return float(np.inf)
        if self is ReduceOp.MAX:
            return float(-np.inf)
        return 0.0


class PushProgram(ABC):
    """One vertex-centric analytic in push form.

    Subclasses define initialisation and the relax function; the
    engine owns the loop, the scatter, and convergence detection.
    """

    #: human-readable analytic name (``"sssp"`` etc.).
    name: str = "program"
    #: reduction folding candidates into destination values.
    reduce: ReduceOp = ReduceOp.MIN
    #: whether :meth:`relax` consumes edge weights.
    needs_weights: bool = False

    @abstractmethod
    def initial_values(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        """Per-physical-node value array before iteration 0."""

    @abstractmethod
    def initial_frontier(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        """Physical node ids active in iteration 0."""

    @abstractmethod
    def relax(
        self, src_values: np.ndarray, edge_weights: Optional[np.ndarray]
    ) -> np.ndarray:
        """Candidate values offered along each edge (vectorised).

        ``src_values`` holds the *source* node's current value per
        edge; ``edge_weights`` parallels it (``None`` on unweighted
        graphs).  Must not mutate its inputs.
        """

    def filter_pushes(
        self, candidates: np.ndarray, src_values: np.ndarray
    ) -> Optional[np.ndarray]:
        """Optional mask of candidates worth scattering.

        Default: all of them.  Programs can prune provably useless
        pushes (e.g. from unreached sources) to mirror what the CUDA
        kernels' branch would skip.
        """
        return None
