"""Schedulers: mapping active physical nodes to GPU threads.

The scheduler is where every method in the evaluation differs:

=====================  =====================================================
Scheduler              Models
=====================  =====================================================
:class:`NodeScheduler`       baseline engine and Tigr-UDT (thread per node)
:class:`VirtualScheduler`    Tigr-V / Tigr-V+ (thread per virtual node,
                             Algorithms 2–3; coalescing via the layout)
:class:`MaxWarpScheduler`    Maximum Warp [23]: ``w`` sub-warp lanes per node
:class:`EdgeParallelScheduler` Gunrock-style per-edge load balancing and
                             CuSha-style shard processing
=====================  =====================================================

A scheduler turns a frontier of *physical* node ids into a
:class:`ThreadBatch`: parallel per-thread arrays (owning physical
node, edge count, edge start slot, stride) from which both the engine
(for semantics) and the GPU simulator (for cost) read.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import EngineError
from repro.core.virtual import VirtualGraph
from repro.gpu.warp import WorkTrace
from repro.graph.csr import CSRGraph, NODE_DTYPE
from repro.indexing import strided_ranges_to_indices


@dataclass(frozen=True)
class ThreadBatch:
    """One kernel launch: per-thread work descriptors.

    Thread ``i`` processes edge-array slots ``starts[i] +
    strides[i] * j`` for ``j < counts[i]``.  Usually the thread
    belongs to one physical node (``phys[i]``); schedulers whose
    threads span *several* nodes' edges (warp segmentation) pass
    ``phys=None`` together with ``edge_owner`` — the CSR offsets —
    and edge sources are derived per slot instead.
    """

    phys: Optional[np.ndarray]
    counts: np.ndarray
    starts: np.ndarray
    strides: np.ndarray
    #: CSR offsets used to derive per-edge sources when phys is None.
    edge_owner: Optional[np.ndarray] = None
    #: per-batch cache for the derived edge arrays — the lane engines
    #: ask for both :meth:`edge_indices` and :meth:`sources_per_edge`
    #: each launch, and recomputing the strided expansion would double
    #: the gather cost.  Never hashed or compared; treat the cached
    #: arrays as read-only.
    _memo: Dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.phys is None and self.edge_owner is None:
            raise EngineError("ThreadBatch needs phys or edge_owner")

    @property
    def num_threads(self) -> int:
        return len(self.counts)

    @property
    def total_edges(self) -> int:
        return int(self.counts.sum()) if len(self.counts) else 0

    def edge_indices(self) -> np.ndarray:
        """Flat physical edge-array indices, thread by thread."""
        cached = self._memo.get("edge_indices")
        if cached is None:
            cached = strided_ranges_to_indices(
                self.starts, self.counts, self.strides
            )
            self._memo["edge_indices"] = cached
        return cached

    def sources_per_edge(self) -> np.ndarray:
        """The owning physical node of each slot of :meth:`edge_indices`."""
        cached = self._memo.get("sources_per_edge")
        if cached is not None:
            return cached
        if self.phys is not None:
            result = np.repeat(self.phys, self.counts)
        else:
            slots = self.edge_indices()
            result = (
                np.searchsorted(self.edge_owner, slots, side="right") - 1
            ).astype(NODE_DTYPE)
        self._memo["sources_per_edge"] = result
        return result

    def trace(self) -> WorkTrace:
        """The GPU-simulator view of this launch."""
        return WorkTrace(self.counts, self.starts, self.strides)

    def slice(self, lo: int, hi: int) -> "ThreadBatch":
        """Sub-batch of threads ``[lo, hi)`` (synchronization
        relaxation processes a launch in sequential blocks)."""
        return ThreadBatch(
            None if self.phys is None else self.phys[lo:hi],
            self.counts[lo:hi],
            self.starts[lo:hi], self.strides[lo:hi],
            edge_owner=self.edge_owner,
        )


class Scheduler(ABC):
    """Maps frontiers of physical nodes to thread batches."""

    #: the graph whose edge array thread descriptors index into.
    graph: CSRGraph

    @abstractmethod
    def batch(self, active: np.ndarray) -> ThreadBatch:
        """Thread batch covering the given active physical nodes."""

    def all_nodes(self) -> np.ndarray:
        """Convenience frontier: every node."""
        return np.arange(self.graph.num_nodes, dtype=NODE_DTYPE)


class NodeScheduler(Scheduler):
    """One thread per active node over its whole (consecutive) edge
    range — the plain vertex-parallel kernel of [22] and the paper's
    baseline engine."""

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph

    def batch(self, active: np.ndarray) -> ThreadBatch:
        active = np.asarray(active, dtype=NODE_DTYPE)
        starts = self.graph.offsets[active]
        counts = self.graph.offsets[active + 1] - starts
        strides = np.ones(len(active), dtype=NODE_DTYPE)
        return ThreadBatch(active, counts, starts, strides)


class VirtualScheduler(Scheduler):
    """One thread per active *virtual* node (Algorithms 2–3).

    A physical node whose value changed activates all its virtual
    siblings (they share the changed value — implicit value
    synchronization), which is exactly the worklist behaviour of the
    paper's engine.
    """

    def __init__(self, virtual: VirtualGraph) -> None:
        self.virtual = virtual
        self.graph = virtual.physical

    def batch(self, active: np.ndarray) -> ThreadBatch:
        active = np.asarray(active, dtype=NODE_DTYPE)
        vids = self.virtual.virtual_nodes_of(active)
        starts, counts, strides = self.virtual.edge_layout(vids)
        phys = self.virtual.physical_ids[vids]
        return ThreadBatch(phys, counts, starts, strides)


class MaxWarpScheduler(Scheduler):
    """Maximum Warp [23]: each node's edges are strided across ``w``
    sub-warp lanes.

    Lane ``j`` of a node with degree ``d`` processes slots
    ``offset + j, offset + j + w, ...`` — ``ceil((d - j) / w)`` of
    them.  Sub-warp lanes of one node are consecutive threads, so a
    32-lane warp holds ``32 / w`` nodes; divergence across those nodes
    is what remains of the load imbalance.
    """

    def __init__(self, graph: CSRGraph, virtual_warp_size: int) -> None:
        if virtual_warp_size < 1 or virtual_warp_size > 32:
            raise EngineError(
                f"virtual warp size must be in [1, 32], got {virtual_warp_size}"
            )
        self.graph = graph
        self.w = int(virtual_warp_size)

    def batch(self, active: np.ndarray) -> ThreadBatch:
        active = np.asarray(active, dtype=NODE_DTYPE)
        w = self.w
        phys = np.repeat(active, w)
        lane = np.tile(np.arange(w, dtype=NODE_DTYPE), len(active))
        offsets = self.graph.offsets[phys]
        degrees = self.graph.offsets[phys + 1] - offsets
        counts = np.maximum(0, (degrees - lane + w - 1) // w)
        starts = offsets + lane
        strides = np.full(len(phys), w, dtype=NODE_DTYPE)
        return ThreadBatch(phys, counts, starts, strides)


class EdgeParallelScheduler(Scheduler):
    """One thread per active edge — perfect load balance.

    Models frontier engines that pre-partition the frontier's edges
    evenly over threads (Gunrock's load-balanced advance) and shard
    engines that stream the whole edge array (CuSha).  Thread order
    follows edge-array order, so the access pattern is coalesced.
    """

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph

    def batch(self, active: np.ndarray) -> ThreadBatch:
        active = np.asarray(active, dtype=NODE_DTYPE)
        node_starts = self.graph.offsets[active]
        node_counts = self.graph.offsets[active + 1] - node_starts
        slots = strided_ranges_to_indices(node_starts, node_counts, None)
        phys = np.repeat(active, node_counts)
        ones = np.ones(len(slots), dtype=NODE_DTYPE)
        return ThreadBatch(phys, ones, slots, ones)


class WarpSegmentationScheduler(Scheduler):
    """Warp segmentation [30]: a warp's lanes split its nodes' edges
    evenly among themselves.

    Active nodes are grouped 32 per warp; the warp's lanes divide the
    group's *contiguous* CSR edge span into 32 near-equal consecutive
    chunks (located on real GPUs by an intra-warp binary search over
    the offsets).  Intra-warp balance is perfect by construction; what
    remains is inter-warp imbalance — a warp holding a hub still takes
    ``d/32`` steps while leaf warps take one — which is exactly the
    residue the paper's splitting removes and this model preserves.

    Requires the active set to be sorted (frontiers are) so each
    warp's edge span is contiguous.
    """

    def __init__(self, graph: CSRGraph, *, warp_size: int = 32) -> None:
        if warp_size < 1:
            raise EngineError("warp size must be >= 1")
        self.graph = graph
        self.warp_size = int(warp_size)

    def batch(self, active: np.ndarray) -> ThreadBatch:
        active = np.asarray(active, dtype=NODE_DTYPE)
        w = self.warp_size
        counts_out = []
        starts_out = []
        offsets = self.graph.offsets
        for lo in range(0, len(active), w):
            group = active[lo : lo + w]
            # contiguity check: non-contiguous groups fall back to
            # per-node spans concatenated (still correct, slightly
            # conservative on balance)
            span_edges = int((offsets[group + 1] - offsets[group]).sum())
            per_lane = -(-span_edges // w) if span_edges else 0
            base = int(offsets[group[0]])
            contiguous = bool(
                np.all(offsets[group[1:]] == offsets[group[:-1] + 1])
            ) if len(group) > 1 else True
            if not contiguous:
                # concatenated per-node fallback: lane l walks node l
                starts_out.extend(int(x) for x in offsets[group])
                counts_out.extend(
                    int(x) for x in (offsets[group + 1] - offsets[group])
                )
                continue
            for lane in range(w):
                lane_start = base + lane * per_lane
                lane_count = max(
                    0, min(per_lane, base + span_edges - lane_start)
                )
                starts_out.append(lane_start)
                counts_out.append(lane_count)
        return ThreadBatch(
            phys=None,
            counts=np.asarray(counts_out, dtype=NODE_DTYPE),
            starts=np.asarray(starts_out, dtype=NODE_DTYPE),
            strides=np.ones(len(counts_out), dtype=NODE_DTYPE),
            edge_owner=offsets,
        )
