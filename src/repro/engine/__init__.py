"""Vertex-centric BSP engines (push and pull) with pluggable scheduling.

The engine layer realises §2.1's programming model on top of the
simulated GPU:

* a :class:`~repro.engine.program.PushProgram` defines the per-edge
  relax function and the monotone reduction (MIN/MAX/ADD) — the
  ``vertex_func`` of Figure 2;
* a :class:`~repro.engine.schedule.Scheduler` decides how active
  physical nodes become GPU threads — one thread per node (baseline,
  physical transforms), one per virtual node (Tigr-V / Tigr-V+,
  Algorithms 2–3), ``w`` sub-warp lanes per node (Maximum Warp), or
  one per edge (Gunrock/CuSha-style edge parallelism);
* :func:`~repro.engine.push.run_push` and
  :func:`~repro.engine.pull.run_pull` run the BSP loop with optional
  worklist, synchronization relaxation, and GPU cost simulation.
"""

from repro.engine.adaptive import AdaptiveOptions, AdaptiveResult, run_adaptive
from repro.engine.frontier import DENSE_THRESHOLD, Frontier, LaneFrontier
from repro.engine.program import PushProgram, ReduceOp
from repro.engine.push import EngineOptions, EngineResult, run_push, run_push_lanes
from repro.engine.pull import run_pull, run_pull_lanes
from repro.engine.schedule import (
    EdgeParallelScheduler,
    MaxWarpScheduler,
    NodeScheduler,
    Scheduler,
    ThreadBatch,
    VirtualScheduler,
    WarpSegmentationScheduler,
)

__all__ = [
    "Frontier",
    "LaneFrontier",
    "AdaptiveOptions",
    "AdaptiveResult",
    "run_adaptive",
    "DENSE_THRESHOLD",
    "PushProgram",
    "ReduceOp",
    "EngineOptions",
    "EngineResult",
    "run_push",
    "run_push_lanes",
    "run_pull",
    "run_pull_lanes",
    "Scheduler",
    "ThreadBatch",
    "NodeScheduler",
    "VirtualScheduler",
    "MaxWarpScheduler",
    "EdgeParallelScheduler",
    "WarpSegmentationScheduler",
]
