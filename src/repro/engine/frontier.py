"""Active-set (worklist) representation with sparse/dense switching.

The worklist optimization (§5) tracks which nodes must be processed
next iteration.  Real engines switch representation by occupancy —
Ligra popularised the heuristic: a short list of node ids (sparse)
while the frontier is small, a boolean bitmap (dense) once it covers
a meaningful fraction of the graph, because at that point the bitmap
is both smaller and cheaper to build than a sorted id list.

:class:`Frontier` encapsulates that switch; the push engine threads
it through the BSP loop and reports how many iterations ran dense.

:class:`LaneFrontier` is the multi-source generalisation: ``S``
per-lane active sets sharing one *union* schedule.  The union is what
the scheduler consumes (one edge gather serves every lane), while the
per-lane view tracks which lanes are still live — a lane whose own
frontier empties has reached its fixed point and never reactivates
under a monotone program.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EngineError
from repro.graph.csr import NODE_DTYPE

#: default occupancy above which the dense representation wins.
DENSE_THRESHOLD = 1.0 / 16.0


class Frontier:
    """A set of active node ids over ``0..num_nodes``.

    Immutable value semantics: constructors return new frontiers.
    Whichever representation is active, :meth:`ids` always yields the
    sorted id array the schedulers consume.
    """

    __slots__ = ("num_nodes", "_ids", "_mask", "dense_threshold")

    def __init__(
        self,
        num_nodes: int,
        *,
        ids: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
        dense_threshold: float = DENSE_THRESHOLD,
    ) -> None:
        if (ids is None) == (mask is None):
            raise EngineError("provide exactly one of ids or mask")
        if not 0.0 < dense_threshold <= 1.0:
            raise EngineError("dense_threshold must be in (0, 1]")
        self.num_nodes = int(num_nodes)
        self.dense_threshold = float(dense_threshold)
        self._ids = None
        self._mask = None
        if ids is not None:
            ids = np.unique(np.asarray(ids, dtype=NODE_DTYPE))
            if len(ids) and (ids[0] < 0 or ids[-1] >= num_nodes):
                raise EngineError("frontier ids out of range")
            self._ids = ids
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (num_nodes,):
                raise EngineError("frontier mask has wrong shape")
            self._mask = mask.copy()
        self._maybe_switch()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_ids(cls, num_nodes: int, ids, **kwargs) -> "Frontier":
        """Sparse constructor (duplicates are collapsed)."""
        return cls(num_nodes, ids=np.asarray(ids), **kwargs)

    @classmethod
    def from_mask(cls, num_nodes: int, mask, **kwargs) -> "Frontier":
        """Dense constructor."""
        return cls(num_nodes, mask=np.asarray(mask), **kwargs)

    @classmethod
    def all_nodes(cls, num_nodes: int, **kwargs) -> "Frontier":
        """The full frontier (iteration 0 of CC, every PR iteration)."""
        return cls(num_nodes, mask=np.ones(num_nodes, dtype=bool), **kwargs)

    @classmethod
    def empty(cls, num_nodes: int, **kwargs) -> "Frontier":
        return cls(num_nodes, ids=np.zeros(0, dtype=NODE_DTYPE), **kwargs)

    # ------------------------------------------------------------------
    # Representation
    # ------------------------------------------------------------------
    @property
    def is_dense(self) -> bool:
        """Whether the bitmap representation is active."""
        return self._mask is not None

    def _maybe_switch(self) -> None:
        if self.num_nodes == 0:
            if self._mask is not None:
                self._ids = np.zeros(0, dtype=NODE_DTYPE)
                self._mask = None
            return
        occupancy = self.size / self.num_nodes
        if self._ids is not None and occupancy >= self.dense_threshold:
            mask = np.zeros(self.num_nodes, dtype=bool)
            mask[self._ids] = True
            self._mask, self._ids = mask, None
        elif self._mask is not None and occupancy < self.dense_threshold:
            self._ids, self._mask = np.flatnonzero(self._mask).astype(NODE_DTYPE), None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of active nodes."""
        if self._ids is not None:
            return len(self._ids)
        return int(self._mask.sum())

    def __len__(self) -> int:
        return self.size

    def __bool__(self) -> bool:
        return self.size > 0

    def ids(self) -> np.ndarray:
        """Sorted active ids (what schedulers consume)."""
        if self._ids is not None:
            return self._ids
        return np.flatnonzero(self._mask).astype(NODE_DTYPE)

    def mask(self) -> np.ndarray:
        """Boolean membership mask."""
        if self._mask is not None:
            return self._mask.copy()
        mask = np.zeros(self.num_nodes, dtype=bool)
        mask[self._ids] = True
        return mask

    def contains(self, node: int) -> bool:
        if self._mask is not None:
            return bool(self._mask[node])
        return bool(np.any(self._ids == node))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def union(self, other: "Frontier") -> "Frontier":
        if self.num_nodes != other.num_nodes:
            raise EngineError("frontier size mismatch")
        if self.is_dense or other.is_dense:
            return Frontier(self.num_nodes, mask=self.mask() | other.mask(),
                            dense_threshold=self.dense_threshold)
        merged = np.union1d(self.ids(), other.ids())
        return Frontier(self.num_nodes, ids=merged,
                        dense_threshold=self.dense_threshold)

    def __repr__(self) -> str:
        kind = "dense" if self.is_dense else "sparse"
        return f"Frontier({self.size}/{self.num_nodes}, {kind})"


class LaneFrontier:
    """``S`` per-lane active sets scheduled through one union frontier.

    The union (a plain :class:`Frontier`, inheriting its sparse/dense
    switching) is what schedulers consume; ``lane_active`` records
    which lanes contributed at least one node, so engines can report
    live-lane occupancy and detect per-lane convergence.  Immutable
    value semantics, like :class:`Frontier`.
    """

    __slots__ = ("union", "num_lanes", "lane_active")

    def __init__(self, union: Frontier, lane_active: np.ndarray) -> None:
        self.union = union
        self.lane_active = np.asarray(lane_active, dtype=bool)
        self.num_lanes = len(self.lane_active)

    @classmethod
    def from_lane_mask(
        cls, num_nodes: int, lane_mask: np.ndarray,
        *, dense_threshold: float = DENSE_THRESHOLD,
    ) -> "LaneFrontier":
        """Build from a ``(num_nodes, S)`` boolean activity matrix."""
        lane_mask = np.asarray(lane_mask, dtype=bool)
        if lane_mask.ndim != 2 or lane_mask.shape[0] != num_nodes:
            raise EngineError("lane mask must have shape (num_nodes, S)")
        union = Frontier.from_mask(
            num_nodes, lane_mask.any(axis=1), dense_threshold=dense_threshold
        )
        return cls(union, lane_mask.any(axis=0))

    @classmethod
    def from_union_ids(
        cls, num_nodes: int, ids, num_lanes: int,
        *, dense_threshold: float = DENSE_THRESHOLD,
    ) -> "LaneFrontier":
        """Build from union ids with every lane considered live
        (iteration 0, where per-lane change data does not exist yet)."""
        union = Frontier.from_ids(
            num_nodes, ids, dense_threshold=dense_threshold
        )
        return cls(union, np.ones(num_lanes, dtype=bool))

    def ids(self) -> np.ndarray:
        """Sorted union of all lanes' active ids."""
        return self.union.ids()

    @property
    def active_lanes(self) -> int:
        """How many lanes still have at least one active node."""
        return int(self.lane_active.sum())

    @property
    def is_dense(self) -> bool:
        return self.union.is_dense

    def __len__(self) -> int:
        return self.union.size

    def __bool__(self) -> bool:
        return self.union.size > 0

    def __repr__(self) -> str:
        return (
            f"LaneFrontier({self.union.size}/{self.union.num_nodes} nodes, "
            f"{self.active_lanes}/{self.num_lanes} lanes)"
        )
