"""Deterministic GPU SIMD cost model.

The paper's measurements come from CUDA kernels on an NVIDIA Quadro
P4000.  This package replaces that hardware with a first-principles
warp-level model of the quantities the paper's analysis is built on:

* **SIMD lock-step** (§2.2, Figure 3): a warp of 32 lanes advances at
  the pace of its slowest lane, so a warp's step count is the *max*
  per-lane work and its efficiency is useful-lane-steps over
  32 × steps — exactly the warp-efficiency columns of Table 8.
* **SM occupancy**: warps are issued across a fixed number of warp
  slots; the kernel's makespan is the larger of the critical (longest)
  warp and total work divided by parallelism — this is what makes a
  single 698 K-degree hub node dominate an entire kernel.
* **Memory coalescing** (§4.4): per inner step, a warp's lanes touch
  edge-array addresses whose spacing decides how many 128-byte
  transactions the access costs.  The edge-array-coalescing layout of
  Figure 12 makes sibling lanes adjacent, which is the entire point of
  Tigr-V+.

The model is consumed through :class:`~repro.gpu.simulator.GPUSimulator`,
which the engines feed one :class:`~repro.gpu.warp.WorkTrace` per
iteration.
"""

from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.metrics import IterationMetrics, RunMetrics
from repro.gpu.profile import bottleneck_report, compare_runs, iteration_rows, profile_text
from repro.gpu.simulator import GPUSimulator
from repro.gpu.warp import WorkTrace, warp_statistics

__all__ = [
    "GPUConfig",
    "KernelProfile",
    "GPUSimulator",
    "WorkTrace",
    "warp_statistics",
    "IterationMetrics",
    "RunMetrics",
    "iteration_rows",
    "profile_text",
    "compare_runs",
    "bottleneck_report",
]
