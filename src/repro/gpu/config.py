"""GPU hardware description and per-method kernel cost profiles."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GPUConfig:
    """The simulated device — defaults model the paper's Quadro P4000.

    The figures that matter to the model are the warp width, the
    number of concurrent warp slots (cores / warp size), the clock,
    the memory transaction granularity, and the device memory budget
    used for Table 4's OOM entries.

    Two defaults are rescaled to match the ~1000× dataset scale-down
    (see DESIGN.md §2):

    * ``device_memory_bytes`` defaults to 20 MB — the paper's 8 GB
      scaled down and then roughly doubled because this library stores
      8-byte words where the CUDA code uses 4-byte ones;
    * ``cores`` defaults to 896 (half the physical P4000's 1792) so
      the workload-to-parallelism ratio stays in the paper's regime —
      at full parallelism over 1000×-smaller graphs, every kernel
      would be dominated by its single largest warp and the method
      ratios would be exaggerated.
    """

    warp_size: int = 32
    num_sm: int = 14
    cores: int = 896
    clock_ghz: float = 1.2
    #: DRAM transaction granularity (bytes) — coalescing quantum.
    transaction_bytes: int = 128
    #: bytes of one edge record as laid out in device memory.
    word_bytes: int = 8
    #: simulated device memory for footprint checks (Table 4 OOM).
    device_memory_bytes: int = 20 * 1024 * 1024
    #: fixed cost of one kernel launch, in cycles.  A real launch is
    #: ~5 us (6000 cycles); it is scaled down 10x here to keep the
    #: overhead:work ratio on the ~1000x-smaller stand-in graphs
    #: comparable to the paper's (otherwise every method's time would
    #: be launch-dominated and the ratios would compress).
    kernel_launch_cycles: int = 600

    @property
    def warp_slots(self) -> int:
        """Concurrent warp capacity of the whole device."""
        return max(1, self.cores // self.warp_size)

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert device cycles to milliseconds at the device clock."""
        return cycles / (self.clock_ghz * 1e9) * 1e3

    def with_memory(self, device_memory_bytes: int) -> "GPUConfig":
        """Copy of this config with a different memory budget."""
        return replace(self, device_memory_bytes=device_memory_bytes)


@dataclass(frozen=True)
class KernelProfile:
    """Per-method kernel cost coefficients.

    Different frameworks execute the same logical edge work with
    different instruction counts, kernel counts and value-array access
    patterns; the baseline models in :mod:`repro.baselines` each carry
    one of these.

    Attributes
    ----------
    name:
        Label for reports.
    cycles_per_step:
        Issue cycles per warp SIMD step (one edge per lane): covers
        the relax computation and comparison.
    cycles_per_thread:
        Per-thread setup (read ids, load own value, bounds checks) —
        charged as ``ceil(threads_in_warp / warp)`` extra steps' worth.
    instructions_per_edge / instructions_per_thread:
        Active-lane instruction counting (Table 8's ``#instr.``).
    cycles_per_transaction:
        Amortised DRAM throughput cost of one 128-byte transaction
        (latency is mostly hidden by warp switching; this is the
        bandwidth term).
    value_access_factor:
        Memory transactions per processed edge spent on the *value*
        array (random gather of the destination value plus the atomic
        update, discounted by L2 hits).  Frameworks with privatised /
        coalesced value access (CuSha's shards) have a smaller factor.
    launches_per_iteration:
        Kernels launched per BSP iteration (Gunrock's advance+filter
        pipelines launch several).
    """

    name: str = "default"
    cycles_per_step: float = 6.0
    cycles_per_thread: float = 4.0
    instructions_per_edge: float = 10.0
    instructions_per_thread: float = 8.0
    cycles_per_transaction: float = 3.0
    value_access_factor: float = 1.0
    launches_per_iteration: int = 1

    def scaled(self, **overrides: float) -> "KernelProfile":
        """Copy with some coefficients replaced."""
        return replace(self, **overrides)
