"""Warp-level accounting: from per-thread work to per-warp statistics.

A :class:`WorkTrace` captures one iteration's thread launch: for every
thread, how many edge slots it processes (``counts``), where its slots
start in the edge array (``starts``) and with what stride
(``strides``).  Threads are grouped into warps in launch order, 32 at
a time — exactly how the CUDA runtime would.

:func:`warp_statistics` reduces a trace to the per-warp quantities the
cost model consumes: SIMD step counts (max-lane), useful lane steps,
and the effective inter-lane address gap that determines memory
coalescing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WorkTrace:
    """Per-thread work description for one kernel launch.

    ``counts[i]`` edge slots for thread ``i``, at edge-array indices
    ``starts[i] + strides[i] * j`` for ``j < counts[i]``.  Threads with
    ``counts == 0`` still occupy a lane (they run the setup code and
    idle during edge steps).
    """

    counts: np.ndarray
    starts: np.ndarray
    strides: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.counts) == len(self.starts) == len(self.strides)):
            raise ValueError("trace arrays must be parallel")

    @property
    def num_threads(self) -> int:
        return len(self.counts)

    @property
    def total_edges(self) -> int:
        """Edge slots processed across all threads."""
        return int(self.counts.sum()) if len(self.counts) else 0

    @classmethod
    def uniform(cls, num_threads: int, count: int, *, start: int = 0) -> "WorkTrace":
        """A perfectly regular trace: every thread does ``count`` slots,
        laid out consecutively — handy in tests and for edge-parallel
        baselines."""
        counts = np.full(num_threads, count, dtype=np.int64)
        starts = start + np.arange(num_threads, dtype=np.int64) * count
        strides = np.ones(num_threads, dtype=np.int64)
        return cls(counts, starts, strides)


@dataclass(frozen=True)
class WarpStats:
    """Aggregate per-warp statistics of one trace."""

    num_warps: int
    #: per-warp SIMD step count: max lane count in each warp.
    steps: np.ndarray
    #: per-warp useful lane-steps: sum of lane counts.
    edges: np.ndarray
    #: per-warp active thread count (count > 0 lanes).
    active_lanes: np.ndarray
    #: per-warp launched thread count (last warp may be partial).
    launched_lanes: np.ndarray
    #: per-warp effective inter-lane gap in *bytes* for edge access.
    gap_bytes: np.ndarray

    @property
    def total_steps(self) -> int:
        return int(self.steps.sum())

    @property
    def total_edges(self) -> int:
        return int(self.edges.sum())

    def warp_efficiency(self, warp_size: int = 32) -> float:
        """Useful lane-steps over occupied lane-steps (Table 8 metric).

        A warp at step ``s`` occupies all ``warp_size`` lanes whether
        or not each lane still has work; efficiency is the fraction
        doing useful edge work.  1.0 for perfectly uniform warps,
        ``~1/32`` when a single hub lane drags 31 idle lanes along.
        Traces with no edge work at all report 1.0 (nothing wasted).
        """
        denom = self.total_steps * warp_size
        if denom == 0:
            return 1.0
        return self.total_edges / denom


def warp_statistics(
    trace: WorkTrace, *, warp_size: int = 32, word_bytes: int = 8,
    transaction_bytes: int = 128,
) -> WarpStats:
    """Group a trace into warps and compute per-warp statistics.

    The inter-lane gap: at each SIMD step the warp's active lanes
    access edge slots whose pairwise spacing decides coalescing.  We
    summarise it as the mean distance between consecutive active
    lanes' current slots, clipped to ``[word_bytes,
    transaction_bytes]`` — adjacent lanes on adjacent slots give
    ``word_bytes`` (fully coalesced); lanes more than one transaction
    apart are fully uncoalesced and clip at ``transaction_bytes``.
    Lane starts are representative of every step because lanes advance
    in lock-step by their own stride.
    """
    n = trace.num_threads
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return WarpStats(0, empty, empty, empty, empty, empty.astype(np.float64))
    num_warps = -(-n // warp_size)
    padded = num_warps * warp_size

    counts = np.zeros(padded, dtype=np.int64)
    counts[:n] = trace.counts
    counts = counts.reshape(num_warps, warp_size)

    starts = np.full(padded, -1, dtype=np.int64)
    starts[:n] = trace.starts
    starts = starts.reshape(num_warps, warp_size)

    steps = counts.max(axis=1)
    edges = counts.sum(axis=1)
    active = (counts > 0).sum(axis=1)
    launched = np.full(num_warps, warp_size, dtype=np.int64)
    launched[-1] = n - (num_warps - 1) * warp_size

    # Effective gap: mean |diff| of consecutive ACTIVE lanes' starts.
    active_mask = counts > 0
    gap = np.full(num_warps, float(transaction_bytes))
    # pairwise diffs between consecutive lanes, masked to active pairs
    diffs = np.abs(np.diff(starts, axis=1)).astype(np.float64) * word_bytes
    pair_ok = active_mask[:, 1:] & active_mask[:, :-1]
    clipped = np.clip(diffs, word_bytes, transaction_bytes)
    pair_counts = pair_ok.sum(axis=1)
    has_pairs = pair_counts > 0
    sums = np.where(pair_ok, clipped, 0.0).sum(axis=1)
    gap[has_pairs] = sums[has_pairs] / pair_counts[has_pairs]

    return WarpStats(
        num_warps=num_warps,
        steps=steps,
        edges=edges,
        active_lanes=active,
        launched_lanes=launched,
        gap_bytes=gap,
    )
