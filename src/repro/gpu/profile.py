"""Run profiling: Table 8-style breakdowns for any simulated run.

§6.5 of the paper drills into one SSSP run with per-iteration counts
and efficiency figures.  This module generalises that: given the
:class:`~repro.gpu.metrics.RunMetrics` any engine run produces, build
the per-iteration table, and given several runs, the side-by-side
comparison — the tooling a performance engineer would actually use
with this library.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gpu.metrics import RunMetrics


def iteration_rows(metrics: RunMetrics) -> List[Dict[str, float]]:
    """Per-iteration profile rows (Table 8's hidden time axis)."""
    rows = []
    for it in metrics.iterations:
        rows.append({
            "iteration": it.iteration,
            "threads": it.num_threads,
            "edges": it.edges_processed,
            "simd_steps": it.simd_steps,
            "time_ms": it.time_ms,
            "warp_eff": it.warp_efficiency,
            "edge_txn": it.edge_transactions,
            "value_txn": it.value_transactions,
        })
    return rows


def profile_text(metrics: RunMetrics, *, title: str = "run profile") -> str:
    """Formatted per-iteration profile plus run totals."""
    from repro.bench.report import format_table

    text = format_table(iteration_rows(metrics), title=title)
    summary = metrics.summary()
    lines = [text, ""]
    lines.append(
        f"totals: {summary['iterations']:.0f} iterations, "
        f"{summary['time_ms']:.4f} ms, "
        f"{summary['edges_processed']:.0f} edges, "
        f"warp efficiency {summary['warp_efficiency']:.1%}"
    )
    return "\n".join(lines)


def compare_runs(named_metrics: Dict[str, RunMetrics]) -> str:
    """Side-by-side run summaries (the Table 8 comparison shape)."""
    from repro.bench.report import format_table

    rows = []
    for name, metrics in named_metrics.items():
        summary = metrics.summary()
        rows.append({
            "run": name,
            "iterations": int(summary["iterations"]),
            "time_ms": summary["time_ms"],
            "time_per_iter_ms": summary["time_per_iteration_ms"],
            "instructions": summary["instructions"],
            "warp_eff": summary["warp_efficiency"],
            "edges": int(summary["edges_processed"]),
        })
    return format_table(rows, title="run comparison")


def bottleneck_report(metrics: RunMetrics) -> Dict[str, float]:
    """Where the simulated time went, as fractions.

    Splits each iteration's cost into compute (SIMD issue) vs memory
    (transactions) proportions using the recorded transaction counts —
    the first question after "why is this slow?".
    """
    total_edge_txn = sum(it.edge_transactions for it in metrics.iterations)
    total_value_txn = sum(it.value_transactions for it in metrics.iterations)
    total_steps = sum(it.simd_steps for it in metrics.iterations)
    txn = total_edge_txn + total_value_txn
    # cycles_per_step ~6 vs cycles_per_transaction ~3 (defaults); report
    # raw quantities plus an indicative split at default coefficients.
    compute_cycles = 6.0 * total_steps
    memory_cycles = 3.0 * txn
    denom = max(compute_cycles + memory_cycles, 1e-12)
    return {
        "simd_steps": float(total_steps),
        "edge_transactions": float(total_edge_txn),
        "value_transactions": float(total_value_txn),
        "compute_fraction": compute_cycles / denom,
        "memory_fraction": memory_cycles / denom,
    }
