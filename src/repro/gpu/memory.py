"""DRAM transaction model: how many 128-byte transactions a warp costs.

Two access streams matter in vertex-centric kernels:

* **edge-array stream** — each SIMD step, the warp's active lanes read
  one edge record each.  If consecutive lanes' records are adjacent
  (gap = ``word_bytes``), a whole warp step fits in a couple of
  transactions; if records are a transaction apart or more, every lane
  pays its own.  The per-warp effective gap comes from
  :func:`repro.gpu.warp.warp_statistics`.
* **value-array stream** — destination values are gathered at random
  node indices and updated atomically; this stream is uncoalesced for
  every method (``value_access_factor`` transactions per edge), except
  frameworks that privatise it (CuSha shards).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.warp import WarpStats


def edge_transactions(stats: WarpStats, config: GPUConfig) -> np.ndarray:
    """Per-warp edge-array transactions for one kernel.

    For equally spaced active lanes with gap ``g`` bytes, one step of
    ``L`` lanes spans ``L * g`` bytes ⇒ ``ceil(L * g / 128)``
    transactions.  Summed over a warp's steps that is
    ``edges * g / 128`` plus one transaction floor per step (every
    step costs at least one transaction while any lane is active).
    """
    per_edge = stats.gap_bytes / config.transaction_bytes
    return np.maximum(stats.steps, stats.edges * per_edge)


def value_transactions(stats: WarpStats, profile: KernelProfile) -> np.ndarray:
    """Per-warp value-array transactions (gather + atomic update)."""
    return stats.edges * profile.value_access_factor


def total_memory_cycles(
    stats: WarpStats, config: GPUConfig, profile: KernelProfile
) -> np.ndarray:
    """Per-warp cycles spent on memory traffic."""
    transactions = edge_transactions(stats, config) + value_transactions(stats, profile)
    return transactions * profile.cycles_per_transaction
