"""The kernel simulator: traces in, timing/efficiency metrics out.

The engines call :meth:`GPUSimulator.record_iteration` once per BSP
iteration with that iteration's :class:`~repro.gpu.warp.WorkTrace`.
The simulator converts it to cycles with the warp/memory model:

* per-warp compute cycles — SIMD steps × issue cost plus per-thread
  setup;
* per-warp memory cycles — coalescing-dependent edge traffic plus
  random value traffic;
* kernel makespan — warps scheduled across the device's warp slots:
  ``max(critical_warp, total / slots)``, which is where inter-warp
  load imbalance (a single monster warp) shows up;
* kernel launch overhead per iteration.

Device memory is checked once per run via :meth:`check_memory`
(Table 4's OOM behaviour).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DeviceOutOfMemoryError
from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.memory import edge_transactions, total_memory_cycles, value_transactions
from repro.gpu.metrics import IterationMetrics, RunMetrics
from repro.gpu.warp import WorkTrace, warp_statistics


class GPUSimulator:
    """Accumulates simulated cost over an algorithm run.

    One simulator instance models one algorithm execution; create a
    fresh one per run.  Not thread-safe (like the device it models,
    it processes one kernel at a time).
    """

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        profile: Optional[KernelProfile] = None,
    ) -> None:
        self.config = config or GPUConfig()
        self.profile = profile or KernelProfile()
        self.metrics = RunMetrics()

    # ------------------------------------------------------------------
    # Memory footprint (OOM modelling)
    # ------------------------------------------------------------------
    def check_memory(self, required_bytes: int, what: str = "") -> None:
        """Raise :class:`DeviceOutOfMemoryError` if the working set
        exceeds the simulated device memory."""
        if required_bytes > self.config.device_memory_bytes:
            raise DeviceOutOfMemoryError(
                required_bytes, self.config.device_memory_bytes, what
            )

    # ------------------------------------------------------------------
    # Kernel cost
    # ------------------------------------------------------------------
    def record_iteration(self, trace: WorkTrace) -> IterationMetrics:
        """Cost one BSP iteration and add it to the run metrics."""
        cfg, prof = self.config, self.profile
        stats = warp_statistics(
            trace,
            warp_size=cfg.warp_size,
            word_bytes=cfg.word_bytes,
            transaction_bytes=cfg.transaction_bytes,
        )

        compute = (
            stats.steps * prof.cycles_per_step
            + stats.launched_lanes * prof.cycles_per_thread / cfg.warp_size
        )
        memory = total_memory_cycles(stats, cfg, prof)
        warp_cycles = compute + memory

        if stats.num_warps:
            critical = float(warp_cycles.max())
            throughput = float(warp_cycles.sum()) / cfg.warp_slots
            makespan = max(critical, throughput)
        else:
            makespan = 0.0
        makespan += cfg.kernel_launch_cycles * prof.launches_per_iteration

        instructions = (
            prof.instructions_per_edge * stats.total_edges
            + prof.instructions_per_thread * trace.num_threads
        )
        iteration = IterationMetrics(
            iteration=self.metrics.num_iterations,
            num_threads=trace.num_threads,
            edges_processed=stats.total_edges,
            simd_steps=stats.total_steps,
            cycles=makespan,
            time_ms=cfg.cycles_to_ms(makespan),
            instructions=instructions,
            edge_transactions=float(edge_transactions(stats, cfg).sum()),
            value_transactions=float(value_transactions(stats, prof).sum()),
            warp_efficiency=stats.warp_efficiency(cfg.warp_size),
        )
        self.metrics.add(iteration)
        return iteration

    def record_uniform_iterations(
        self, trace: WorkTrace, repetitions: int
    ) -> None:
        """Record the same trace ``repetitions`` times cheaply.

        All-active methods (Maximum Warp, CuSha's all-shards pass)
        execute an identical launch every iteration; costing the warp
        statistics once and replaying them avoids re-deriving the same
        numbers per iteration.
        """
        if repetitions <= 0:
            return
        first = self.record_iteration(trace)
        for i in range(1, repetitions):
            self.metrics.add(
                IterationMetrics(
                    iteration=first.iteration + i,
                    num_threads=first.num_threads,
                    edges_processed=first.edges_processed,
                    simd_steps=first.simd_steps,
                    cycles=first.cycles,
                    time_ms=first.time_ms,
                    instructions=first.instructions,
                    edge_transactions=first.edge_transactions,
                    value_transactions=first.value_transactions,
                    warp_efficiency=first.warp_efficiency,
                )
            )

    # ------------------------------------------------------------------
    def finish(self) -> RunMetrics:
        """The accumulated run metrics."""
        return self.metrics
