"""Kernel metrics: per-iteration and whole-run aggregates.

These mirror the columns of Table 8: iteration count, time per
iteration, total instructions, and warp efficiency, plus the memory
transaction counts behind the coalescing analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class IterationMetrics:
    """Cost of one simulated BSP iteration (one or more kernels)."""

    iteration: int
    num_threads: int
    edges_processed: int
    simd_steps: int
    cycles: float
    time_ms: float
    instructions: float
    edge_transactions: float
    value_transactions: float
    warp_efficiency: float


@dataclass
class RunMetrics:
    """Aggregate over a whole algorithm run."""

    iterations: List[IterationMetrics] = field(default_factory=list)

    def add(self, metrics: IterationMetrics) -> None:
        self.iterations.append(metrics)

    # ------------------------------------------------------------------
    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_time_ms(self) -> float:
        return sum(it.time_ms for it in self.iterations)

    @property
    def total_cycles(self) -> float:
        return sum(it.cycles for it in self.iterations)

    @property
    def total_instructions(self) -> float:
        return sum(it.instructions for it in self.iterations)

    @property
    def total_edges_processed(self) -> int:
        return sum(it.edges_processed for it in self.iterations)

    @property
    def total_transactions(self) -> float:
        return sum(it.edge_transactions + it.value_transactions for it in self.iterations)

    @property
    def mean_time_per_iteration_ms(self) -> float:
        if not self.iterations:
            return 0.0
        return self.total_time_ms / len(self.iterations)

    @property
    def warp_efficiency(self) -> float:
        """Edge-work-weighted mean warp efficiency over the run.

        Weighting by SIMD steps (the denominator of the per-iteration
        metric) makes this equal to total useful lane-steps over total
        occupied lane-steps, i.e. the run-level Table 8 number.
        """
        total_steps = sum(it.simd_steps for it in self.iterations)
        if total_steps == 0:
            return 1.0
        useful = sum(it.warp_efficiency * it.simd_steps for it in self.iterations)
        return useful / total_steps

    def summary(self) -> Dict[str, float]:
        """Flat dict for table formatting."""
        return {
            "iterations": self.num_iterations,
            "time_ms": self.total_time_ms,
            "time_per_iteration_ms": self.mean_time_per_iteration_ms,
            "instructions": self.total_instructions,
            "warp_efficiency": self.warp_efficiency,
            "edges_processed": float(self.total_edges_processed),
            "transactions": self.total_transactions,
        }
