"""Sharded serving tier: scatter-gather analytics over shard executors.

The single-engine service answers each batch with one engine run.
This module splits that run across **shards**: the prepared graph is
partitioned by *destination ownership* (:func:`repro.multigpu.
partition.inedge_partition` — every node's complete in-edge set lands
on exactly one shard), one executor per shard runs the per-superstep
edge work (in-process, or remote over the same line-oriented
``tcp://`` framing the trace transport uses), and a router on the
dispatcher thread fans each superstep out and reduces the answers
back per algorithm:

* **bfs / sssp / sswp / cc** — min-plus (or max-min / min-label)
  BSP: each shard relaxes the frontier's edges it owns and returns
  the destinations whose value improved; because MIN/MAX folds are
  exact in float64 and each destination's in-edges never straddle
  shards, the merged per-superstep state — and therefore the final
  fixpoint — is **bitwise identical** to the single-engine run under
  any transform (monotone analytics are transform-invariant);
* **pr** — weighted merge: shards scatter ``rank/outdeg`` over their
  edge slices *in global CSR edge order* (the destination partition
  preserves it), the router assembles the disjoint owned
  contributions and applies damping, dangling redistribution, and the
  L1 convergence test exactly as :func:`repro.algorithms.pagerank.
  pagerank` does — term-for-term the same float additions, so ranks
  match bitwise.  Only untransformed PR plans shard (a transformed
  PR run sums in a different edge order); others fall back;
* **bc** and transformed PR — routed to the single-engine path
  unchanged.

That bitwise contract is what lets the golden traces replay through
the sharded router with zero digest mismatches — the acceptance gate
``serve --trace … --shards N`` enforces.

Shard-local artifacts are cached per shard under
``(partition fingerprint, kind, K)``: each shard's catalog holds its
prepared slice (``kind="prepared"``, recipe ``shardIofN``) and builds
virtual overlays *of the slice* on demand for virtual plans, so a
warm shard re-serves a plan without re-deriving anything.  Physical
(UDT) plans run on the raw slice — splitting rewrites destination
ids, which destination ownership cannot survive, and monotone values
are transform-invariant anyway.

Failure containment mirrors the process backend's
:class:`~repro.errors.WorkerLost` contract: a shard executor that
dies mid-batch (remote host unreachable, connection dropped) raises
the typed :class:`~repro.errors.ShardLost`, and the router retries
the batch once through the single-engine path with ``degraded=True``
on its results — a slower answer beats none.  Policy — tenant
quotas, priority classes, and the cost-model route choice — lives in
:mod:`repro.service.routing`; this module only asks it for
decisions.
"""

from __future__ import annotations

import base64
import heapq
import itertools
import json
import queue
import socket
import socketserver
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.programs import (
    BFSProgram,
    CCProgram,
    SSSPProgram,
    SSWPProgram,
)
from repro.engine.schedule import NodeScheduler, Scheduler, VirtualScheduler
from repro.errors import (
    QuotaExhaustedError,
    ServiceError,
    ShardLost,
    TigrError,
)
from repro.graph.csr import CSRGraph, NODE_DTYPE
from repro.multigpu.partition import inedge_partition
from repro.service.artifacts import ArtifactKey, TransformArtifact
from repro.service.batching import BatchExecution, QueryBatch
from repro.service.catalog import GraphCatalog
from repro.service.executor import AnalyticsService
from repro.service.planner import degrade_for_deadline, plan_query
from repro.service.query import QueryRequest
from repro.service.routing import RoutingPolicy
from repro.service.workers import BatchOutcome, transform_key

#: analytics the scatter-gather router can serve (bc is level-
#: synchronous with per-level state the reduce cannot merge; it always
#: takes the single-engine path).
SHARDABLE_ALGORITHMS = ("bfs", "sssp", "sswp", "cc", "pr")

#: PageRank loop constants — must mirror the defaults of
#: :func:`repro.algorithms.pagerank.pagerank`, which the unsharded
#: service runs; the parity tests pin the two together.
PR_DAMPING = 0.85
PR_TOLERANCE = 1e-10
PR_MAX_ITERATIONS = 100

#: default seconds a remote shard operation may take before the
#: connection is declared lost (covers one superstep round-trip).
SHARD_OP_TIMEOUT_S = 120.0

#: per-shard catalog budget: slices are small and per-slice overlays
#: smaller; 64 MiB holds many (kind, K) variants per shard.
SHARD_CATALOG_BYTES = 64 * 1024 * 1024

_PROGRAMS = {
    "bfs": BFSProgram,
    "sssp": SSSPProgram,
    "sswp": SSWPProgram,
    "cc": CCProgram,
}

_task_ids = itertools.count(1)


class _ShardRouteMiss(Exception):
    """Internal: this batch takes the single-engine path (not an error)."""


# ----------------------------------------------------------------------
# Wire helpers (remote shards speak line-oriented JSON, arrays as
# base64 raw bytes — the same framing discipline as the tcp:// trace
# transport, one JSON object per newline-terminated line)
# ----------------------------------------------------------------------
def _encode_array(array: np.ndarray) -> Dict[str, object]:
    array = np.ascontiguousarray(array)
    return {
        "b64": base64.b64encode(array.tobytes()).decode("ascii"),
        "dtype": array.dtype.str,
        "shape": list(array.shape),
    }


def _decode_array(obj: Dict[str, object]) -> np.ndarray:
    raw = base64.b64decode(str(obj["b64"]))
    array = np.frombuffer(raw, dtype=np.dtype(str(obj["dtype"])))
    return array.reshape([int(d) for d in obj["shape"]])  # type: ignore[union-attr]


def _nbytes(*arrays: Optional[np.ndarray]) -> int:
    return sum(int(a.nbytes) for a in arrays if a is not None)


# ----------------------------------------------------------------------
# Shard executors
# ----------------------------------------------------------------------
@dataclass
class _MonotoneTask:
    program: object
    scheduler: Scheduler
    values: np.ndarray


@dataclass
class _PageRankTask:
    src: np.ndarray
    dst: np.ndarray
    scale: np.ndarray


class LocalShard:
    """One shard's slice, catalog, and per-task superstep state.

    Holds the destination-owned subgraph (global node ids, only the
    owned nodes' in-edges) plus a private :class:`GraphCatalog` whose
    entries are keyed on the *partition's* fingerprint: the prepared
    slice itself (``kind="prepared"``, recipe ``shardIofN``) and any
    virtual overlays built for ``(kind, K)`` plans.  Task state is
    keyed by router-issued task ids so concurrent batches never share
    value arrays.
    """

    def __init__(
        self,
        index: int,
        subgraph: CSRGraph,
        owned: np.ndarray,
        *,
        label: str = "",
        catalog: Optional[GraphCatalog] = None,
    ) -> None:
        self.index = int(index)
        self.subgraph = subgraph
        self.owned = np.ascontiguousarray(owned, dtype=NODE_DTYPE)
        self.catalog = catalog or GraphCatalog(SHARD_CATALOG_BYTES)
        self._tasks: Dict[int, object] = {}
        self._lock = threading.Lock()
        key = ArtifactKey(
            subgraph.fingerprint(), "prepared", 0, label or f"shard{index}"
        )

        def build() -> TransformArtifact:
            return TransformArtifact(key=key, payload=subgraph, build_seconds=0.0)

        self.catalog.get_for_key(key, build)

    # -- monotone BSP --------------------------------------------------
    def begin(
        self,
        task: int,
        algorithm: str,
        kind: str,
        degree_bound: int,
        source: Optional[int],
    ) -> str:
        """Initialise one monotone run; returns the overlay cache origin."""
        program = _PROGRAMS[algorithm]()
        scheduler, origin = self._scheduler_for(kind, degree_bound)
        values = program.initial_values(self.subgraph.num_nodes, source)
        with self._lock:
            self._tasks[task] = _MonotoneTask(
                program=program, scheduler=scheduler, values=values
            )
        return origin

    def _scheduler_for(self, kind: str, degree_bound: int) -> Tuple[Scheduler, str]:
        """The slice's engine view for one plan kind.

        Virtual plans get a virtual overlay *of the slice*, cached in
        this shard's catalog under ``(partition fingerprint, kind,
        K)``.  ``none`` and ``udt`` plans run the raw slice: physical
        splitting rewrites destination ids, which destination
        ownership cannot survive, and the monotone fixpoint is
        transform-invariant regardless.
        """
        if kind in ("virtual", "virtual+") and self.subgraph.num_edges:
            artifact, origin = self.catalog.get_or_build_with_origin(
                self.subgraph, kind, degree_bound
            )
            return VirtualScheduler(artifact.payload), origin
        return NodeScheduler(self.subgraph), ""

    def step(
        self, task: int, ids: np.ndarray, vals: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One superstep: apply the merged updates, relax, report changes.

        ``ids``/``vals`` are the previous superstep's merged changes
        across *all* shards (the frontier); the return value is the
        owned destinations whose value improved, left uncommitted —
        they come back through the next merge, which keeps every
        shard's view identical to the router's.
        """
        state = self._monotone(task)
        values = state.values
        ids = np.asarray(ids, dtype=NODE_DTYPE)
        if len(ids):
            values[ids] = vals
        batch = state.scheduler.batch(ids)
        eidx = batch.edge_indices()
        weights = self.subgraph.weights
        candidates = state.program.relax(
            values[batch.sources_per_edge()],
            None if weights is None else weights[eidx],
        )
        updated = values.copy()
        state.program.reduce.scatter(
            updated, self.subgraph.targets[eidx], candidates
        )
        changed = np.flatnonzero(updated != values).astype(NODE_DTYPE)
        return changed, updated[changed]

    # -- pagerank ------------------------------------------------------
    def pr_begin(self, task: int, inv_deg: np.ndarray) -> None:
        """Precompute this slice's scatter triple for a PageRank run.

        ``inv_deg`` is the *global* inverse outdegree vector (a shard
        cannot derive full outdegrees from its in-edge slice, so the
        router broadcasts it once per run).
        """
        src = self.subgraph.edge_sources()
        with self._lock:
            self._tasks[task] = _PageRankTask(
                src=src, dst=self.subgraph.targets, scale=inv_deg[src]
            )

    def pr_step(self, task: int, rank: np.ndarray) -> np.ndarray:
        """Scatter one iteration's contributions; returns ``contrib[owned]``.

        The slice's edges sit in global CSR edge order (the
        destination partition filters without reordering), so each
        owned destination accumulates exactly the addition sequence
        the unsharded kernel performs — bitwise-equal partial sums.
        """
        state = self._pagerank(task)
        contrib = np.zeros(self.subgraph.num_nodes)
        np.add.at(contrib, state.dst, rank[state.src] * state.scale)
        return contrib[self.owned]

    # -- lifecycle -----------------------------------------------------
    def finish(self, task: int) -> None:
        with self._lock:
            self._tasks.pop(task, None)

    def close(self) -> None:
        with self._lock:
            self._tasks.clear()

    def _monotone(self, task: int) -> _MonotoneTask:
        with self._lock:
            state = self._tasks.get(task)
        if not isinstance(state, _MonotoneTask):
            raise ServiceError(f"shard {self.index}: unknown monotone task {task}")
        return state

    def _pagerank(self, task: int) -> _PageRankTask:
        with self._lock:
            state = self._tasks.get(task)
        if not isinstance(state, _PageRankTask):
            raise ServiceError(f"shard {self.index}: unknown pagerank task {task}")
        return state


class RemoteShardHandle:
    """A shard whose executor lives behind ``tcp://host:port``.

    Speaks one JSON object per line (arrays as base64 raw bytes) to a
    :class:`ShardHostServer`, reusing the trace transport's framing
    discipline.  Any socket failure — refused connection, dropped
    peer, an operation exceeding ``op_timeout_s`` — tears the
    connection down and raises the typed :class:`ShardLost`, which the
    sharded service maps to its single-engine fallback exactly like
    the process backend maps :class:`~repro.errors.WorkerLost`.
    """

    def __init__(
        self,
        index: int,
        owned: np.ndarray,
        address: Tuple[str, int],
        key: str,
        *,
        op_timeout_s: float = SHARD_OP_TIMEOUT_S,
    ) -> None:
        self.index = int(index)
        self.owned = np.ascontiguousarray(owned, dtype=NODE_DTYPE)
        self.address = address
        self.key = key
        self.op_timeout_s = op_timeout_s
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._file = None

    def load(self, subgraph: CSRGraph) -> None:
        """Ship the slice (CSR arrays + owned set) to the host."""
        payload: Dict[str, object] = {
            "op": "load",
            "key": self.key,
            "shard": self.index,
            "offsets": _encode_array(subgraph.offsets),
            "targets": _encode_array(subgraph.targets),
            "owned": _encode_array(self.owned),
        }
        if subgraph.weights is not None:
            payload["weights"] = _encode_array(subgraph.weights)
        self._call(payload)

    def begin(
        self,
        task: int,
        algorithm: str,
        kind: str,
        degree_bound: int,
        source: Optional[int],
    ) -> str:
        reply = self._call(
            {
                "op": "begin",
                "key": self.key,
                "task": task,
                "algorithm": algorithm,
                "kind": kind,
                "degree_bound": int(degree_bound),
                "source": source,
            }
        )
        return str(reply.get("cache", ""))

    def step(
        self, task: int, ids: np.ndarray, vals: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        reply = self._call(
            {
                "op": "step",
                "key": self.key,
                "task": task,
                "ids": _encode_array(np.asarray(ids, dtype=NODE_DTYPE)),
                "vals": _encode_array(np.asarray(vals, dtype=np.float64)),
            }
        )
        return (
            _decode_array(reply["ids"]).astype(NODE_DTYPE),  # type: ignore[arg-type]
            _decode_array(reply["vals"]),  # type: ignore[arg-type]
        )

    def pr_begin(self, task: int, inv_deg: np.ndarray) -> None:
        self._call(
            {
                "op": "pr_begin",
                "key": self.key,
                "task": task,
                "inv_deg": _encode_array(inv_deg),
            }
        )

    def pr_step(self, task: int, rank: np.ndarray) -> np.ndarray:
        reply = self._call(
            {
                "op": "pr_step",
                "key": self.key,
                "task": task,
                "rank": _encode_array(rank),
            }
        )
        return _decode_array(reply["contrib"])  # type: ignore[arg-type]

    def finish(self, task: int) -> None:
        try:
            self._call({"op": "finish", "key": self.key, "task": task})
        except ShardLost:
            pass  # a dead host holds no state worth releasing

    def close(self) -> None:
        self._teardown()

    # -- plumbing ------------------------------------------------------
    def _call(self, payload: Dict[str, object]) -> Dict[str, object]:
        try:
            with self._lock:
                if self._sock is None:
                    self._sock = socket.create_connection(
                        self.address, timeout=self.op_timeout_s
                    )
                    self._file = self._sock.makefile("rwb")
                line = json.dumps(payload, separators=(",", ":")) + "\n"
                self._file.write(line.encode("ascii"))
                self._file.flush()
                raw = self._file.readline()
        except OSError as exc:
            self._teardown()
            raise ShardLost(
                f"remote shard at {self.address[0]}:{self.address[1]} "
                f"unreachable: {exc}",
                shard=self.index,
            ) from exc
        if not raw:
            self._teardown()
            raise ShardLost(
                f"remote shard at {self.address[0]}:{self.address[1]} "
                f"closed the connection mid-operation",
                shard=self.index,
            )
        try:
            reply = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ShardLost(
                f"remote shard sent an unparseable reply: {exc}",
                shard=self.index,
            ) from exc
        if reply.get("error"):
            # the host's library errors are real errors, not lost
            # workers — surface them like BatchReply.error does
            raise ServiceError(f"shard {self.index} host: {reply['error']}")
        return reply

    def _teardown(self) -> None:
        with self._lock:
            file, sock = self._file, self._sock
            self._file = None
            self._sock = None
        for closeable in (file, sock):
            if closeable is not None:
                try:
                    closeable.close()
                except OSError:
                    pass


# ----------------------------------------------------------------------
# Shard host: the remote-executor server side
# ----------------------------------------------------------------------
def _host_dispatch(
    shards: Dict[str, LocalShard], payload: Dict[str, object]
) -> Dict[str, object]:
    op = payload.get("op")
    if op == "load":
        weights = payload.get("weights")
        subgraph = CSRGraph(
            _decode_array(payload["offsets"]),  # type: ignore[arg-type]
            _decode_array(payload["targets"]),  # type: ignore[arg-type]
            None if weights is None else _decode_array(weights),  # type: ignore[arg-type]
            validate=False,
        )
        shards[str(payload["key"])] = LocalShard(
            int(payload.get("shard", 0)),
            subgraph,
            _decode_array(payload["owned"]),  # type: ignore[arg-type]
        )
        return {"ok": True}
    shard = shards.get(str(payload.get("key")))
    if shard is None:
        return {"error": f"unknown shard key {payload.get('key')!r} (load first)"}
    task = int(payload.get("task", 0))
    if op == "begin":
        source = payload.get("source")
        origin = shard.begin(
            task,
            str(payload["algorithm"]),
            str(payload["kind"]),
            int(payload["degree_bound"]),
            None if source is None else int(source),
        )
        return {"ok": True, "cache": origin}
    if op == "step":
        ids, vals = shard.step(
            task,
            _decode_array(payload["ids"]),  # type: ignore[arg-type]
            _decode_array(payload["vals"]),  # type: ignore[arg-type]
        )
        return {"ok": True, "ids": _encode_array(ids), "vals": _encode_array(vals)}
    if op == "pr_begin":
        shard.pr_begin(task, _decode_array(payload["inv_deg"]))  # type: ignore[arg-type]
        return {"ok": True}
    if op == "pr_step":
        contrib = shard.pr_step(task, _decode_array(payload["rank"]))  # type: ignore[arg-type]
        return {"ok": True, "contrib": _encode_array(contrib)}
    if op == "finish":
        shard.finish(task)
        return {"ok": True}
    return {"error": f"unknown op {op!r}"}


class _ShardHostHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        shards: Dict[str, LocalShard] = {}
        for raw in self.rfile:
            try:
                payload = json.loads(raw.decode("utf-8"))
                reply = _host_dispatch(shards, payload)
            except TigrError as exc:
                reply = {"error": str(exc)}
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError) as exc:
                reply = {"error": f"malformed request: {exc}"}
            except Exception as exc:  # defensive: never kill the host loop
                reply = {"error": f"internal error: {exc!r}"}
            self.wfile.write(
                (json.dumps(reply, separators=(",", ":")) + "\n").encode("ascii")
            )


class ShardHostServer(socketserver.ThreadingTCPServer):
    """``repro shard-host``: serves shard slices over TCP.

    One thread per connection; each connection owns its shards and
    tasks (state never crosses connections, so two services pointing
    at one host cannot interfere).  ``server_address`` after
    construction carries the actual bound port — pass port 0 to let
    the OS pick.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int]) -> None:
        super().__init__(address, _ShardHostHandler)


def parse_host_port(text: str) -> Tuple[str, int]:
    """``host:port`` (or ``tcp://host:port``) -> address tuple."""
    if text.startswith("tcp://"):
        text = text[len("tcp://"):]
    host, sep, port = text.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ServiceError(
            f"shard address must be host:port, got {text!r}"
        )
    return host, int(port)


# ----------------------------------------------------------------------
# The scatter-gather router
# ----------------------------------------------------------------------
@dataclass
class ShardRunStats:
    """What one sharded batch cost the shard tier."""

    supersteps: int = 0
    exchange_bytes: int = 0
    per_shard_steps: Dict[int, int] = field(default_factory=dict)
    cache_origins: List[str] = field(default_factory=list)

    def count_step(self, shards: Sequence[object], nbytes: int) -> None:
        self.supersteps += 1
        self.exchange_bytes += nbytes
        for shard in shards:
            index = shard.index  # type: ignore[attr-defined]
            self.per_shard_steps[index] = self.per_shard_steps.get(index, 0) + 1


class ShardSet:
    """All shards of one prepared graph plus their superstep pool.

    One executor thread per shard: each superstep submits every
    shard's step concurrently and joins the results (numpy releases
    the GIL across slices; remote shards overlap on the network).
    """

    def __init__(self, prepared: CSRGraph, shards: List[object]) -> None:
        self.prepared = prepared
        self.shards = shards
        self._pool = ThreadPoolExecutor(
            max_workers=max(len(shards), 1),
            thread_name_prefix="repro-shard",
        )

    @staticmethod
    def build(
        prepared: CSRGraph,
        count: int,
        *,
        remotes: Sequence[Tuple[str, int]] = (),
        op_timeout_s: float = SHARD_OP_TIMEOUT_S,
    ) -> "ShardSet":
        """Partition ``prepared`` destination-wise into ``count`` shards.

        The first ``len(remotes)`` shards are hosted remotely (slices
        are shipped at build time); the rest run in-process.
        """
        if count < 1:
            raise ServiceError(f"need at least one shard, got {count}")
        partitions = inedge_partition(prepared, count)
        fingerprint = prepared.fingerprint()
        shards: List[object] = []
        for part in partitions:
            label = f"shard{part.device}of{count}"
            if part.device < len(remotes):
                handle = RemoteShardHandle(
                    part.device,
                    part.owned,
                    remotes[part.device],
                    key=f"{fingerprint[:24]}/{label}",
                    op_timeout_s=op_timeout_s,
                )
                handle.load(part.subgraph)
                shards.append(handle)
            else:
                shards.append(
                    LocalShard(
                        part.device, part.subgraph, part.owned, label=label
                    )
                )
        return ShardSet(prepared, shards)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # -- scatter helpers ----------------------------------------------
    def _on_all(self, call: Callable[[object], object]) -> List[object]:
        futures = [self._pool.submit(call, shard) for shard in self.shards]
        results = []
        error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # join every future before raising
                error = error or exc
        if error is not None:
            raise error
        return results

    # -- monotone analytics -------------------------------------------
    def run_monotone(
        self,
        algorithm: str,
        kind: str,
        degree_bound: int,
        sources: Tuple[int, ...],
        *,
        max_iterations: int = 100_000,
        stats: Optional[ShardRunStats] = None,
    ) -> Dict[int, np.ndarray]:
        """Scatter-gather BSP to the fixpoint, one run per source.

        Returns the same ``source -> values`` mapping (key ``-1`` for
        cc) as :func:`~repro.service.batching.run_sources_on_target`,
        bitwise-equal to the single-engine answer.
        """
        stats = stats if stats is not None else ShardRunStats()
        per_source: Dict[int, np.ndarray] = {}
        for source in sources or (None,):
            values = self._run_one_monotone(
                algorithm, kind, degree_bound, source,
                max_iterations=max_iterations, stats=stats,
            )
            per_source[-1 if source is None else int(source)] = values
        return per_source

    def _run_one_monotone(
        self,
        algorithm: str,
        kind: str,
        degree_bound: int,
        source: Optional[int],
        *,
        max_iterations: int,
        stats: ShardRunStats,
    ) -> np.ndarray:
        program = _PROGRAMS[algorithm]()
        n = self.prepared.num_nodes
        values = program.initial_values(n, source)
        task = next(_task_ids)
        origins = self._on_all(
            lambda shard: shard.begin(  # type: ignore[attr-defined]
                task, algorithm, kind, degree_bound, source
            )
        )
        stats.cache_origins.extend(str(origin) for origin in origins)
        try:
            upd_ids = program.initial_frontier(n, source).astype(NODE_DTYPE)
            upd_vals = values[upd_ids]
            supersteps = 0
            while len(upd_ids):
                if supersteps >= max_iterations:
                    raise ServiceError(
                        f"sharded {algorithm} did not converge within "
                        f"{max_iterations} supersteps"
                    )
                supersteps += 1
                ids, vals = upd_ids, upd_vals
                parts = self._on_all(
                    lambda shard: shard.step(task, ids, vals)  # type: ignore[attr-defined]
                )
                changed = [part[0] for part in parts]  # type: ignore[index]
                changed_vals = [part[1] for part in parts]  # type: ignore[index]
                merged_ids = np.concatenate(changed) if changed else upd_ids[:0]
                merged_vals = (
                    np.concatenate(changed_vals) if changed_vals else upd_vals[:0]
                )
                # owned sets are disjoint, so the merge is an ordering
                # choice only; sort for a deterministic frontier
                order = np.argsort(merged_ids, kind="stable")
                upd_ids = merged_ids[order]
                upd_vals = merged_vals[order]
                if len(upd_ids):
                    values[upd_ids] = upd_vals
                stats.count_step(
                    self.shards,
                    _nbytes(ids, vals) * len(self.shards)
                    + _nbytes(merged_ids, merged_vals),
                )
            return values
        finally:
            self._finish(task)

    # -- pagerank ------------------------------------------------------
    def run_pagerank(
        self, *, stats: Optional[ShardRunStats] = None
    ) -> Dict[int, np.ndarray]:
        """Sharded PageRank on the untransformed prepared graph.

        Shards scatter their global-order edge slices; the router owns
        dangling redistribution, damping, and the L1 convergence test
        — the exact float recipe of the unsharded driver, term for
        term.
        """
        stats = stats if stats is not None else ShardRunStats()
        n = self.prepared.num_nodes
        if n == 0:
            return {-1: np.zeros(0)}
        degrees = self.prepared.out_degrees().astype(np.float64)
        inv_deg = np.zeros(n)
        nonzero = degrees > 0
        inv_deg[nonzero] = 1.0 / degrees[nonzero]
        dangling = ~nonzero
        rank = np.full(n, 1.0 / n)

        task = next(_task_ids)
        self._on_all(
            lambda shard: shard.pr_begin(task, inv_deg)  # type: ignore[attr-defined]
        )
        try:
            for _ in range(PR_MAX_ITERATIONS):
                current = rank
                parts = self._on_all(
                    lambda shard: shard.pr_step(task, current)  # type: ignore[attr-defined]
                )
                contrib = np.zeros(n)
                returned = 0
                for shard, part in zip(self.shards, parts):
                    contrib[shard.owned] = part  # type: ignore[attr-defined]
                    returned += int(part.nbytes)  # type: ignore[union-attr]
                stats.count_step(
                    self.shards, int(rank.nbytes) * len(self.shards) + returned
                )
                dangling_mass = rank[dangling].sum() / n
                new_rank = (1.0 - PR_DAMPING) / n + PR_DAMPING * (
                    contrib + dangling_mass
                )
                delta = np.abs(new_rank - rank).sum()
                rank = new_rank
                if delta < PR_TOLERANCE:
                    break
            return {-1: rank}
        finally:
            self._finish(task)

    def _finish(self, task: int) -> None:
        try:
            self._on_all(lambda shard: shard.finish(task))  # type: ignore[attr-defined]
        except (ShardLost, ServiceError):
            pass  # releasing state on a dying shard is best-effort

    def close(self) -> None:
        for shard in self.shards:
            try:
                shard.close()  # type: ignore[attr-defined]
            except (OSError, ServiceError):
                pass
        self._pool.shutdown(wait=False)


# ----------------------------------------------------------------------
# Priority submission queue
# ----------------------------------------------------------------------
class _PriorityWorkQueue(queue.Queue):
    """A :class:`queue.Queue` whose backlog drains by priority class.

    Drop-in for the executor's submission queue: same bound, same
    ``Full``/``join`` semantics (only ``_init``/``_put``/``_get`` are
    overridden), but ``get`` returns the lowest-priority-number item
    first, FIFO within a class.  The shutdown sentinel (``None``)
    sorts last so close() drains real work before stopping workers.
    """

    def __init__(self, maxsize: int, priority_of: Callable[[object], int]) -> None:
        self._priority_of = priority_of
        self._seq = itertools.count()
        super().__init__(maxsize)

    def _init(self, maxsize: int) -> None:
        self._heap: List[Tuple[float, int, object]] = []

    def _qsize(self) -> int:
        return len(self._heap)

    def _put(self, item: object) -> None:
        rank = float("inf") if item is None else float(self._priority_of(item))
        heapq.heappush(self._heap, (rank, next(self._seq), item))

    def _get(self) -> object:
        return heapq.heappop(self._heap)[2]


# ----------------------------------------------------------------------
# The sharded service
# ----------------------------------------------------------------------
class ShardedAnalyticsService(AnalyticsService):
    """An :class:`AnalyticsService` that scatter-gathers across shards.

    Everything about submission, batching, ticketing, tracing, and
    metrics is inherited; three hooks change:

    * the submission queue is a priority queue ordered by the routing
      policy's per-tenant priority classes;
    * :meth:`submit_batch` charges each request against its tenant's
      token quota first (typed :class:`QuotaExhaustedError` -> HTTP
      429);
    * :meth:`_run_batch` tries the scatter-gather path for shardable
      plans and falls back to the inherited single-engine path (the
      thread *or* process backend — ``backend=`` composes) for
      everything else, including after a :class:`ShardLost` when
      ``shard_fallback`` is on (results then carry ``degraded=True``,
      mirroring the process backend's worker-loss contract).

    Parameters beyond the base service:

    shards:
        Shard count (>= 1; a single shard routes everything to the
        single-engine path — the degraded-operation mode the runbook
        describes).
    shard_remotes:
        ``(host, port)`` addresses of :class:`ShardHostServer`
        instances; the first ``len(shard_remotes)`` shards run there,
        the rest in-process.
    policy:
        A :class:`~repro.service.routing.RoutingPolicy`; defaults to
        unmetered tenants and an always-shard route.
    shard_fallback:
        Whether a lost shard degrades to the single-engine path
        (default) instead of failing the batch typed.  Tests switch it
        off to observe :class:`ShardLost`.
    """

    def __init__(
        self,
        catalog: Optional[GraphCatalog] = None,
        *,
        shards: int = 2,
        shard_remotes: Sequence[Tuple[str, int]] = (),
        policy: Optional[RoutingPolicy] = None,
        shard_fallback: bool = True,
        shard_op_timeout_s: float = SHARD_OP_TIMEOUT_S,
        **kwargs,
    ) -> None:
        if shards < 1:
            raise ServiceError(f"need at least one shard, got {shards}")
        # the base constructor calls _make_queue, which reads policy
        self.policy = policy if policy is not None else RoutingPolicy()
        self.num_shards = int(shards)
        self.shard_remotes = tuple(shard_remotes)
        self.shard_fallback = bool(shard_fallback)
        self.shard_op_timeout_s = float(shard_op_timeout_s)
        self._shardsets: Dict[str, ShardSet] = {}
        self._shardsets_lock = threading.Lock()
        super().__init__(catalog, **kwargs)
        self.metrics.shards_configured(self.num_shards)

    # -- policy hooks --------------------------------------------------
    def _make_queue(self, queue_size: int) -> "queue.Queue":
        def priority_of(item: object) -> int:
            tickets = getattr(item, "tickets", ())
            return min(
                (self.policy.priority_for(t.request) for t in tickets),
                default=self.policy.default_priority,
            )

        return _PriorityWorkQueue(queue_size, priority_of)

    def submit_batch(
        self,
        requests: List[QueryRequest],
        *,
        block: bool = True,
        submit_timeout_s: Optional[float] = None,
    ) -> list:
        """Quota-admit, then submit (priority-ordered) as usual.

        Each request charges one token against its tenant's bucket as
        it is admitted; the first refusal rejects the whole submission
        (tokens already charged for earlier members stay spent — the
        caller is over budget either way).
        """
        for request in requests:
            wait_s = self.policy.try_admit(request.tenant)
            if wait_s > 0.0:
                self.metrics.quota_rejected_observed()
                raise QuotaExhaustedError(request.tenant, retry_after_s=wait_s)
        return super().submit_batch(
            requests, block=block, submit_timeout_s=submit_timeout_s
        )

    # -- execution -----------------------------------------------------
    def _run_batch(self, batch: QueryBatch, remaining_s: float) -> BatchOutcome:
        try:
            return self._run_sharded(batch, remaining_s)
        except _ShardRouteMiss:
            return self._run_batch_single(batch, remaining_s)
        except ShardLost:
            self.metrics.shard_fallback_observed()
            self._drop_shardsets()
            if not self.shard_fallback:
                raise
            outcome = self._run_batch_single(batch, remaining_s)
            return replace(outcome, degraded=True)

    def _run_batch_single(
        self, batch: QueryBatch, remaining_s: float
    ) -> BatchOutcome:
        """The inherited single-engine path (threads or processes)."""
        return super()._run_batch(batch, remaining_s)

    def _run_sharded(self, batch: QueryBatch, remaining_s: float) -> BatchOutcome:
        """Plan, route, and scatter-gather one batch.

        Raises :class:`_ShardRouteMiss` whenever the single-engine
        path should serve this batch instead: unshardable algorithm,
        transformed PR plan, or the policy routing it away.  Planner
        errors (pr/udt and friends) raise their usual typed errors
        here, with the same messages the unsharded pipeline produces —
        the planner is shared, so the error surface is too.
        """
        algorithm = batch.algorithm
        if algorithm not in SHARDABLE_ALGORITHMS:
            raise _ShardRouteMiss
        plan_start = time.perf_counter()
        prepared = self._prepare(batch.graph, algorithm)
        representative = QueryRequest(
            algorithm=algorithm,
            graph=batch.graph.fingerprint(),
            sources=batch.sources,
            transform=batch.transform,
            degree_bound=batch.degree_bound or None,
            options=batch.options,
        )
        plan = plan_query(representative, prepared)
        if plan.caches:
            plan = degrade_for_deadline(
                plan, prepared, remaining_s,
                artifact_cached=self.catalog.cached(transform_key(prepared, plan)),
            )
        if algorithm == "pr" and plan.transform != "none":
            # a transformed PR run sums contributions in the overlay's
            # edge order; only the untransformed plan is reproducible
            # shard-by-shard, so the rest keep the single-engine path
            raise _ShardRouteMiss
        decision = self.policy.choose_route(
            shardable=True,
            num_edges=prepared.num_edges,
            shards=self.num_shards,
        )
        if decision.route != "sharded":
            raise _ShardRouteMiss
        plan_s = time.perf_counter() - plan_start

        transform_start = time.perf_counter()
        shardset = self._shardset_for(prepared)
        transform_s = time.perf_counter() - transform_start

        execute_start = time.perf_counter()
        stats = ShardRunStats()
        if algorithm == "pr":
            per_source = shardset.run_pagerank(stats=stats)
        else:
            per_source = shardset.run_monotone(
                algorithm,
                plan.transform,
                plan.degree_bound,
                batch.sources,
                max_iterations=batch.options.max_iterations,
                stats=stats,
            )
        execute_s = time.perf_counter() - execute_start

        self.metrics.sharded_observed(
            supersteps=stats.supersteps,
            exchange_bytes=stats.exchange_bytes,
            per_shard_steps=stats.per_shard_steps,
        )
        runs = max(len(batch.sources), 1)
        return BatchOutcome(
            per_source=per_source,
            transform=plan.transform,
            degree_bound=plan.degree_bound,
            degraded=plan.degraded,
            cache_hit=bool(stats.cache_origins)
            and all(origin in ("memory", "disk") for origin in stats.cache_origins),
            plan_s=plan_s,
            transform_s=transform_s,
            execute_s=execute_s,
            execution=BatchExecution(
                traversals=runs, lanes=runs, traversals_saved=0,
                strategy="sharded",
            ),
        )

    def _shardset_for(self, prepared: CSRGraph) -> ShardSet:
        """The (cached) shard set of one prepared graph.

        Keyed by content fingerprint, so bfs and pr on one dataset
        share slices (both prepare to the weight-stripped graph) while
        cc's symmetrised preparation gets its own.
        """
        fingerprint = prepared.fingerprint()
        with self._shardsets_lock:
            shardset = self._shardsets.get(fingerprint)
            if shardset is None:
                shardset = ShardSet.build(
                    prepared,
                    self.num_shards,
                    remotes=self.shard_remotes,
                    op_timeout_s=self.shard_op_timeout_s,
                )
                self._shardsets[fingerprint] = shardset
            return shardset

    def _drop_shardsets(self) -> None:
        """Forget cached shard sets after a loss (rebuilt on demand).

        A lost remote shard poisons every shard set holding a handle
        to it; dropping them forces the next sharded batch to re-ship
        slices — which either heals (host restarted) or loses again
        and falls back, never wedges.
        """
        with self._shardsets_lock:
            dropped, self._shardsets = self._shardsets, {}
        for shardset in dropped.values():
            shardset.close()

    # -- lifecycle -----------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        super().close(wait=wait)
        if wait:
            self._drop_shardsets()
