"""Typed request/result envelopes of the analytics service.

A :class:`QueryRequest` is everything a caller states about one
analytic run; a :class:`QueryResult` is everything the service states
back — values, the plan it chose, cache behaviour, and a per-stage
latency breakdown.  Both are plain dataclasses so they serialise
trivially and tests can assert on every field.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.baselines.base import ALGORITHMS
from repro.engine.push import EngineOptions
from repro.errors import ServiceError
from repro.graph.csr import CSRGraph

_request_ids = itertools.count(1)


@dataclass(frozen=True)
class QueryRequest:
    """One analytics query against a registered or inline graph.

    Parameters
    ----------
    algorithm:
        One of the six analytics (``bfs``/``sssp``/``sswp``/``cc``/
        ``bc``/``pr``).
    graph:
        Either the name of a graph registered with
        :meth:`~repro.service.executor.AnalyticsService.register`, or
        a :class:`CSRGraph` passed inline.
    sources:
        Source nodes for source-rooted analytics.  Several sources on
        one request are fanned out through the multi-source helpers;
        the batcher additionally merges and dedups sources *across*
        same-graph requests.
    transform:
        ``"auto"`` lets the planner choose; ``"udt"``, ``"virtual"``,
        ``"virtual+"`` force a transform; ``"none"`` runs on the raw
        CSR (what degraded execution falls back to).
    degree_bound:
        Explicit K; ``None`` defers to :mod:`repro.core.selection`.
    timeout_s:
        Soft deadline measured from submission.  A cold cache with a
        deadline too tight for transform construction degrades to the
        untransformed CSR instead of blowing the budget; a request
        still queued past its deadline fails with a timeout.
    tenant:
        Who is asking — an opaque accounting label (``""`` = the
        default tenant).  Execution ignores it entirely; the sharded
        tier's routing policy (:mod:`repro.service.routing`) charges
        token quotas and assigns priority classes by it.
    """

    algorithm: str
    graph: Union[str, CSRGraph]
    sources: tuple = ()
    transform: str = "auto"
    degree_bound: Optional[int] = None
    timeout_s: Optional[float] = None
    options: EngineOptions = EngineOptions()
    tenant: str = ""
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ServiceError(
                f"unknown algorithm {self.algorithm!r}; known: {sorted(ALGORITHMS)}"
            )
        if self.transform not in ("auto", "none", "udt", "virtual", "virtual+"):
            raise ServiceError(f"unknown transform {self.transform!r}")
        object.__setattr__(self, "sources", tuple(int(s) for s in self.sources))
        spec = ALGORITHMS[self.algorithm]
        if spec.needs_source and not self.sources:
            raise ServiceError(f"{self.algorithm} requires at least one source")
        if not spec.needs_source and self.sources:
            raise ServiceError(f"{self.algorithm} takes no sources")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ServiceError(f"timeout must be positive, got {self.timeout_s}")
        if not isinstance(self.tenant, str):
            raise ServiceError(f"tenant must be a string, got {self.tenant!r}")

    @staticmethod
    def single(
        algorithm: str,
        graph: Union[str, CSRGraph],
        source: Optional[int] = None,
        **kwargs,
    ) -> "QueryRequest":
        """Convenience constructor for the common one-source case."""
        sources: Sequence[int] = () if source is None else (source,)
        return QueryRequest(algorithm=algorithm, graph=graph, sources=sources, **kwargs)


@dataclass
class StageTimings:
    """Wall-clock seconds per serving stage for one request."""

    queue_s: float = 0.0
    plan_s: float = 0.0
    transform_s: float = 0.0
    execute_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.queue_s + self.plan_s + self.transform_s + self.execute_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "queue_s": self.queue_s,
            "plan_s": self.plan_s,
            "transform_s": self.transform_s,
            "execute_s": self.execute_s,
            "total_s": self.total_s,
        }


@dataclass
class QueryResult:
    """Outcome of one served query.

    ``values`` maps source node -> value array for source-rooted
    analytics, or holds the single array under key ``-1`` for
    sourceless ones (CC/PR).  ``cache_hit`` is True when the plan's
    transform artifact came from the catalog (memory or disk) rather
    than being built for this request.
    """

    request_id: int
    algorithm: str
    values: Dict[int, np.ndarray]
    transform: str
    degree_bound: int
    cache_hit: bool = False
    degraded: bool = False
    batched_with: int = 0
    timings: StageTimings = field(default_factory=StageTimings)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def value(self, source: Optional[int] = None) -> np.ndarray:
        """The value array for ``source`` (or the only one)."""
        if source is not None:
            return self.values[int(source)]
        if len(self.values) != 1:
            raise ServiceError(
                f"result holds {len(self.values)} arrays; name a source"
            )
        return next(iter(self.values.values()))
