"""Deterministic trace replay: re-submit a recorded stream, diff digests.

A recorded trace (:mod:`repro.service.ingest`) is a complete
experiment: the requests that arrived, the pace they arrived at, and
a digest of every answer.  :func:`replay_trace` re-drives the
:class:`~repro.service.executor.AnalyticsService` from one and
verifies that every replayed answer digests equal to the recorded
one — which makes every captured trace a regression test that runs
identically under the thread and process backends (the Gunrock
lesson: replaying recorded operator streams against reference
results is what keeps a concurrent runtime honest).

The replay contract:

* requests are re-submitted in recorded order; ``speed`` re-paces the
  recorded inter-arrival deltas (``0`` = as fast as possible, ``1`` =
  real time, ``2`` = twice as fast);
* each replayed answer's :func:`~repro.service.ingest.result_digest`
  is diffed against the recorded digest for the same trace id;
  digests cover values + error text only, so plan/cache differences
  (a replay that degrades where the recording did not) cannot create
  false mismatches — only wrong *answers* can;
* ``loop`` replays the stream N times through one service — later
  passes hit a warm catalog, so looping doubles as a cheap soak that
  the cache tier returns the same bytes it was handed.

Graphs are reconstructed from the trace header's recipes
(:func:`resolve_trace_graphs`): dataset stand-ins regenerate from
their seeded generators, ``.npz`` refs load from disk, and a recorded
fingerprint is verified after loading so dataset drift surfaces as a
typed error instead of a wall of digest mismatches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ServiceError, TraceFormatError
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.graph.io import load_npz
from repro.service.executor import AnalyticsService, QueryTicket
from repro.service.ingest import (
    Trace,
    TraceRecorder,
    TraceRequest,
    load_trace,
    result_digest,
)

#: default seconds to wait for any single replayed ticket.
DEFAULT_RESULT_WAIT_S = 300.0


def resolve_trace_graphs(
    trace: Trace,
    *,
    overrides: Optional[Dict[str, CSRGraph]] = None,
) -> Dict[str, CSRGraph]:
    """Reconstruct every graph the trace references.

    ``overrides`` wins over header recipes (callers replaying against
    an in-memory graph, or a trace recorded with inline graphs whose
    recipes are fingerprint-only).  Header entries support
    ``{"dataset", "scale", "weighted", "seed"}`` (seeded stand-in
    regeneration) and ``{"path"}`` (``.npz`` load); a recorded
    ``fingerprint`` is verified after loading.
    """
    graphs: Dict[str, CSRGraph] = dict(overrides or {})
    referenced = {request.graph for request in trace.requests}
    for name, entry in trace.header.graphs.items():
        if name in graphs:
            continue
        if "dataset" in entry:
            graphs[name] = load_dataset(
                entry["dataset"],
                scale=float(entry.get("scale", 1.0)),
                seed=entry.get("seed"),
                weighted=bool(entry.get("weighted", True)),
            )
        elif "path" in entry:
            graphs[name] = load_npz(entry["path"])
        elif name in referenced:
            raise TraceFormatError(
                f"graph {name!r} has no reconstruction recipe "
                f"(need 'dataset' or 'path', or pass it via overrides)"
            )
        else:
            continue
        expected = entry.get("fingerprint")
        actual = graphs[name].fingerprint()
        if expected is not None and actual != expected:
            raise TraceFormatError(
                f"graph {name!r} reconstructed with fingerprint "
                f"{actual[:16]}… but the trace recorded {expected[:16]}… "
                f"(generator or dataset drift; re-record the trace)"
            )
    missing = sorted(referenced - set(graphs))
    if missing:
        raise ServiceError(
            f"trace references unknown graph(s): {', '.join(missing)}; "
            f"header defines: {', '.join(sorted(trace.header.graphs)) or '(none)'}"
        )
    return graphs


@dataclass(frozen=True)
class DigestMismatch:
    """One replayed answer that did not digest equal to the record."""

    trace_id: int
    algorithm: str
    graph: str
    expected: str
    actual: str
    error: Optional[str] = None

    def __str__(self) -> str:
        detail = f" (replay error: {self.error})" if self.error else ""
        return (
            f"request {self.trace_id} ({self.algorithm} on {self.graph}): "
            f"expected {self.expected[:23]}… got {self.actual[:23]}…{detail}"
        )


@dataclass
class ReplayReport:
    """What one replay did and whether it matched the record."""

    source: str
    backend: str
    loops: int = 1
    requests_submitted: int = 0
    results_ok: int = 0
    results_failed: int = 0
    digests_checked: int = 0
    digests_missing: int = 0
    mismatches: List[DigestMismatch] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """No digest diverged (recorded failures replaying as the
        same failure still match — the trace is the contract)."""
        return not self.mismatches

    @property
    def qps(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.requests_submitted / self.elapsed_s

    def summary(self) -> Dict[str, float]:
        return {
            "requests_submitted": self.requests_submitted,
            "results_ok": self.results_ok,
            "results_failed": self.results_failed,
            "digests_checked": self.digests_checked,
            "digests_matched": self.digests_checked - len(self.mismatches),
            "digests_mismatched": len(self.mismatches),
            "digests_missing": self.digests_missing,
            "elapsed_s": self.elapsed_s,
            "qps": self.qps,
        }

    def to_text(self) -> str:
        lines = [
            f"replayed {self.requests_submitted} request(s) from "
            f"{self.source} on backend={self.backend} "
            f"(loop={self.loops}) in {self.elapsed_s:.3f}s "
            f"({self.qps:.1f} req/s)",
            f"  results: {self.results_ok} ok, {self.results_failed} failed",
            f"  digests: {self.digests_checked - len(self.mismatches)}"
            f"/{self.digests_checked} matched"
            + (
                f", {self.digests_missing} without a recorded digest"
                if self.digests_missing
                else ""
            ),
        ]
        for mismatch in self.mismatches:
            lines.append(f"  MISMATCH {mismatch}")
        return "\n".join(lines)


def _pace(delta_s: float, speed: float) -> None:
    if speed > 0 and delta_s > 0:
        time.sleep(delta_s / speed)


def replay_trace(
    source: Union[str, Trace],
    *,
    service: Optional[AnalyticsService] = None,
    backend: Optional[str] = None,
    workers: int = 4,
    queue_size: int = 256,
    speed: float = 0.0,
    loop: int = 1,
    batch: int = 1,
    verify: bool = True,
    graphs: Optional[Dict[str, CSRGraph]] = None,
    recorder: Optional[TraceRecorder] = None,
    on_malformed: str = "strict",
    result_wait_s: Optional[float] = DEFAULT_RESULT_WAIT_S,
) -> ReplayReport:
    """Re-submit a recorded trace and diff every answer's digest.

    Parameters
    ----------
    source:
        Trace path (or ``-``/``tcp://…``, anything
        :class:`~repro.service.ingest.TraceReader` accepts) or an
        already-loaded :class:`~repro.service.ingest.Trace`.
    service:
        Replay through an existing service (its registered graphs are
        used as overrides); omitted, a fresh one is built with
        ``backend``/``workers``/``queue_size`` and closed afterwards.
    speed:
        Inter-arrival pacing: ``0`` submits as fast as possible,
        ``1`` honours the recorded deltas, ``s`` divides them by
        ``s``.
    loop:
        Replay the stream this many times through one service
        (later passes exercise the warm catalog).
    batch:
        Submission window: consecutive requests are grouped into
        ``submit_batch`` calls of this size, letting replay exercise
        same-graph coalescing the way the synthetic driver does.
    verify:
        Diff replayed digests against recorded ones (requests with no
        recorded digest are counted in ``digests_missing``).
    recorder:
        Optional :class:`~repro.service.ingest.TraceRecorder` attached
        for the duration of the replay — the round-trip path: replay a
        trace while re-recording it, then diff the two.
    """
    if loop < 1:
        raise ServiceError(f"loop must be >= 1, got {loop}")
    if batch < 1:
        raise ServiceError(f"batch must be >= 1, got {batch}")
    if speed < 0:
        raise ServiceError(f"speed must be >= 0, got {speed}")
    trace = source if isinstance(source, Trace) else None
    if trace is None:
        trace = load_trace(source, on_malformed=on_malformed)
    source_name = source if isinstance(source, str) else "<trace>"

    own_service = service is None
    if own_service:
        service = AnalyticsService(
            workers=workers, backend=backend, queue_size=queue_size
        )
    assert service is not None
    report = ReplayReport(
        source=source_name, backend=service.backend, loops=loop
    )
    try:
        resolved = resolve_trace_graphs(
            trace, overrides={**service.registered(), **(graphs or {})}
        )
        for name, graph in resolved.items():
            service.register(name, graph)
        if recorder is not None:
            service.attach_recorder(recorder)
        start = time.perf_counter()
        for _ in range(loop):
            _replay_pass(service, trace, report, speed=speed, batch=batch,
                         verify=verify, result_wait_s=result_wait_s)
        report.elapsed_s = time.perf_counter() - start
        service.metrics.replay_observed(
            checked=report.digests_checked, mismatched=len(report.mismatches)
        )
        return report
    finally:
        if recorder is not None:
            service.detach_recorder(recorder)
        if own_service:
            service.close()


def _replay_pass(
    service: AnalyticsService,
    trace: Trace,
    report: ReplayReport,
    *,
    speed: float,
    batch: int,
    verify: bool,
    result_wait_s: Optional[float],
) -> None:
    pending: List[Tuple[TraceRequest, QueryTicket]] = []
    window: List[TraceRequest] = []

    def flush_window() -> None:
        if not window:
            return
        requests = [tr.to_query_request() for tr in window]
        tickets = service.submit_batch(requests)
        pending.extend(zip(window, tickets))
        report.requests_submitted += len(window)
        window.clear()

    for trace_request in trace.requests:
        _pace(trace_request.delta_s, speed)
        window.append(trace_request)
        if len(window) >= batch:
            flush_window()
    flush_window()

    for trace_request, ticket in pending:
        result = ticket.result(result_wait_s)
        if result.ok:
            report.results_ok += 1
        else:
            report.results_failed += 1
        if not verify:
            continue
        recorded = trace.results.get(trace_request.trace_id)
        if recorded is None:
            report.digests_missing += 1
            continue
        report.digests_checked += 1
        actual = result_digest(result)
        if actual != recorded.digest:
            report.mismatches.append(
                DigestMismatch(
                    trace_id=trace_request.trace_id,
                    algorithm=trace_request.algorithm,
                    graph=trace_request.graph,
                    expected=recorded.digest,
                    actual=actual,
                    error=result.error,
                )
            )


def record_trace(
    service: AnalyticsService,
    sink,
    *,
    graphs: Optional[Dict[str, dict]] = None,
    note: str = "",
) -> TraceRecorder:
    """Attach a fresh recorder to ``service``; caller closes it.

    Convenience for the common capture shape::

        recorder = record_trace(service, "out.jsonl", graphs={...})
        ... drive traffic ...
        service.detach_recorder(recorder); recorder.close()
    """
    recorder = TraceRecorder(sink, graphs=graphs, note=note)
    service.attach_recorder(recorder)
    return recorder
