"""Typed transform artifacts: what the catalog caches and spills.

A transform artifact is one finished transformation of one concrete
graph — a UDT :class:`~repro.core.types.TransformResult` or a
:class:`~repro.core.virtual.VirtualGraph` — wrapped with exactly the
metadata the cache needs: a content-addressed key, a byte size for
budget accounting, and a lossless ``.npz`` round-trip so artifacts
evicted from memory can be reloaded from disk *without redoing any
transform work* (the point of the cache; Table 7 shows UDT costing
10-60x the virtual transform, and both are pure overhead on a warm
path).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.types import TransformResult, TransformStats
from repro.core.virtual import VirtualGraph
from repro.core.weights import DumbWeight
from repro.errors import ServiceError
from repro.graph.csr import CSRGraph, NODE_DTYPE

#: transform kinds the catalog understands.  ``none`` is never cached
#: (there is nothing to reuse); it exists so plans can name it.
#: ``prepared`` is not a paper transform: it is a per-algorithm
#: prepared input graph (symmetrised for CC, weight-stripped for the
#: unweighted analytics) whose O(|E|) construction is worth amortising
#: under the same byte budget as the transforms.
TRANSFORM_KINDS = ("udt", "virtual", "virtual+", "prepared")


@dataclass(frozen=True)
class ArtifactKey:
    """Content-addressed identity of one transform artifact.

    Two requests that agree on all four fields are served by the same
    artifact, no matter which ``CSRGraph`` *object* they carried: the
    graph contributes its content fingerprint, not its identity.
    ``dumb_weight`` only matters for physical transforms (UDT edge
    weights differ between path and bottleneck analytics); virtual
    overlays never add edges, so it is normalised to ``none`` there.
    """

    graph_fingerprint: str
    kind: str  # "udt" | "virtual" | "virtual+"
    degree_bound: int
    dumb_weight: str = "none"  # DumbWeight.value for udt, "none" otherwise

    def __post_init__(self) -> None:
        if self.kind not in TRANSFORM_KINDS:
            raise ServiceError(
                f"unknown transform kind {self.kind!r}; known: {TRANSFORM_KINDS}"
            )

    @staticmethod
    def for_transform(
        graph: CSRGraph,
        kind: str,
        degree_bound: int,
        dumb_weight: DumbWeight = DumbWeight.NONE,
    ) -> "ArtifactKey":
        dw = dumb_weight.value if kind == "udt" else DumbWeight.NONE.value
        return ArtifactKey(graph.fingerprint(), kind, int(degree_bound), dw)

    @staticmethod
    def for_prepared(
        graph: CSRGraph, *, symmetrize: bool, weighted: bool
    ) -> "ArtifactKey":
        """Key of a prepared input graph (``kind="prepared"``).

        Preparation has no degree bound or dumb weight; the
        ``dumb_weight`` slot carries the preparation recipe instead so
        symmetrised and weight-stripped variants of one graph get
        distinct entries (and distinct spill files).
        """
        recipe = (
            ("sym" if symmetrize else "dir")
            + ("-w" if weighted else "-unw")
        )
        return ArtifactKey(graph.fingerprint(), "prepared", 0, recipe)

    def filename(self) -> str:
        """Filesystem-safe spill file name for this key."""
        kind = self.kind.replace("+", "p")
        return (
            f"{self.graph_fingerprint[:20]}-{kind}"
            f"-k{self.degree_bound}-{self.dumb_weight}.npz"
        )


@dataclass(frozen=True)
class TransformArtifact:
    """One cached transformation plus its cache accounting.

    ``payload`` is the library-native object an engine consumes
    directly: a :class:`TransformResult` for ``udt`` keys, a
    :class:`VirtualGraph` for virtual keys, and a plain
    :class:`CSRGraph` for ``prepared`` keys.  ``build_seconds`` records
    what the transform cost to construct — it is what every cache hit
    saves, and the catalog aggregates it into ``seconds_saved``.
    """

    key: ArtifactKey
    payload: Union[TransformResult, VirtualGraph, CSRGraph]
    build_seconds: float

    def nbytes(self) -> int:
        """Bytes this artifact holds *beyond* the input graph.

        UDT owns a full transformed CSR plus provenance arrays; a
        virtual overlay shares the physical CSR (never copied, §4) and
        is charged only for its overlay arrays; a prepared graph is
        charged its full CSR (symmetrisation builds fresh arrays).
        This is the quantity the catalog's byte budget meters.
        """
        if isinstance(self.payload, CSRGraph):
            return int(self.payload.nbytes())
        if isinstance(self.payload, TransformResult):
            return int(
                self.payload.graph.nbytes()
                + self.payload.node_origin.nbytes
                + self.payload.new_edge_mask.nbytes
            )
        virtual = self.payload
        return int(
            virtual.first_virtual.nbytes
            + virtual.physical_ids.nbytes
            + virtual.virtual_degrees.nbytes
            + virtual.family_rank.nbytes
            + virtual.family_size.nbytes
        )

    # ------------------------------------------------------------------
    # Disk spill round-trip
    # ------------------------------------------------------------------
    def save_npz(self, path: str) -> None:
        """Spill this artifact to a compressed numpy archive.

        The archive stores the *derived* arrays, not a recipe: loading
        reconstructs the payload without rerunning Algorithm 1 or the
        virtual node-array construction.  Writes go through a
        temporary file + rename so a crashed spill never leaves a
        truncated archive for a later session to trip on.
        """
        meta = np.asarray(
            [self.key.degree_bound, _KIND_CODES[self.key.kind]], dtype=np.int64
        )
        payload = {
            "meta": meta,
            "fingerprint": np.frombuffer(
                self.key.graph_fingerprint.encode("ascii"), dtype=np.uint8
            ),
            "dumb_weight": np.frombuffer(
                self.key.dumb_weight.encode("ascii"), dtype=np.uint8
            ),
            "build_seconds": np.asarray([self.build_seconds]),
        }
        if isinstance(self.payload, CSRGraph):
            payload.update(
                offsets=self.payload.offsets, targets=self.payload.targets
            )
            if self.payload.weights is not None:
                payload["weights"] = self.payload.weights
        elif isinstance(self.payload, TransformResult):
            result = self.payload
            stats = result.stats
            payload.update(
                offsets=result.graph.offsets,
                targets=result.graph.targets,
                node_origin=result.node_origin,
                new_edge_mask=result.new_edge_mask,
                scalars=np.asarray(
                    [
                        result.num_original_nodes,
                        stats.degree_bound,
                        stats.num_families,
                        stats.new_nodes,
                        stats.new_edges,
                        stats.max_degree_after,
                        stats.max_family_hops,
                    ],
                    dtype=np.int64,
                ),
            )
            if result.graph.weights is not None:
                payload["weights"] = result.graph.weights
        else:
            virtual = self.payload
            payload.update(
                offsets=virtual.physical.offsets,
                targets=virtual.physical.targets,
                first_virtual=virtual.first_virtual,
                physical_ids=virtual.physical_ids,
                virtual_degrees=virtual.virtual_degrees,
                family_rank=virtual.family_rank,
                family_size=virtual.family_size,
            )
            if virtual.physical.weights is not None:
                payload["weights"] = virtual.physical.weights
        # savez appends ".npz" to names without it; keep the suffix so
        # the temp path we write is the temp path we rename.
        tmp = f"{path}.tmp-{os.getpid()}.npz"
        try:
            np.savez_compressed(tmp, **payload)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)


def load_artifact(path: str) -> TransformArtifact:
    """Reload an artifact spilled by :meth:`TransformArtifact.save_npz`."""
    with np.load(path) as archive:
        degree_bound, kind_code = (int(v) for v in archive["meta"])
        kind = _KIND_NAMES[kind_code]
        key = ArtifactKey(
            graph_fingerprint=bytes(archive["fingerprint"]).decode("ascii"),
            kind=kind,
            degree_bound=degree_bound,
            dumb_weight=bytes(archive["dumb_weight"]).decode("ascii"),
        )
        build_seconds = float(archive["build_seconds"][0])
        weights = archive["weights"] if "weights" in archive.files else None
        if kind == "prepared":
            payload: Union[TransformResult, VirtualGraph, CSRGraph] = CSRGraph(
                archive["offsets"], archive["targets"], weights, validate=False
            )
        elif kind == "udt":
            scalars = archive["scalars"]
            graph = CSRGraph(
                archive["offsets"], archive["targets"], weights, validate=False
            )
            stats = TransformStats(
                degree_bound=int(scalars[1]),
                num_families=int(scalars[2]),
                new_nodes=int(scalars[3]),
                new_edges=int(scalars[4]),
                max_degree_after=int(scalars[5]),
                max_family_hops=int(scalars[6]),
            )
            payload = TransformResult(
                graph=graph,
                node_origin=np.ascontiguousarray(archive["node_origin"], NODE_DTYPE),
                new_edge_mask=np.ascontiguousarray(archive["new_edge_mask"], bool),
                num_original_nodes=int(scalars[0]),
                stats=stats,
            )
        else:
            physical = CSRGraph(
                archive["offsets"], archive["targets"], weights, validate=False
            )
            payload = _rebuild_virtual(
                physical,
                degree_bound,
                coalesced=kind == "virtual+",
                first_virtual=np.ascontiguousarray(archive["first_virtual"], NODE_DTYPE),
                physical_ids=np.ascontiguousarray(archive["physical_ids"], NODE_DTYPE),
                virtual_degrees=np.ascontiguousarray(
                    archive["virtual_degrees"], NODE_DTYPE
                ),
                family_rank=np.ascontiguousarray(archive["family_rank"], NODE_DTYPE),
                family_size=np.ascontiguousarray(archive["family_size"], NODE_DTYPE),
            )
    return TransformArtifact(key=key, payload=payload, build_seconds=build_seconds)


def _rebuild_virtual(
    physical: CSRGraph,
    degree_bound: int,
    *,
    coalesced: bool,
    first_virtual: np.ndarray,
    physical_ids: np.ndarray,
    virtual_degrees: np.ndarray,
    family_rank: np.ndarray,
    family_size: np.ndarray,
) -> VirtualGraph:
    """Reassemble a :class:`VirtualGraph` from its spilled arrays.

    Bypasses ``__init__`` deliberately: the constructor *derives* the
    overlay arrays, and a disk hit must not pay that derivation again.
    """
    virtual = VirtualGraph.__new__(VirtualGraph)
    virtual.physical = physical
    virtual.degree_bound = int(degree_bound)
    virtual.coalesced = bool(coalesced)
    virtual.first_virtual = first_virtual
    virtual.physical_ids = physical_ids
    virtual.virtual_degrees = virtual_degrees
    virtual.family_rank = family_rank
    virtual.family_size = family_size
    return virtual


_KIND_CODES = {"udt": 0, "virtual": 1, "virtual+": 2, "prepared": 3}
_KIND_NAMES = {code: name for name, code in _KIND_CODES.items()}
