"""Cache economics: cost-aware eviction, trace mining, pre-warming.

Tigr's speedups come from transform artifacts that are expensive to
build and cheap to reuse (§6.5, Table 7) — but a plain LRU treats an
artifact that took 40 s to build and occupies 2 MB the same as a 50 ms
throwaway, so one burst of large one-shot requests flushes exactly the
artifacts that make warm serving fast.  This module gives the catalog
an economic memory:

* **eviction policies** — a pluggable victim-selection layer for
  :class:`~repro.service.catalog.GraphCatalog`.  ``"lru"`` preserves
  the original recency order; ``"gdsf"`` is Greedy-Dual-Size-Frequency
  (Cherkasova '98), whose priority per entry is::

      priority = clock + frequency * build_seconds / nbytes

  The inflation ``clock`` rises to each victim's priority on eviction,
  so long-idle entries age out while small, expensive, frequently hit
  artifacts stay resident.  Policy state is guarded by the catalog's
  own lock (every callback runs under it), and its inputs —
  ``build_seconds`` and ``nbytes()`` — travel inside the spilled
  ``.npz`` archive, so a process worker hydrating from the shared disk
  tier recomputes the same base priority the parent computed.

* **a trace-mining forecaster** — parses recorded trace-v1 streams
  (:mod:`repro.service.ingest`) into per-(graph fingerprint, kind, K)
  arrival histograms, resolving each recorded request through the real
  planner so ``transform="auto"`` / ``k=0`` requests forecast the
  artifact they would actually demand.  The result is a
  :class:`WarmPlan`: warm-set entries ranked by expected build seconds
  saved (``requests × est_build_s``), serialisable to JSON
  (``python -m repro forecast TRACE... --out PLAN``).

* **a pre-warmer** — :class:`Prewarmer` replays a plan's entries
  through the normal prepare/plan/build pipeline on a background
  thread before traffic lands (``serve --prewarm PLAN`` or
  ``--prewarm-from-trace TRACE``), reporting progress through the
  catalog stats the service metrics already surface
  (``prewarm_built``, ``prewarm_hits``, ``evictions_by_policy``).

See ``docs/cache-economics.md`` for the policy math, the plan file
format, and when LRU remains the right choice.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError, TigrError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.graph.csr import CSRGraph
    from repro.service.artifacts import ArtifactKey, TransformArtifact
    from repro.service.executor import AnalyticsService
    from repro.service.ingest import Trace

#: environment fallback for the catalog eviction policy, mirroring
#: REPRO_SERVICE_WORKERS / REPRO_KERNEL_BACKEND: process workers
#: inherit it at spawn, so one variable pins the whole process tree.
CATALOG_POLICY_ENV = "REPRO_CATALOG_POLICY"

#: eviction policies the catalog understands.
CATALOG_POLICIES = ("lru", "gdsf")

#: current warm-set plan schema version.
WARM_PLAN_VERSION = 1


def resolve_policy(policy: Optional[str]) -> str:
    """Resolve an eviction-policy choice: explicit arg > env > LRU."""
    choice = policy or os.environ.get(CATALOG_POLICY_ENV) or "lru"
    choice = choice.strip().lower()
    if choice not in CATALOG_POLICIES:
        raise ServiceError(
            f"unknown catalog policy {choice!r}; "
            f"known: {', '.join(CATALOG_POLICIES)}"
        )
    return choice


# ----------------------------------------------------------------------
# Eviction policies
# ----------------------------------------------------------------------
class EvictionPolicy:
    """Victim selection for the catalog's memory tier.

    Every method is invoked by :class:`GraphCatalog` *while holding its
    lock*, so implementations keep plain dicts and no locking of their
    own.  ``entries`` arguments are the catalog's live ``OrderedDict``
    in recency order (oldest first) — policies must not mutate it.
    """

    name = "base"

    def record_insert(self, key: "ArtifactKey", artifact: "TransformArtifact") -> None:
        """A fresh artifact entered the memory tier under ``key``."""

    def record_access(self, key: "ArtifactKey", artifact: "TransformArtifact") -> None:
        """A resident entry was served (a memory hit)."""

    def record_evict(self, key: "ArtifactKey") -> None:
        """``key`` was chosen as a victim and left the memory tier."""

    def forget(self, key: "ArtifactKey") -> None:
        """``key`` left the tier for a non-eviction reason (replace/clear)."""

    def select_victim(self, entries) -> "ArtifactKey":
        """The key to evict next; ``entries`` is non-empty."""
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all per-key state (the catalog was cleared)."""


class LruPolicy(EvictionPolicy):
    """Least-recently-used: the catalog's original behaviour.

    Recency lives in the catalog's ``OrderedDict`` itself (hits
    ``move_to_end``), so this policy is stateless: the victim is
    always the front of the order.
    """

    name = "lru"

    def select_victim(self, entries) -> "ArtifactKey":
        return next(iter(entries))


class GdsfPolicy(EvictionPolicy):
    """Greedy-Dual-Size-Frequency: cost-per-byte-aware eviction.

    ``priority(key) = clock + frequency[key] * build_seconds / nbytes``
    — an entry's priority is what keeping it is worth (expected build
    seconds saved per byte of budget, scaled by how often it is hit),
    inflated by a clock that rises to each victim's priority so stale
    popularity decays.  Frequencies survive eviction: a key that
    returns via the disk tier resumes its hit count instead of
    restarting at one, which is what lets a spill/hydrate round-trip
    (including a process worker hydrating the parent's write-through
    artifact) agree with the parent's accounting.
    """

    name = "gdsf"

    def __init__(self) -> None:
        self._clock = 0.0
        self._frequency: Dict["ArtifactKey", int] = {}
        self._priority: Dict["ArtifactKey", float] = {}

    @property
    def clock(self) -> float:
        """Current inflation clock (rises to each victim's priority)."""
        return self._clock

    def frequency_of(self, key: "ArtifactKey") -> int:
        """Accumulated hit count for ``key`` (survives eviction)."""
        return self._frequency.get(key, 0)

    def priority_of(self, key: "ArtifactKey") -> float:
        """Current priority of a resident key (0.0 when absent)."""
        return self._priority.get(key, 0.0)

    def _reprice(self, key: "ArtifactKey", artifact: "TransformArtifact") -> None:
        value = (
            self._frequency.get(key, 1)
            * float(artifact.build_seconds)
            / max(1, artifact.nbytes())
        )
        self._priority[key] = self._clock + value

    def record_insert(self, key, artifact) -> None:
        self._frequency[key] = self._frequency.get(key, 0) + 1
        self._reprice(key, artifact)

    def record_access(self, key, artifact) -> None:
        self._frequency[key] = self._frequency.get(key, 0) + 1
        self._reprice(key, artifact)

    def record_evict(self, key) -> None:
        # Classic GDSF aging: the clock rises to the evicted priority,
        # so future inserts outrank entries that stopped earning hits.
        self._clock = max(self._clock, self._priority.pop(key, self._clock))

    def forget(self, key) -> None:
        self._priority.pop(key, None)

    def select_victim(self, entries) -> "ArtifactKey":
        # Minimum priority loses; ties break towards the LRU front
        # (iteration order), matching the plain-LRU behaviour exactly
        # when every entry prices the same.
        victim = None
        victim_priority = float("inf")
        for key in entries:
            priority = self._priority.get(key, 0.0)
            if priority < victim_priority:
                victim, victim_priority = key, priority
        assert victim is not None
        return victim

    def reset(self) -> None:
        self._clock = 0.0
        self._frequency.clear()
        self._priority.clear()


def make_policy(name: Optional[str]) -> EvictionPolicy:
    """Instantiate the eviction policy ``name`` resolves to."""
    resolved = resolve_policy(name)
    if resolved == "gdsf":
        return GdsfPolicy()
    return LruPolicy()


# ----------------------------------------------------------------------
# Trace mining: demand forecast -> warm-set plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WarmEntry:
    """One forecast artifact: identity, demand, and how to rebuild it.

    Identity is the resolved artifact — ``(fingerprint, kind, k,
    dumb_weight)`` of the *prepared* graph the planner would key it
    under — while ``graph``/``algorithm``/``transform``/
    ``degree_bound`` keep the recorded request signature the
    pre-warmer replays through the real pipeline to rebuild it.
    """

    #: trace graph name (key into the plan's recipe dict).
    graph: str
    #: prepared-graph fingerprint the artifact is keyed under.
    fingerprint: str
    #: resolved transform kind ("udt" | "virtual" | "virtual+").
    kind: str
    #: resolved degree bound (the planner's K when the trace said 0).
    k: int
    dumb_weight: str
    #: representative request signature for the pre-warmer.
    algorithm: str
    transform: str
    degree_bound: int
    #: demand mined from the trace.
    requests: int
    first_arrival_s: float
    #: arrival histogram: request count per plan-wide time bucket.
    histogram: Tuple[int, ...]
    #: predicted cold build cost (planner model, seconds).
    est_build_s: float
    #: expected build seconds saved by keeping this warm.
    score: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "graph": self.graph,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "k": self.k,
            "dumb_weight": self.dumb_weight,
            "algorithm": self.algorithm,
            "transform": self.transform,
            "degree_bound": self.degree_bound,
            "requests": self.requests,
            "first_arrival_s": round(self.first_arrival_s, 6),
            "histogram": list(self.histogram),
            "est_build_s": round(self.est_build_s, 6),
            "score": round(self.score, 6),
        }


@dataclass
class WarmPlan:
    """A ranked warm set plus the graph recipes needed to build it."""

    #: trace-header graph recipes, name -> recipe dict.
    graphs: Dict[str, dict] = field(default_factory=dict)
    #: entries ranked by score (descending), first arrival breaking ties.
    entries: List[WarmEntry] = field(default_factory=list)
    #: width of one histogram bucket, seconds.
    bucket_s: float = 1.0
    #: recorded span of the mined trace(s), seconds.
    trace_seconds: float = 0.0
    #: total requests mined (including uncacheable "none" plans).
    requests_total: int = 0
    #: requests whose plan produces no cacheable artifact.
    uncacheable: int = 0
    #: where the plan came from (trace paths; informational).
    sources: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": WARM_PLAN_VERSION,
            "kind": "repro-warm-plan",
            "graphs": self.graphs,
            "bucket_s": self.bucket_s,
            "trace_seconds": round(self.trace_seconds, 6),
            "requests_total": self.requests_total,
            "uncacheable": self.uncacheable,
            "sources": list(self.sources),
            "entries": [entry.as_dict() for entry in self.entries],
        }

    def top(self, count: int) -> "WarmPlan":
        """A copy keeping only the ``count`` highest-ranked entries."""
        if count <= 0 or count >= len(self.entries):
            return self
        return WarmPlan(
            graphs=dict(self.graphs),
            entries=list(self.entries[:count]),
            bucket_s=self.bucket_s,
            trace_seconds=self.trace_seconds,
            requests_total=self.requests_total,
            uncacheable=self.uncacheable,
            sources=self.sources,
        )


def save_plan(plan: WarmPlan, path: str) -> None:
    """Write a warm-set plan as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(plan.as_dict(), handle, indent=2)
        handle.write("\n")


def load_plan(path: str) -> WarmPlan:
    """Read a plan written by :func:`save_plan` (version-checked)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ServiceError(f"cannot read warm-set plan {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != "repro-warm-plan":
        raise ServiceError(
            f"{path!r} is not a warm-set plan (expected a JSON object "
            f"with kind='repro-warm-plan'; build one with "
            f"'python -m repro forecast TRACE --out PLAN')"
        )
    version = payload.get("version")
    if version != WARM_PLAN_VERSION:
        raise ServiceError(
            f"warm-set plan {path!r} has version {version!r}; "
            f"this build reads version {WARM_PLAN_VERSION}"
        )
    entries = []
    try:
        for raw in payload.get("entries", ()):
            entries.append(WarmEntry(
                graph=str(raw["graph"]),
                fingerprint=str(raw["fingerprint"]),
                kind=str(raw["kind"]),
                k=int(raw["k"]),
                dumb_weight=str(raw.get("dumb_weight", "none")),
                algorithm=str(raw["algorithm"]),
                transform=str(raw["transform"]),
                degree_bound=int(raw.get("degree_bound", 0)),
                requests=int(raw["requests"]),
                first_arrival_s=float(raw.get("first_arrival_s", 0.0)),
                histogram=tuple(int(v) for v in raw.get("histogram", ())),
                est_build_s=float(raw.get("est_build_s", 0.0)),
                score=float(raw.get("score", 0.0)),
            ))
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(
            f"malformed warm-set plan entry in {path!r}: {exc}"
        ) from exc
    return WarmPlan(
        graphs=dict(payload.get("graphs", {})),
        entries=entries,
        bucket_s=float(payload.get("bucket_s", 1.0)),
        trace_seconds=float(payload.get("trace_seconds", 0.0)),
        requests_total=int(payload.get("requests_total", 0)),
        uncacheable=int(payload.get("uncacheable", 0)),
        sources=tuple(payload.get("sources", ())),
    )


def forecast_trace(
    trace: "Trace",
    *,
    graphs: Optional[Dict[str, "CSRGraph"]] = None,
    buckets: int = 16,
    source: str = "",
) -> WarmPlan:
    """Mine one loaded trace into a :class:`WarmPlan`.

    Each recorded request is resolved through the *real* planner
    against the prepared form of its graph, so ``transform="auto"``
    and ``k=0`` forecast the concrete ``(kind, K)`` the serving layer
    would actually build — a warm entry is an artifact identity, not a
    request string.  Demand per artifact is an arrival histogram over
    ``buckets`` equal time buckets of the recorded span; entries are
    ranked by ``requests × est_build_s`` (expected build seconds saved
    by keeping the artifact resident).
    """
    # Imported here, not at module top: the catalog imports this
    # module for its policy layer, and these pull the catalog back in.
    from repro.service.catalog import GraphCatalog
    from repro.service.planner import estimate_build_seconds, plan_query
    from repro.service.replay import resolve_trace_graphs
    from repro.service.workers import prepare_for_algorithm

    resolved = resolve_trace_graphs(trace, overrides=graphs)
    scratch = GraphCatalog()  # caches prepared graphs across requests
    span = sum(request.delta_s for request in trace.requests)
    bucket_s = max(span / buckets, 1e-9)

    @dataclass
    class _Demand:
        entry_kwargs: dict
        requests: int = 0
        first_arrival_s: float = float("inf")
        histogram: List[int] = field(default_factory=lambda: [0] * buckets)

    demand: Dict[tuple, _Demand] = {}
    plans: Dict[tuple, tuple] = {}
    uncacheable = 0
    clock = 0.0
    for request in trace.requests:
        clock += request.delta_s
        signature = (
            request.graph, request.algorithm,
            request.transform, request.degree_bound,
        )
        cached_plan = plans.get(signature)
        if cached_plan is None:
            graph = resolved[request.graph]
            prepared = prepare_for_algorithm(
                scratch, graph, request.algorithm
            )
            try:
                plan = plan_query(request.to_query_request(graph), prepared)
            except TigrError:
                # A request the planner rejects outright (e.g. udt on
                # an inapplicable analytic) warms nothing.
                plans[signature] = cached_plan = (None, None, 0.0)
                uncacheable += 1
                continue
            if not plan.caches:
                plans[signature] = cached_plan = (None, None, 0.0)
                uncacheable += 1
                continue
            key = (
                prepared.fingerprint(), plan.transform,
                plan.degree_bound, plan.dumb_weight.value,
            )
            plans[signature] = cached_plan = (
                key, signature, estimate_build_seconds(prepared, plan)
            )
        artifact_key, rep_signature, est_build_s = cached_plan
        if artifact_key is None:
            uncacheable += 1
            continue
        record = demand.get(artifact_key)
        if record is None:
            fingerprint, kind, k, dumb_weight = artifact_key
            graph_name, algorithm, transform, degree_bound = rep_signature
            record = demand[artifact_key] = _Demand(entry_kwargs=dict(
                graph=graph_name,
                fingerprint=fingerprint,
                kind=kind,
                k=k,
                dumb_weight=dumb_weight,
                algorithm=algorithm,
                transform=transform,
                degree_bound=degree_bound,
                est_build_s=est_build_s,
            ))
        record.requests += 1
        record.first_arrival_s = min(record.first_arrival_s, clock)
        bucket = min(buckets - 1, int(clock / bucket_s)) if span > 0 else 0
        record.histogram[bucket] += 1

    entries = [
        WarmEntry(
            requests=record.requests,
            first_arrival_s=record.first_arrival_s,
            histogram=tuple(record.histogram),
            score=record.requests * record.entry_kwargs["est_build_s"],
            **record.entry_kwargs,
        )
        for record in demand.values()
    ]
    entries.sort(key=lambda e: (-e.score, e.first_arrival_s, e.fingerprint))
    return WarmPlan(
        graphs=dict(trace.header.graphs),
        entries=entries,
        bucket_s=bucket_s,
        trace_seconds=span,
        requests_total=len(trace.requests),
        uncacheable=uncacheable,
        sources=(source,) if source else (),
    )


def forecast_traces(
    sources: Sequence[str],
    *,
    graphs: Optional[Dict[str, "CSRGraph"]] = None,
    buckets: int = 16,
    on_malformed: str = "strict",
) -> WarmPlan:
    """Mine one or more recorded trace files into one merged plan.

    Entries are merged by artifact identity (fingerprint, kind, K,
    dumb weight): request counts and histograms add, first arrivals
    take the minimum.  Graph recipes merge by name; a later trace's
    recipe for the same name wins (content-addressed fingerprints make
    a genuine conflict a replay-time error, not a silent mix-up).
    """
    from repro.service.ingest import load_trace

    if not sources:
        raise ServiceError("forecast needs at least one trace source")
    merged: Optional[WarmPlan] = None
    for path in sources:
        trace = load_trace(path, on_malformed=on_malformed)
        plan = forecast_trace(
            trace, graphs=graphs, buckets=buckets, source=str(path)
        )
        merged = plan if merged is None else _merge_plans(merged, plan)
    assert merged is not None
    return merged


def _merge_plans(base: WarmPlan, extra: WarmPlan) -> WarmPlan:
    by_identity: Dict[tuple, WarmEntry] = {
        (e.fingerprint, e.kind, e.k, e.dumb_weight): e for e in base.entries
    }
    for entry in extra.entries:
        identity = (entry.fingerprint, entry.kind, entry.k, entry.dumb_weight)
        seen = by_identity.get(identity)
        if seen is None:
            by_identity[identity] = entry
            continue
        histogram = tuple(
            a + b for a, b in zip(
                seen.histogram, entry.histogram
            )
        ) if len(seen.histogram) == len(entry.histogram) else seen.histogram
        requests = seen.requests + entry.requests
        by_identity[identity] = replace(
            seen,
            requests=requests,
            first_arrival_s=min(seen.first_arrival_s, entry.first_arrival_s),
            histogram=histogram,
            score=requests * seen.est_build_s,
        )
    entries = sorted(
        by_identity.values(),
        key=lambda e: (-e.score, e.first_arrival_s, e.fingerprint),
    )
    graphs = dict(base.graphs)
    graphs.update(extra.graphs)
    return WarmPlan(
        graphs=graphs,
        entries=entries,
        bucket_s=max(base.bucket_s, extra.bucket_s),
        trace_seconds=max(base.trace_seconds, extra.trace_seconds),
        requests_total=base.requests_total + extra.requests_total,
        uncacheable=base.uncacheable + extra.uncacheable,
        sources=tuple(dict.fromkeys(base.sources + extra.sources)),
    )


def resolve_plan_graphs(
    plan: WarmPlan,
    *,
    overrides: Optional[Dict[str, "CSRGraph"]] = None,
) -> Dict[str, "CSRGraph"]:
    """Reconstruct the graphs a plan's recipes describe.

    Same recipe grammar as a trace header (dataset regeneration or
    ``.npz`` load, fingerprint-verified); recipes that cannot be
    reconstructed are skipped — the pre-warmer reports those entries
    as skipped rather than failing startup.
    """
    from repro.service.ingest import Trace, TraceHeader
    from repro.service.replay import resolve_trace_graphs

    shim = Trace(
        header=TraceHeader(graphs=dict(plan.graphs)), requests=[], results={}
    )
    return resolve_trace_graphs(shim, overrides=overrides)


# ----------------------------------------------------------------------
# Pre-warming
# ----------------------------------------------------------------------
class Prewarmer:
    """Build a warm plan's artifacts on a background thread.

    Wraps one :class:`~repro.service.executor.AnalyticsService`: each
    plan entry is replayed through the same prepare → plan → build
    pipeline live traffic uses, against the service's own catalog, so
    the warmed artifact keys are exactly the keys traffic will ask
    for.  With a write-through catalog the warm set also lands in the
    shared disk tier, which is how process-backend workers inherit it.

    Progress is visible while it runs: every finished build bumps the
    catalog's ``prewarm_built`` stat (surfaced as ``prewarm_built`` in
    ``ServiceMetrics.summary()``), and later hits on warmed keys count
    as ``prewarm_hits``.  Failures never propagate — a plan entry that
    cannot build (missing graph, planner rejection) is recorded in
    :attr:`errors` and skipped; pre-warming is an optimisation, not a
    correctness gate.
    """

    def __init__(
        self,
        service: "AnalyticsService",
        plan: WarmPlan,
        *,
        graphs: Optional[Dict[str, "CSRGraph"]] = None,
        top: int = 0,
    ) -> None:
        self.service = service
        self.plan = plan.top(top) if top else plan
        self._overrides = dict(graphs or {})
        self._thread = threading.Thread(
            target=self._run, name="repro-prewarm", daemon=True
        )
        self._started = False
        self._lock = threading.Lock()
        self._publish: Optional["GraphCatalog"] = None
        self.built = 0
        self.already_warm = 0
        self.skipped = 0
        self.errors: List[str] = []

    def start(self) -> "Prewarmer":
        """Begin warming in the background (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
        self._thread.start()
        return self

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for warming to finish; returns True when it has."""
        with self._lock:
            started = self._started
        if not started:
            return False
        self._thread.join(timeout)
        return not self._thread.is_alive()

    @property
    def done(self) -> bool:
        with self._lock:
            started = self._started
        return started and not self._thread.is_alive()

    def run_inline(self) -> "Prewarmer":
        """Warm synchronously on the calling thread (tests, CLI --prewarm-wait)."""
        with self._lock:
            if self._started:
                raise ServiceError("prewarmer already started in background")
            self._started = True
        self._run()
        return self

    # ------------------------------------------------------------------
    def _run(self) -> None:
        from repro.graph.csr import CSRGraph  # noqa: F401  (typing aid)
        from repro.service.catalog import GraphCatalog

        # Process-backend workers hydrate from the shared disk tier and
        # never see the front-end's memory tier.  Unless the service
        # catalog already writes through to that tier, publish every
        # warmed artifact there via a write-through side catalog — the
        # locked, atomic-rename spill path makes concurrent publishers
        # safe and idempotent.
        catalog = self.service.catalog
        shared = getattr(self.service, "shared_artifact_dir", None)
        if shared is not None and not (
            catalog.write_through and catalog.spill_dir == shared
        ):
            self._publish = GraphCatalog(
                spill_dir=shared, write_through=True, policy=catalog.policy
            )

        graphs = dict(self.service.registered())
        graphs.update(self._overrides)
        try:
            graphs = resolve_plan_graphs(self.plan, overrides=graphs)
        except TigrError as exc:
            with self._lock:
                self.errors.append(f"plan graphs: {exc}")
        for entry in self.plan.entries:
            graph = graphs.get(entry.graph)
            if graph is None:
                with self._lock:
                    self.skipped += 1
                    self.errors.append(
                        f"{entry.graph}/{entry.kind}-k{entry.k}: graph not "
                        f"registered and no usable recipe in the plan"
                    )
                continue
            try:
                self._warm_one(graph, entry)
            except TigrError as exc:
                with self._lock:
                    self.skipped += 1
                    self.errors.append(
                        f"{entry.graph}/{entry.kind}-k{entry.k}: {exc}"
                    )

    def _warm_one(self, graph: "CSRGraph", entry: WarmEntry) -> None:
        from repro.service.planner import plan_query
        from repro.service.workers import (
            prepare_for_algorithm,
            transform_key,
        )

        catalog = self.service.catalog
        prepared = prepare_for_algorithm(catalog, graph, entry.algorithm)
        request = _representative_request(entry, graph)
        plan = plan_query(request, prepared)
        if not plan.caches:
            with self._lock:
                self.skipped += 1
            return
        artifact, origin = catalog.get_or_build_with_origin(
            prepared, plan.transform, plan.degree_bound,
            dumb_weight=plan.dumb_weight,
        )
        key = transform_key(prepared, plan)
        if self._publish is not None:
            self._publish.put(key, artifact)
        catalog.note_prewarm(key, built=origin == "built")
        with self._lock:
            if origin == "built":
                self.built += 1
            else:
                self.already_warm += 1


def _representative_request(entry: WarmEntry, graph: "CSRGraph"):
    from repro.baselines.base import ALGORITHMS
    from repro.service.query import QueryRequest

    # Only the planner sees this request — node 0 stands in for the
    # source on source-rooted analytics, which never affects the plan
    # (or therefore the artifact key).
    sources = (0,) if ALGORITHMS[entry.algorithm].needs_source else ()
    return QueryRequest(
        algorithm=entry.algorithm,
        graph=graph,
        sources=sources,
        transform=entry.transform,
        degree_bound=entry.degree_bound or None,
    )
