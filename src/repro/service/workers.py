"""Process-side execution for the analytics service.

The thread backend shares everything through memory; a process pool
shares *nothing* implicitly, so this module defines exactly what does
cross the boundary and how each side rebuilds the rest:

* **down the pipe** goes a :class:`BatchSpec` — a picklable recipe
  (graph fingerprint + ``.npz`` path, algorithm, transform, K, engine
  options, deduplicated sources, remaining deadline).  Never a live
  :class:`~repro.graph.csr.CSRGraph`, never a transform artifact:
  shipping megabytes of CSR per query would erase the win of leaving
  the GIL behind.
* **in the worker process** lives a private memory-tier
  :class:`~repro.service.catalog.GraphCatalog` whose *disk tier is
  shared*: every worker points at one spill directory, builds are
  written through immediately (file-locked, atomically renamed), and
  content-addressed keys make a sibling's artifact indistinguishable
  from your own.  A worker's cold start is therefore one ``.npz``
  hydration, not a re-transform.  Graphs hydrate the same way from a
  ``graphs/`` directory keyed by fingerprint and are memoised per
  process.
* **back up the pipe** comes a :class:`BatchReply` holding compact
  per-*unique-source* value arrays already projected to original node
  ids — the front-end fans them back out to each request's ticket
  (:func:`~repro.service.batching.fan_out_per_request`), so duplicate
  sources cost one row of IPC, not one per request.

:func:`execute_pipeline` — prepare, plan, degrade, resolve artifact,
run, project — is the *same function the thread backend runs*; the
backends differ only in where it executes and how its inputs arrive.
That is what the parity tests pin: identical values from both
backends, by construction.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.baselines.base import ALGORITHMS, prepare_graph
from repro.core.types import TransformResult
from repro.errors import ServiceError, TigrError
from repro.graph.csr import CSRGraph
from repro.graph.io import load_npz, save_npz
from repro.service.artifacts import ArtifactKey, TransformArtifact
from repro.service.batching import BatchExecution, run_sources_on_target
from repro.service.catalog import GraphCatalog, _spill_write_lock
from repro.service.planner import degrade_for_deadline, plan_query
from repro.service.query import QueryRequest

#: test hook: a worker that sees this source in a spec calls
#: ``os._exit`` — the only way to exercise crash recovery without
#: depending on a real segfault.  Never set outside tests.
CRASH_SOURCE_ENV = "REPRO_SERVICE_CRASH_SOURCE"


# ----------------------------------------------------------------------
# What crosses the IPC boundary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchSpec:
    """A picklable recipe for one coalesced batch.

    Everything a worker process needs to reproduce the thread
    backend's work item, with the graph passed by *reference*
    (fingerprint + file path) rather than by value.  ``remaining_s``
    is the tightest member deadline measured at dispatch — the worker
    applies the same cold-cache degradation rule the thread backend
    does, against its own catalog's view of what is cached.
    """

    graph_fingerprint: str
    graph_path: str
    algorithm: str
    transform: str
    degree_bound: int  # 0 = planner decides
    options: object  # EngineOptions (picklable frozen dataclass)
    sources: Tuple[int, ...]
    remaining_s: float = float("inf")


@dataclass(frozen=True)
class BatchOutcome:
    """What one executed batch produced, backend-agnostic.

    ``per_source`` maps each unique source (or ``-1`` for sourceless
    analytics) to a value array **in original node-id space** — UDT
    projection happens where the artifact lives, once per unique
    source.  ``hydrate_hits`` counts disk-tier loads this batch
    triggered (artifact or prepared-graph ``.npz`` reads), the
    process backend's substitute for shared-memory cache hits.
    """

    per_source: Dict[int, np.ndarray]
    transform: str
    degree_bound: int
    degraded: bool
    cache_hit: bool
    plan_s: float
    transform_s: float
    execute_s: float
    execution: BatchExecution
    hydrate_hits: int = 0


@dataclass(frozen=True)
class BatchReply:
    """Envelope a worker process sends back: an outcome or an error.

    Library errors travel as *messages*, not exception objects — some
    of the typed exceptions take multi-argument constructors that do
    not survive pickling, and the front-end re-raises them as
    :class:`ServiceError` anyway.
    """

    outcome: Optional[BatchOutcome] = None
    error: Optional[str] = None
    pid: int = field(default_factory=os.getpid)

    def nbytes(self) -> int:
        """Approximate reply size on the wire (IPC accounting)."""
        if self.outcome is None:
            return 256
        return 256 + sum(
            values.nbytes for values in self.outcome.per_source.values()
        )


def spec_nbytes(spec: BatchSpec) -> int:
    """Pickled size of a spec (the request half of IPC accounting)."""
    return len(pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL))


# ----------------------------------------------------------------------
# The shared pipeline (both backends run exactly this)
# ----------------------------------------------------------------------
def prepare_for_algorithm(
    catalog: GraphCatalog, graph: CSRGraph, algorithm: str
) -> CSRGraph:
    """Per-algorithm graph preparation, cached through ``catalog``.

    ``prepare_graph`` symmetrises for CC and strips weights for the
    unweighted analytics — O(|E|) work worth amortising across
    requests just like the transforms themselves.  Prepared graphs are
    ``kind="prepared"`` catalog artifacts, so one byte budget governs
    transforms and prepared graphs alike.  An input that needs no
    reshaping is passed through uncached.
    """
    spec = ALGORITHMS[algorithm]
    changes_graph = spec.symmetrize or (
        not spec.weighted and graph.weights is not None
    )
    if not changes_graph:
        return prepare_graph(graph, algorithm)
    key = ArtifactKey.for_prepared(
        graph, symmetrize=spec.symmetrize, weighted=spec.weighted
    )

    def build() -> TransformArtifact:
        start = time.perf_counter()
        prepared = prepare_graph(graph, algorithm)
        return TransformArtifact(
            key=key, payload=prepared,
            build_seconds=time.perf_counter() - start,
        )

    artifact, _ = catalog.get_for_key(key, build)
    return artifact.payload


def transform_key(prepared: CSRGraph, plan) -> ArtifactKey:
    """The catalog key a plan's transform artifact lives under."""
    return ArtifactKey.for_transform(
        prepared, plan.transform, plan.degree_bound, plan.dumb_weight
    )


def execute_pipeline(
    catalog: GraphCatalog,
    graph: CSRGraph,
    *,
    algorithm: str,
    transform: str,
    degree_bound: int,
    options,
    sources: Tuple[int, ...],
    remaining_s: float = float("inf"),
    prepare: Optional[Callable[[CSRGraph, str], CSRGraph]] = None,
) -> BatchOutcome:
    """Plan, resolve, and execute one batch against ``catalog``.

    The backend-independent core of the serving layer: the thread
    backend calls it on the service's own catalog, the process backend
    calls it inside each worker on that worker's catalog.  ``prepare``
    overrides the preparation step (the executor passes its bound
    method so tests can intercept it); the default routes through
    :func:`prepare_for_algorithm`.
    """
    disk_hits_before = catalog.stats.disk_hits

    plan_start = time.perf_counter()
    if prepare is None:
        prepared = prepare_for_algorithm(catalog, graph, algorithm)
    else:
        prepared = prepare(graph, algorithm)
    representative = QueryRequest(
        algorithm=algorithm,
        graph=graph.fingerprint(),
        sources=sources,
        transform=transform,
        degree_bound=degree_bound or None,
        options=options,
    )
    plan = plan_query(representative, prepared)
    if plan.caches:
        plan = degrade_for_deadline(
            plan, prepared, remaining_s,
            artifact_cached=catalog.cached(transform_key(prepared, plan)),
        )
    plan_s = time.perf_counter() - plan_start

    transform_start = time.perf_counter()
    cache_hit = False
    projector: Optional[TransformResult] = None
    if plan.caches:
        artifact, origin = catalog.get_or_build_with_origin(
            prepared, plan.transform, plan.degree_bound,
            dumb_weight=plan.dumb_weight,
        )
        cache_hit = origin != "built"
        target: Union[CSRGraph, object] = artifact.payload
        if isinstance(artifact.payload, TransformResult):
            projector = artifact.payload
            target = artifact.payload.graph
    else:
        target = prepared
    transform_s = time.perf_counter() - transform_start

    execute_start = time.perf_counter()
    per_source, execution = run_sources_on_target(
        algorithm, sources, options, target
    )
    if projector is not None:
        per_source = {
            source: projector.read_values(row)
            for source, row in per_source.items()
        }
    execute_s = time.perf_counter() - execute_start

    return BatchOutcome(
        per_source=per_source,
        transform=plan.transform,
        degree_bound=plan.degree_bound,
        degraded=plan.degraded,
        cache_hit=cache_hit,
        plan_s=plan_s,
        transform_s=transform_s,
        execute_s=execute_s,
        execution=execution,
        hydrate_hits=catalog.stats.disk_hits - disk_hits_before,
    )


# ----------------------------------------------------------------------
# Graph store: how graphs reach worker processes
# ----------------------------------------------------------------------
def graph_store_path(graphs_dir: str, fingerprint: str) -> str:
    return os.path.join(graphs_dir, f"{fingerprint[:32]}.npz")


def export_graph(graph: CSRGraph, graphs_dir: str) -> str:
    """Publish ``graph`` to the shared store; returns its path.

    Content-addressed (fingerprint filename), written once: the write
    goes to a temp file and is renamed into place under the same
    advisory lock the catalog uses for spills, so concurrent services
    sharing a store never tear or duplicate the file.
    """
    path = graph_store_path(graphs_dir, graph.fingerprint())
    if os.path.exists(path):
        return path
    os.makedirs(graphs_dir, exist_ok=True)
    with _spill_write_lock(path):
        if not os.path.exists(path):
            tmp = f"{path}.tmp-{os.getpid()}.npz"
            try:
                save_npz(graph, tmp)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.remove(tmp)
    return path


# ----------------------------------------------------------------------
# Worker-process entry points
# ----------------------------------------------------------------------
#: per-process state, populated by the pool initializer.  Worker
#: processes execute one task at a time, so no locking is needed here.
_WORKER_CATALOG: Optional[GraphCatalog] = None
_WORKER_GRAPHS: Dict[str, CSRGraph] = {}


def worker_init(
    artifacts_dir: str,
    memory_budget_bytes: int,
    catalog_policy: Optional[str] = None,
) -> None:
    """Pool initializer: build this process's catalog over the shared tier.

    ``catalog_policy`` carries the parent catalog's eviction policy
    explicitly (rather than relying on ``$REPRO_CATALOG_POLICY`` env
    inheritance alone), so a service built with ``policy="gdsf"`` in
    code gets GDSF workers too — and since ``build_seconds`` rides in
    every write-through ``.npz``, a worker hydrating the shared tier
    prices artifacts exactly as the parent does.
    """
    global _WORKER_CATALOG
    _WORKER_CATALOG = GraphCatalog(
        memory_budget_bytes,
        spill_dir=artifacts_dir,
        write_through=True,
        policy=catalog_policy,
    )
    _WORKER_GRAPHS.clear()


def worker_ping() -> int:
    """Liveness probe; forces lazy worker start-up and returns the pid."""
    return os.getpid()


def _resolve_worker_graph(spec: BatchSpec) -> Tuple[CSRGraph, int]:
    """The spec's graph, from the per-process memo or the shared store.

    Returns ``(graph, loads)`` where ``loads`` is 1 when this call hit
    the disk (counted as a hydrate in the reply).
    """
    graph = _WORKER_GRAPHS.get(spec.graph_fingerprint)
    if graph is not None:
        return graph, 0
    if not os.path.exists(spec.graph_path):
        raise ServiceError(
            f"graph {spec.graph_fingerprint[:12]} not found in shared "
            f"store at {spec.graph_path}"
        )
    graph = load_npz(spec.graph_path)
    _WORKER_GRAPHS[spec.graph_fingerprint] = graph
    return graph, 1


def run_batch_spec(spec: BatchSpec) -> BatchReply:
    """Execute one spec in a worker process; the pool's task function.

    Library failures are folded into the reply as messages (see
    :class:`BatchReply`); only genuinely unexpected exceptions —
    which, for a process pool, includes the process dying — surface
    through the future.
    """
    crash_on = os.environ.get(CRASH_SOURCE_ENV)
    if crash_on is not None and int(crash_on) in spec.sources:
        os._exit(17)  # test hook: simulate a worker crash
    if _WORKER_CATALOG is None:
        return BatchReply(error="worker process was never initialised")
    try:
        graph, graph_loads = _resolve_worker_graph(spec)
        outcome = execute_pipeline(
            _WORKER_CATALOG,
            graph,
            algorithm=spec.algorithm,
            transform=spec.transform,
            degree_bound=spec.degree_bound,
            options=spec.options,
            sources=spec.sources,
            remaining_s=spec.remaining_s,
        )
        if graph_loads:
            outcome = replace(
                outcome, hydrate_hits=outcome.hydrate_hits + graph_loads
            )
        return BatchReply(outcome=outcome)
    except TigrError as exc:
        return BatchReply(error=str(exc))
    except Exception as exc:  # pragma: no cover - defensive
        return BatchReply(error=f"internal error: {exc!r}")
