"""Query planner: transform choice, degree bound, and degradation.

The planner turns a :class:`~repro.service.query.QueryRequest` into a
concrete :class:`QueryPlan` using the library's existing decision
machinery rather than re-encoding it:

* :mod:`repro.core.applicability` (§3.3) decides whether a physical
  split transform may serve the analytic at all;
* :mod:`repro.core.selection` (§5) supplies the degree bound K when
  the caller does not pin one;
* the ``Tigr-UDT`` engine restrictions (PR's push step and
  level-synchronous BC cannot run on physically transformed graphs —
  see :class:`repro.baselines.tigr.TigrUDTMethod`) bound what "udt"
  requests are accepted.

The planner also owns the *graceful degradation* rule: when the
catalog is cold and the request's remaining deadline is smaller than
the estimated transform build time, plan ``transform="none"`` and run
on the raw CSR — a correct answer late beats a fast answer never.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import applicability, selection
from repro.core.weights import DumbWeight
from repro.errors import ServiceError, SplitSafetyError
from repro.graph.csr import CSRGraph
from repro.service.query import QueryRequest

#: analytics the physical (UDT) path can execute on the push engine.
UDT_EXECUTABLE = ("bfs", "sssp", "sswp", "cc")

#: rough per-element transform construction costs (seconds), used only
#: to decide degradation under tight deadlines.  Calibrated from the
#: Table 7 regeneration on this simulator: UDT walks every high-degree
#: edge list in Python (~1 us/edge); the virtual overlay is a
#: vectorised O(|V|) pass (~50 ns/node + ~2 ns/edge).
UDT_SECONDS_PER_EDGE = 1e-6
VIRTUAL_SECONDS_PER_NODE = 5e-8
VIRTUAL_SECONDS_PER_EDGE = 2e-9


@dataclass(frozen=True)
class QueryPlan:
    """A fully resolved execution recipe for one request."""

    algorithm: str
    #: "none" | "udt" | "virtual" | "virtual+"
    transform: str
    degree_bound: int
    dumb_weight: DumbWeight
    #: engine direction; the serving layer runs the push engine, which
    #: is the direction every analytic here supports on every target.
    direction: str = "push"
    #: why this plan (surfaced in results and logs).
    reason: str = ""
    #: True when a tighter plan was abandoned for deadline reasons.
    degraded: bool = False

    @property
    def caches(self) -> bool:
        """Whether this plan produces a cacheable transform artifact."""
        return self.transform != "none"


def plan_query(request: QueryRequest, graph: CSRGraph) -> QueryPlan:
    """Resolve a request into a plan (no deadline pressure applied)."""
    algorithm = request.algorithm
    transform = request.transform
    if transform == "auto":
        # The paper's default method: virtual with coalesced layout
        # (Tigr-V+) supports all six analytics and transforms in O(|V|).
        return QueryPlan(
            algorithm=algorithm,
            transform="virtual+",
            degree_bound=request.degree_bound or selection.choose_virtual_k(graph),
            dumb_weight=DumbWeight.NONE,
            reason="auto: Tigr-V+ supports every analytic at O(|V|) transform cost",
        )
    if transform == "none":
        return QueryPlan(
            algorithm=algorithm,
            transform="none",
            degree_bound=0,
            dumb_weight=DumbWeight.NONE,
            reason="explicit untransformed run",
        )
    if transform == "udt":
        requirement = applicability.REQUIREMENTS.get(algorithm)
        if requirement is None:
            raise SplitSafetyError(
                algorithm,
                "not classified by the §3.3 applicability table, so no "
                "split-safety proof exists for it",
            )
        if not requirement.split_safe:
            raise SplitSafetyError(algorithm, requirement.justification)
        if algorithm not in UDT_EXECUTABLE:
            raise ServiceError(
                f"udt cannot serve {algorithm}: the push engine does not "
                f"execute it on physically transformed graphs "
                f"(supported: {', '.join(UDT_EXECUTABLE)})"
            )
        return QueryPlan(
            algorithm=algorithm,
            transform="udt",
            degree_bound=request.degree_bound or selection.choose_physical_k(graph),
            dumb_weight=DumbWeight.for_algorithm(algorithm),
            reason=applicability.REQUIREMENTS[algorithm].justification,
        )
    # virtual / virtual+
    return QueryPlan(
        algorithm=algorithm,
        transform=transform,
        degree_bound=request.degree_bound or selection.choose_virtual_k(graph),
        dumb_weight=DumbWeight.NONE,
        reason="explicit virtual overlay",
    )


def estimate_build_seconds(graph: CSRGraph, plan: QueryPlan) -> float:
    """Predicted cold-cache transform construction time for ``plan``."""
    if plan.transform == "none":
        return 0.0
    if plan.transform == "udt":
        return graph.num_edges * UDT_SECONDS_PER_EDGE
    return (
        graph.num_nodes * VIRTUAL_SECONDS_PER_NODE
        + graph.num_edges * VIRTUAL_SECONDS_PER_EDGE
    )


def degrade_for_deadline(
    plan: QueryPlan,
    graph: CSRGraph,
    remaining_s: float,
    *,
    artifact_cached: bool,
    safety_factor: float = 2.0,
) -> QueryPlan:
    """Fall back to the raw CSR when the deadline cannot fund a build.

    Applies only when the artifact is *not* already cached: a warm
    catalog makes the transform free, so the original plan stands.
    ``safety_factor`` pads the estimate — degrading slightly too eagerly
    is cheaper than missing a deadline by the whole build time.
    """
    if artifact_cached or not plan.caches:
        return plan
    estimated = estimate_build_seconds(graph, plan) * safety_factor
    if estimated <= remaining_s:
        return plan
    return replace(
        plan,
        transform="none",
        degree_bound=0,
        dumb_weight=DumbWeight.NONE,
        degraded=True,
        reason=(
            f"degraded: cold cache, ~{estimated:.3f}s transform estimate "
            f"exceeds {remaining_s:.3f}s remaining deadline"
        ),
    )
