"""GraphCatalog: the transform-artifact cache behind the serving layer.

Tigr's transformations are a one-time cost meant to be amortised over
many analytics runs (§6.5, Table 7) — but every pre-existing entry
point of this library rebuilt them per call.  The catalog fixes that:

* **memory tier** — an LRU over :class:`TransformArtifact` entries
  with byte-size accounting against a configurable budget;
* **disk tier (optional)** — evicted artifacts spill to ``.npz``
  files in a directory and are reloaded (and re-promoted) on the next
  miss, still cheaper than re-transforming;
* **single-flight builds** — concurrent requests for the same key
  block on one builder instead of duplicating the transform, which is
  what makes the cache safe under the concurrent executor.

Keys are content-addressed (:class:`ArtifactKey`): the same graph
loaded twice, or regenerated from the same seed, hits the same entry.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Optional

try:  # POSIX advisory locks; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.core.weights import DumbWeight
from repro.errors import ServiceError
from repro.graph.csr import CSRGraph
from repro.service.artifacts import ArtifactKey, TransformArtifact, load_artifact
from repro.service.economics import make_policy


@dataclass
class CatalogStats:
    """Counters the serving metrics report (all monotone except bytes)."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    evictions: int = 0
    spills: int = 0
    builds: int = 0
    #: current bytes held by the memory tier.
    bytes_in_memory: int = 0
    #: transform seconds avoided by hits (memory + disk).
    seconds_saved: float = 0.0
    #: transform seconds actually spent building on misses.
    seconds_building: float = 0.0
    #: artifacts the pre-warmer built before traffic asked for them.
    prewarm_built: int = 0
    #: hits (memory or disk) served from pre-warmed artifacts.
    prewarm_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Memory+disk hits over all lookups (1.0 on an all-warm run)."""
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.disk_hits) / self.lookups

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "spills": self.spills,
            "builds": self.builds,
            "bytes_in_memory": self.bytes_in_memory,
            "hit_rate": self.hit_rate,
            "seconds_saved": self.seconds_saved,
            "seconds_building": self.seconds_building,
            "prewarm_built": self.prewarm_built,
            "prewarm_hits": self.prewarm_hits,
        }


class GraphCatalog:
    """Content-addressed cache of transform artifacts.

    Parameters
    ----------
    memory_budget_bytes:
        Byte budget of the memory tier.  Inserting past the budget
        evicts artifacts in the eviction policy's order.  An artifact
        larger than the whole budget is still served but never
        retained (degenerate one-entry thrash is pointless).
    spill_dir:
        Directory for the disk tier; ``None`` disables spilling, and
        evicted artifacts are simply dropped.
    max_entries:
        Optional cap on entry *count* in the memory tier, applied on
        top of the byte budget (useful in tests; default unlimited).
    write_through:
        Persist every freshly *built* artifact to the disk tier
        immediately instead of only on eviction.  This is what makes
        the disk tier a process-shared cache: a catalog in one worker
        process builds once, and sibling processes pointed at the same
        ``spill_dir`` hydrate the ``.npz`` instead of re-transforming.
        Content-addressed keys make concurrent writers safe (same key
        = same bytes); a file lock plus atomic rename keeps them from
        duplicating work or tearing files.
    policy:
        Eviction policy of the memory tier: ``"lru"`` (recency order,
        the default) or ``"gdsf"`` (Greedy-Dual-Size-Frequency,
        ``priority = clock + frequency × build_seconds / nbytes`` —
        protects small, expensive, frequently hit artifacts; see
        :mod:`repro.service.economics` and docs/cache-economics.md).
        ``None`` reads ``$REPRO_CATALOG_POLICY`` and falls back to
        LRU; process-backend workers receive the parent's choice.
        Policy state is guarded by the catalog lock, and its pricing
        inputs (``build_seconds``, ``nbytes()``) ride inside spilled
        archives, so a spill/hydrate round-trip reprices identically.
    """

    def __init__(
        self,
        memory_budget_bytes: int = 256 * 1024 * 1024,
        *,
        spill_dir: Optional[str] = None,
        max_entries: Optional[int] = None,
        write_through: bool = False,
        policy: Optional[str] = None,
    ) -> None:
        if memory_budget_bytes < 0:
            raise ServiceError(
                f"memory budget must be >= 0, got {memory_budget_bytes}"
            )
        self.memory_budget_bytes = int(memory_budget_bytes)
        self.spill_dir = spill_dir
        self.max_entries = max_entries
        self.write_through = bool(write_through)
        if write_through and spill_dir is None:
            raise ServiceError("write_through needs a spill_dir to write to")
        if spill_dir is not None:
            os.makedirs(spill_dir, exist_ok=True)
        self.stats = CatalogStats()
        #: the active eviction policy object; every callback on it runs
        #: under ``self._lock`` (its state shares the catalog's guard).
        self._policy = make_policy(policy)
        self.policy = self._policy.name
        self._entries: "OrderedDict[ArtifactKey, TransformArtifact]" = OrderedDict()
        self._lock = threading.Lock()
        #: per-key build locks for single-flight construction.
        self._building: Dict[ArtifactKey, threading.Lock] = {}
        #: keys the pre-warmer produced; hits on them count separately.
        self._prewarmed: "set[ArtifactKey]" = set()

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: ArtifactKey) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self):
        """Memory-tier keys in LRU order (oldest first); a snapshot."""
        with self._lock:
            return list(self._entries)

    def peek(self, key: ArtifactKey) -> Optional[TransformArtifact]:
        """Memory-tier lookup without touching recency or counters."""
        with self._lock:
            return self._entries.get(key)

    def cached(self, key: ArtifactKey) -> bool:
        """Whether ``key`` is servable without a build (memory *or* disk).

        A pure probe: no promotion, no counters, no disk load — the
        disk check is an ``os.path.exists``.  The planner uses this to
        decide deadline degradation: an artifact sitting in the shared
        disk tier is nearly free to hydrate, so a tight deadline is no
        reason to abandon the plan.
        """
        with self._lock:
            if key in self._entries:
                return True
        path = self._spill_path(key)
        return path is not None and os.path.exists(path)

    def get_or_build(
        self,
        graph: CSRGraph,
        kind: str,
        degree_bound: int,
        *,
        dumb_weight: DumbWeight = DumbWeight.NONE,
        builder: Optional[Callable[[], TransformArtifact]] = None,
    ) -> TransformArtifact:
        """Return the artifact for ``(graph, kind, K)``, building at most once.

        Lookup order: memory tier (hit), disk tier (disk hit, promoted
        back to memory), then build.  Concurrent callers for the same
        key serialise on a per-key lock so the transform runs exactly
        once; callers for *different* keys do not block each other.
        ``builder`` overrides the default transform construction
        (tests use it to count invocations).
        """
        artifact, _ = self.get_or_build_with_origin(
            graph, kind, degree_bound, dumb_weight=dumb_weight, builder=builder
        )
        return artifact

    def get_or_build_with_origin(
        self,
        graph: CSRGraph,
        kind: str,
        degree_bound: int,
        *,
        dumb_weight: DumbWeight = DumbWeight.NONE,
        builder: Optional[Callable[[], TransformArtifact]] = None,
    ) -> "tuple[TransformArtifact, str]":
        """Like :meth:`get_or_build` but also reports where it came from.

        The second element is ``"memory"``, ``"disk"``, or ``"built"``
        — the serving layer surfaces it as each request's
        ``cache_hit`` flag and in the metrics.  A caller who waited on
        another caller's in-flight build observes ``"memory"``: from
        its perspective the artifact was served, not built.
        """
        key = ArtifactKey.for_transform(graph, kind, degree_bound, dumb_weight)
        return self.get_for_key(
            key, builder or (lambda: self._build(graph, key))
        )

    def get_for_key(
        self,
        key: ArtifactKey,
        builder: Callable[[], TransformArtifact],
    ) -> "tuple[TransformArtifact, str]":
        """Key-addressed single-flight lookup-or-build.

        The primitive behind :meth:`get_or_build_with_origin`, exposed
        for artifact kinds whose key is not a plain transform key —
        prepared graphs (``ArtifactKey.for_prepared``) share the byte
        budget, eviction order, disk tier, and build accounting with
        the transforms through this path.
        """
        found, origin = self._lookup(key)
        if found is not None:
            return found, origin
        build_lock = self._build_lock(key)
        with build_lock:
            # Someone may have finished building while we waited.
            found, origin = self._lookup(key, recount=False)
            if found is not None:
                return found, origin
            artifact = builder()
            with self._lock:
                self.stats.builds += 1
                self.stats.seconds_building += artifact.build_seconds
            self._insert(key, artifact)
            if self.write_through:
                self._spill(key, artifact)
            return artifact, "built"

    def put(self, key: ArtifactKey, artifact: TransformArtifact) -> None:
        """Insert an externally built artifact under ``key``.

        The direct-insert face of the cache for callers that already
        hold a finished artifact (the pre-warmer, tests, offline build
        pipelines): budget enforcement, eviction policy, and
        write-through spill behave exactly as for a built-on-miss
        artifact.  No build is counted — nothing was constructed here.
        """
        self._insert(key, artifact)
        if self.write_through:
            self._spill(key, artifact)

    def note_prewarm(self, key: ArtifactKey, *, built: bool) -> None:
        """Mark ``key`` as pre-warmed (and count a build when fresh).

        Later hits on the key — memory or disk — are counted as
        ``prewarm_hits``, which is how an operator tells a forecast
        that paid off from one that warmed dead weight.
        """
        with self._lock:
            self._prewarmed.add(key)
            if built:
                self.stats.prewarm_built += 1

    def eviction_policy(self):
        """The live policy object (read-only introspection; see tests)."""
        return self._policy

    def _lookup(
        self, key: ArtifactKey, *, recount: bool = True
    ) -> "tuple[Optional[TransformArtifact], str]":
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._policy.record_access(key, entry)
                if recount:
                    self.stats.hits += 1
                    self.stats.seconds_saved += entry.build_seconds
                    if key in self._prewarmed:
                        self.stats.prewarm_hits += 1
                return entry, "memory"
        # Disk tier, outside the memory lock: loads can be slow.
        loaded = self._load_spilled(key)
        if loaded is not None:
            with self._lock:
                if recount:
                    self.stats.misses += 1
                    self.stats.disk_hits += 1
                    self.stats.seconds_saved += loaded.build_seconds
                    if key in self._prewarmed:
                        self.stats.prewarm_hits += 1
            self._insert(key, loaded)
            return loaded, "disk"
        if recount:
            with self._lock:
                self.stats.misses += 1
        return None, "absent"

    def _build(self, graph: CSRGraph, key: ArtifactKey) -> TransformArtifact:
        if key.kind == "prepared":
            raise ServiceError(
                "prepared-graph artifacts have no default builder; pass "
                "one (the preparation recipe lives with the caller)"
            )
        start = time.perf_counter()
        if key.kind == "udt":
            payload = udt_transform(
                graph, key.degree_bound, dumb_weight=DumbWeight(key.dumb_weight)
            )
        else:
            payload = virtual_transform(
                graph, key.degree_bound, coalesced=key.kind == "virtual+"
            )
        return TransformArtifact(
            key=key, payload=payload, build_seconds=time.perf_counter() - start
        )

    def _insert(self, key: ArtifactKey, artifact: TransformArtifact) -> None:
        size = artifact.nbytes()
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                # Same-key replacement: drop the stale entry *before*
                # any size gate, or an over-budget replacement would
                # leave the old build resident (and its bytes counted)
                # while callers hold the new payload.
                self.stats.bytes_in_memory -= old.nbytes()
                self._policy.forget(key)
            if size > self.memory_budget_bytes:
                return  # larger than the whole tier: serve it, don't retain it
            self._entries[key] = artifact
            self.stats.bytes_in_memory += size
            self._policy.record_insert(key, artifact)
            evicted = []
            while self._entries and (
                self.stats.bytes_in_memory > self.memory_budget_bytes
                or (self.max_entries is not None and len(self._entries) > self.max_entries)
            ):
                victim_key = self._policy.select_victim(self._entries)
                victim = self._entries.pop(victim_key)
                self.stats.bytes_in_memory -= victim.nbytes()
                self.stats.evictions += 1
                self._policy.record_evict(victim_key)
                evicted.append((victim_key, victim))
        for victim_key, victim in evicted:
            self._spill(victim_key, victim)

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _spill_path(self, key: ArtifactKey) -> Optional[str]:
        if self.spill_dir is None:
            return None
        return os.path.join(self.spill_dir, key.filename())

    def _spill(self, key: ArtifactKey, artifact: TransformArtifact) -> None:
        path = self._spill_path(key)
        if path is None:
            return
        if not os.path.exists(path):
            # The disk tier may be shared across processes (the
            # executor's process backend points every worker at one
            # directory).  An advisory file lock serialises writers so
            # the same artifact is serialised once, not N times; the
            # re-check under the lock is what makes the "once" true.
            # Readers never take the lock — `save_npz` publishes via
            # atomic rename, so a concurrent load sees either nothing
            # or a complete archive.
            with _spill_write_lock(path):
                if not os.path.exists(path):
                    artifact.save_npz(path)
        with self._lock:
            self.stats.spills += 1

    def hydrate(self, key: ArtifactKey) -> Optional[TransformArtifact]:
        """Load ``key`` from the disk tier into memory, if spilled.

        Public face of the disk tier for process workers warming up:
        returns the promoted artifact (counted as a disk hit) or
        ``None`` when the tier has nothing for the key.
        """
        found, origin = self._lookup(key)
        return found if origin in ("memory", "disk") else None

    def _load_spilled(self, key: ArtifactKey) -> Optional[TransformArtifact]:
        path = self._spill_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            return load_artifact(path)
        except (OSError, KeyError, ValueError):
            # A corrupt spill file is a miss, not an outage.
            return None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear(self, *, drop_spilled: bool = False) -> None:
        """Empty the memory tier (and optionally the disk tier)."""
        with self._lock:
            self._entries.clear()
            self.stats.bytes_in_memory = 0
            self._policy.reset()
        if drop_spilled and self.spill_dir is not None:
            for name in os.listdir(self.spill_dir):
                if name.endswith(".npz"):
                    os.remove(os.path.join(self.spill_dir, name))

    def _build_lock(self, key: ArtifactKey) -> threading.Lock:
        with self._lock:
            lock = self._building.get(key)
            if lock is None:
                lock = self._building[key] = threading.Lock()
            return lock

    def __repr__(self) -> str:
        with self._lock:
            entries = len(self._entries)
            bytes_in_memory = self.stats.bytes_in_memory
            hit_rate = self.stats.hit_rate
        return (
            f"GraphCatalog(entries={entries}, "
            f"bytes={bytes_in_memory}/{self.memory_budget_bytes}, "
            f"hit_rate={hit_rate:.2f})"
        )


@contextmanager
def _spill_write_lock(path: str):
    """Advisory cross-process lock for one spill file's writers.

    Lives beside the spill file as ``<name>.lock`` (the spill file
    itself cannot be locked — it is replaced by rename, which would
    orphan the lock).  Downgrades to a no-op where ``fcntl`` is
    unavailable; the atomic-rename write path keeps that safe, merely
    allowing duplicate serialisation work.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    with open(path + ".lock", "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)
