"""Trace ingestion: record and re-read real request streams.

``python -m repro serve`` originally drove the service from a
synthetic workload only.  This module gives the serving layer a
*request-stream* surface instead: a versioned JSONL trace format, a
:class:`TraceReader` that accepts file/stdin/socket sources, and a
:class:`TraceRecorder` the :class:`~repro.service.executor.
AnalyticsService` wraps around live traffic.  Recorded traces are the
backbone of the deterministic replay layer (:mod:`repro.service.
replay`): every capture doubles as a regression test, because result
*digests* ride along with the requests.

Trace format (one JSON object per line, ``version`` = 1):

``header`` (optional, first line)
    ``{"type": "header", "version": 1, "graphs": {name: entry},
    "note": "..."}`` — ``entry`` describes how to reconstruct each
    referenced graph: ``{"dataset": ..., "scale": ..., "weighted":
    ..., "seed": ...}`` for a Table 3 stand-in, ``{"path": ...}`` for
    an ``.npz`` file, plus an optional ``fingerprint`` that replay
    verifies after loading (guards against dataset drift).

``request``
    ``{"type": "request", "id": N, "algorithm": kind, "graph": ref,
    "sources": [...], "transform": t, "k": K, "timeout_s": deadline,
    "delta_s": inter-arrival}`` — everything needed to rebuild the
    :class:`~repro.service.query.QueryRequest`.  ``delta_s`` is the
    gap since the *previous* request record, so replay can re-pace the
    stream at any speed.

``result``
    ``{"type": "result", "id": N, "digest": "sha256:...", "ok": ...,
    "error": ..., "transform": ..., "degraded": ..., "cache_hit":
    ..., "elapsed_s": ...}`` — the recorded outcome of request ``N``.
    The digest (:func:`result_digest`) covers the value arrays and the
    error text only — *not* plan choices or cache behaviour — so a
    replay on a different backend, or one that degrades differently
    under deadline pressure, still digests equal as long as the
    answers are bitwise identical (the serving layer's core contract).

Malformed lines follow the reader's policy: ``strict`` raises a typed
:class:`~repro.errors.TraceFormatError` with the line number,
``skip`` counts and continues.  A version the reader cannot replay is
always a :class:`~repro.errors.TraceVersionError`, even under
``skip`` — silently dropping every line of an incompatible trace
would report a vacuous zero-mismatch replay.
"""

from __future__ import annotations

import hashlib
import io
import json
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.baselines.base import ALGORITHMS
from repro.errors import TraceFormatError, TraceVersionError
from repro.graph.csr import CSRGraph
from repro.service.query import QueryRequest, QueryResult

#: the trace format version this module writes and replays.
TRACE_VERSION = 1

#: recognised malformed-line policies.
MALFORMED_POLICIES = ("strict", "skip")

#: transform spellings a request line may carry (same set the
#: :class:`QueryRequest` validator accepts).
_TRANSFORMS = ("auto", "none", "udt", "virtual", "virtual+")


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceHeader:
    """The trace's self-description (version + graph recipes)."""

    version: int = TRACE_VERSION
    graphs: Dict[str, dict] = field(default_factory=dict)
    note: str = ""


@dataclass(frozen=True)
class TraceRequest:
    """One recorded request: everything needed to re-submit it."""

    trace_id: int
    algorithm: str
    graph: str
    sources: Tuple[int, ...] = ()
    transform: str = "auto"
    degree_bound: int = 0  # 0 = planner decides
    timeout_s: Optional[float] = None
    #: seconds since the previous request record (re-paced by replay).
    delta_s: float = 0.0
    #: accounting label for quota/priority policy ("" = default tenant).
    tenant: str = ""

    def to_query_request(
        self, graph: Union[str, CSRGraph, None] = None
    ) -> QueryRequest:
        """A fresh :class:`QueryRequest` re-submitting this record.

        ``graph`` overrides the recorded ref (replay passes the
        resolved :class:`CSRGraph` or a registered name); the new
        request gets its own ``request_id`` — the trace id is the
        *caller's* correlation key, tracked outside the request.
        """
        return QueryRequest(
            algorithm=self.algorithm,
            graph=self.graph if graph is None else graph,
            sources=self.sources,
            transform=self.transform,
            degree_bound=self.degree_bound or None,
            timeout_s=self.timeout_s,
            tenant=self.tenant,
        )


@dataclass(frozen=True)
class TraceResult:
    """One recorded outcome, keyed to its request by trace id."""

    trace_id: int
    digest: str
    ok: bool = True
    error: Optional[str] = None
    transform: str = ""
    degraded: bool = False
    cache_hit: bool = False
    elapsed_s: float = 0.0


TraceEvent = Union[TraceHeader, TraceRequest, TraceResult]


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------
def result_digest(result: QueryResult) -> str:
    """Stable content hash of a result's *answers* (hex SHA-256).

    Covers the algorithm, the error text (for failed results), and
    every value array (source key, dtype, shape, raw bytes) in sorted
    source order.  Deliberately excludes plan choices, cache
    behaviour, and timings: replay compares *answers*, and the serving
    layer guarantees those are bitwise identical across backends and
    degradation paths (distances are unique; degraded runs produce the
    same values on the raw CSR).
    """
    digest = hashlib.sha256()
    digest.update(f"result:v1:{result.algorithm}".encode("utf-8"))
    if result.error is not None:
        digest.update(b":error:" + result.error.encode("utf-8"))
    for source in sorted(result.values):
        values = np.ascontiguousarray(result.values[source])
        digest.update(
            f":{source}:{values.dtype.str}:{values.shape}:".encode("utf-8")
        )
        digest.update(values.tobytes())
    return "sha256:" + digest.hexdigest()


# ----------------------------------------------------------------------
# Line-level parse/serialise
# ----------------------------------------------------------------------
def dataset_graph_entry(
    dataset: str,
    *,
    scale: float = 1.0,
    weighted: bool = True,
    seed: Optional[int] = None,
    fingerprint: Optional[str] = None,
) -> dict:
    """A header graph entry reconstructing a Table 3 stand-in."""
    entry: dict = {"dataset": dataset, "scale": scale, "weighted": weighted}
    if seed is not None:
        entry["seed"] = seed
    if fingerprint is not None:
        entry["fingerprint"] = fingerprint
    return entry


def _require(payload: dict, key: str, line: int, source: str):
    if key not in payload:
        raise TraceFormatError(
            f"{payload.get('type', 'record')} line missing required "
            f"field {key!r}",
            line=line,
            source=source,
        )
    return payload[key]


def parse_trace_line(
    text: str, *, line: int = 0, source: str = ""
) -> Optional[TraceEvent]:
    """One JSONL line -> typed event (``None`` for blanks/comments).

    Raises :class:`TraceFormatError` for anything unparseable or
    invalid, :class:`TraceVersionError` for a header declaring a
    version this reader cannot replay.
    """
    text = text.strip()
    if not text or text.startswith("#"):
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            f"not valid JSON ({exc.msg})", line=line, source=source
        ) from exc
    if not isinstance(payload, dict):
        raise TraceFormatError(
            f"expected a JSON object, got {type(payload).__name__}",
            line=line,
            source=source,
        )
    kind = payload.get("type")
    if kind == "header":
        version = payload.get("version")
        if not isinstance(version, int):
            raise TraceFormatError(
                "header carries no integer version", line=line, source=source
            )
        if version != TRACE_VERSION:
            raise TraceVersionError(version, TRACE_VERSION, source=source)
        graphs = payload.get("graphs", {})
        if not isinstance(graphs, dict) or not all(
            isinstance(entry, dict) for entry in graphs.values()
        ):
            raise TraceFormatError(
                "header graphs must map names to entry objects",
                line=line,
                source=source,
            )
        return TraceHeader(
            version=version, graphs=graphs, note=str(payload.get("note", ""))
        )
    if kind == "request":
        return _parse_request(payload, line, source)
    if kind == "result":
        return _parse_result(payload, line, source)
    raise TraceFormatError(
        f"unknown line type {kind!r} (known: header, request, result)",
        line=line,
        source=source,
    )


def parse_request_payload(
    payload: dict,
    *,
    line: int = 0,
    source: str = "",
    default_id: Optional[int] = None,
) -> TraceRequest:
    """An already-decoded JSON object -> validated :class:`TraceRequest`.

    The entry point the HTTP front door (:mod:`repro.service.api`)
    shares with the trace reader: one schema, one validator, whether a
    request line arrives from a JSONL file or a ``POST /v1/query``
    body.  A missing ``"type"`` is tolerated (an HTTP body *is* a
    request); any other type is rejected.  ``default_id`` fills in a
    missing ``"id"`` (HTTP callers need not correlate); without it the
    field stays required, as in a trace file.
    """
    kind = payload.get("type", "request")
    if kind != "request":
        raise TraceFormatError(
            f"expected a request object, got type {kind!r}",
            line=line,
            source=source,
        )
    if default_id is not None and "id" not in payload:
        payload = {**payload, "id": int(default_id)}
    return _parse_request(payload, line, source)


def _parse_request(payload: dict, line: int, source: str) -> TraceRequest:
    algorithm = _require(payload, "algorithm", line, source)
    if algorithm not in ALGORITHMS:
        raise TraceFormatError(
            f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}",
            line=line,
            source=source,
        )
    graph = _require(payload, "graph", line, source)
    if not isinstance(graph, str) or not graph:
        raise TraceFormatError(
            "graph ref must be a non-empty string", line=line, source=source
        )
    raw_sources = payload.get("sources", [])
    try:
        sources = tuple(int(s) for s in raw_sources)
    except (TypeError, ValueError):
        raise TraceFormatError(
            f"sources must be a list of integers, got {raw_sources!r}",
            line=line,
            source=source,
        ) from None
    transform = payload.get("transform", "auto")
    if transform not in _TRANSFORMS:
        raise TraceFormatError(
            f"unknown transform {transform!r}", line=line, source=source
        )
    timeout_s = payload.get("timeout_s")
    if timeout_s is not None and (
        not isinstance(timeout_s, (int, float)) or timeout_s <= 0
    ):
        raise TraceFormatError(
            f"timeout_s must be positive or null, got {timeout_s!r}",
            line=line,
            source=source,
        )
    delta_s = payload.get("delta_s", 0.0)
    if not isinstance(delta_s, (int, float)) or delta_s < 0:
        raise TraceFormatError(
            f"delta_s must be a non-negative number, got {delta_s!r}",
            line=line,
            source=source,
        )
    tenant = payload.get("tenant", "")
    if not isinstance(tenant, str):
        raise TraceFormatError(
            f"tenant must be a string, got {tenant!r}", line=line, source=source
        )
    return TraceRequest(
        trace_id=int(_require(payload, "id", line, source)),
        algorithm=algorithm,
        graph=graph,
        sources=sources,
        transform=transform,
        degree_bound=int(payload.get("k", 0) or 0),
        timeout_s=float(timeout_s) if timeout_s is not None else None,
        delta_s=float(delta_s),
        tenant=tenant,
    )


def _parse_result(payload: dict, line: int, source: str) -> TraceResult:
    digest = _require(payload, "digest", line, source)
    if not isinstance(digest, str) or ":" not in digest:
        raise TraceFormatError(
            f"digest must look like 'sha256:<hex>', got {digest!r}",
            line=line,
            source=source,
        )
    return TraceResult(
        trace_id=int(_require(payload, "id", line, source)),
        digest=digest,
        ok=bool(payload.get("ok", True)),
        error=payload.get("error"),
        transform=str(payload.get("transform", "")),
        degraded=bool(payload.get("degraded", False)),
        cache_hit=bool(payload.get("cache_hit", False)),
        elapsed_s=float(payload.get("elapsed_s", 0.0)),
    )


def _event_payload(event: TraceEvent) -> dict:
    if isinstance(event, TraceHeader):
        payload: dict = {"type": "header", "version": event.version}
        if event.graphs:
            payload["graphs"] = event.graphs
        if event.note:
            payload["note"] = event.note
        return payload
    if isinstance(event, TraceRequest):
        payload = {
            "type": "request",
            "id": event.trace_id,
            "algorithm": event.algorithm,
            "graph": event.graph,
            "sources": list(event.sources),
            "transform": event.transform,
            "k": event.degree_bound,
            "timeout_s": event.timeout_s,
            "delta_s": round(event.delta_s, 6),
        }
        # only stamped when set, so tenant-less traces (including every
        # pre-existing golden trace) round-trip byte-identically
        if event.tenant:
            payload["tenant"] = event.tenant
        return payload
    return {
        "type": "result",
        "id": event.trace_id,
        "digest": event.digest,
        "ok": event.ok,
        "error": event.error,
        "transform": event.transform,
        "degraded": event.degraded,
        "cache_hit": event.cache_hit,
        "elapsed_s": round(event.elapsed_s, 6),
    }


def format_trace_line(event: TraceEvent) -> str:
    """One event -> its JSONL line (no trailing newline)."""
    return json.dumps(_event_payload(event), separators=(", ", ": "))


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
class TraceReader:
    """Iterate the typed events of a JSONL trace.

    ``source`` may be a file path, ``"-"`` (stdin), a
    ``tcp://host:port`` URL (connects and streams until the peer
    closes), or any open text-mode file object.  The reader owns —
    and closes — only what it opened itself.

    ``on_malformed`` selects the policy for lines that fail to parse:
    ``"strict"`` (default) raises the typed error, ``"skip"`` counts
    the line in :attr:`lines_skipped` and continues.  Version
    mismatches raise regardless of policy.

    A header, when present, must be the first event; headerless
    traces are read as the current version.
    """

    def __init__(
        self,
        source: Union[str, io.TextIOBase],
        *,
        on_malformed: str = "strict",
    ) -> None:
        if on_malformed not in MALFORMED_POLICIES:
            raise TraceFormatError(
                f"unknown malformed-line policy {on_malformed!r}; "
                f"known: {', '.join(MALFORMED_POLICIES)}"
            )
        self.on_malformed = on_malformed
        self.header: Optional[TraceHeader] = None
        self.lines_read = 0
        self.lines_skipped = 0
        self._events_seen = 0
        self._owns_stream = False
        self._socket: Optional[socket.socket] = None
        if isinstance(source, str):
            self.name = source
            self._stream = self._open(source)
        else:
            self.name = getattr(source, "name", "<stream>")
            self._stream = source

    def _open(self, source: str):
        if source == "-":
            return sys.stdin
        if source.startswith("tcp://"):
            host, _, port = source[len("tcp://"):].partition(":")
            if not host or not port.isdigit():
                raise TraceFormatError(
                    f"trace socket source must be tcp://host:port, "
                    f"got {source!r}",
                    source=source,
                )
            self._socket = socket.create_connection((host, int(port)))
            self._owns_stream = True
            # Binary mode: the reader decodes per line, so a peer that
            # disconnects mid-record (truncated final line, or a line
            # cut inside a multi-byte UTF-8 sequence) surfaces through
            # the malformed-line policy instead of as a raw
            # UnicodeDecodeError from the stream itself.
            return self._socket.makefile("rb")
        try:
            stream = open(source, "r", encoding="utf-8")
        except OSError as exc:
            raise TraceFormatError(
                f"cannot open trace: {exc}", source=source
            ) from exc
        self._owns_stream = True
        return stream

    # -- iteration -----------------------------------------------------
    def __iter__(self) -> Iterator[TraceEvent]:
        return self.events()

    def _iter_text(self) -> Iterator[str]:
        """Decoded lines, counting ``lines_read`` as they arrive.

        Socket sources stream bytes and decode here, so two
        disconnect artifacts follow the malformed-line policy instead
        of escaping as raw decode errors: a final line with no
        terminating newline (the peer died mid-record — never valid on
        a line-oriented wire, unlike the last line of a file) and a
        line that is not valid UTF-8 (cut inside a multi-byte
        sequence).
        """
        if self._socket is None:
            for text in self._stream:
                self.lines_read += 1
                yield text
            return
        for raw in self._stream:
            self.lines_read += 1
            if not raw.endswith(b"\n"):
                self._malformed(
                    f"truncated final line ({len(raw)} bytes; "
                    f"peer disconnected mid-record)"
                )
                return
            try:
                yield raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                self._malformed(f"line is not valid UTF-8 ({exc.reason})")

    def _malformed(self, reason: str) -> None:
        """Apply the malformed-line policy to a non-parse defect."""
        if self.on_malformed == "strict":
            raise TraceFormatError(
                reason, line=self.lines_read, source=self.name
            )
        self.lines_skipped += 1

    def events(self) -> Iterator[TraceEvent]:
        """Yield every event, applying the malformed-line policy."""
        for text in self._iter_text():
            try:
                event = parse_trace_line(
                    text, line=self.lines_read, source=self.name
                )
            except TraceVersionError:
                raise
            except TraceFormatError:
                if self.on_malformed == "strict":
                    raise
                self.lines_skipped += 1
                continue
            if event is None:
                continue
            if isinstance(event, TraceHeader):
                if self._events_seen:
                    raise TraceFormatError(
                        "header must be the first event of a trace",
                        line=self.lines_read,
                        source=self.name,
                    )
                self.header = event
            self._events_seen += 1
            yield event

    def requests(self) -> Iterator[TraceRequest]:
        """Yield only the request events (headers/results consumed)."""
        for event in self.events():
            if isinstance(event, TraceRequest):
                yield event

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class Trace:
    """A fully loaded trace: header, ordered requests, keyed results."""

    header: TraceHeader
    requests: List[TraceRequest]
    results: Dict[int, TraceResult]
    lines_skipped: int = 0

    @property
    def has_digests(self) -> bool:
        return bool(self.results)


def load_trace(
    source: Union[str, io.TextIOBase], *, on_malformed: str = "strict"
) -> Trace:
    """Read an entire trace into a :class:`Trace` (replay's input)."""
    with TraceReader(source, on_malformed=on_malformed) as reader:
        requests: List[TraceRequest] = []
        results: Dict[int, TraceResult] = {}
        for event in reader:
            if isinstance(event, TraceRequest):
                requests.append(event)
            elif isinstance(event, TraceResult):
                results[event.trace_id] = event
        return Trace(
            header=reader.header or TraceHeader(),
            requests=requests,
            results=results,
            lines_skipped=reader.lines_skipped,
        )


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
class TraceRecorder:
    """Capture live service traffic as a replayable trace.

    Attach one to an :class:`~repro.service.executor.AnalyticsService`
    (``service.attach_recorder(recorder)``) and every submitted
    request is written as a ``request`` line (with its inter-arrival
    delta) the moment it enters the queue, and every resolved ticket
    as a ``result`` line carrying the :func:`result_digest` of its
    answer.  Thread-safe — tickets resolve on dispatcher threads.

    ``sink`` is a file path (created/truncated) or an open text-mode
    file object; lines are flushed as written so a live capture
    survives a crash of the recording process.
    """

    def __init__(
        self,
        sink: Union[str, io.TextIOBase],
        *,
        graphs: Optional[Dict[str, dict]] = None,
        note: str = "",
    ) -> None:
        self._lock = threading.Lock()
        self._owns_stream = isinstance(sink, str)
        self._stream = (
            open(sink, "w", encoding="utf-8") if isinstance(sink, str) else sink
        )
        self._last_request_at: Optional[float] = None
        self._request_started: Dict[int, float] = {}
        self.requests_recorded = 0
        self.results_recorded = 0
        self._write(TraceHeader(graphs=dict(graphs or {}), note=note))

    def _write(self, event: TraceEvent) -> None:
        self._stream.write(format_trace_line(event) + "\n")
        self._stream.flush()

    # -- capture hooks (called by the executor) ------------------------
    def record_request(
        self, request: QueryRequest, *, graph_name: Optional[str] = None
    ) -> None:
        """Append one ``request`` line; measures the arrival delta."""
        now = time.perf_counter()
        if graph_name is None:
            graph_name = (
                request.graph
                if isinstance(request.graph, str)
                else f"fingerprint:{request.graph.fingerprint()[:32]}"
            )
        with self._lock:
            delta = (
                0.0
                if self._last_request_at is None
                else max(0.0, now - self._last_request_at)
            )
            self._last_request_at = now
            self._request_started[request.request_id] = now
            self.requests_recorded += 1
            self._write(
                TraceRequest(
                    trace_id=request.request_id,
                    algorithm=request.algorithm,
                    graph=graph_name,
                    sources=request.sources,
                    transform=request.transform,
                    degree_bound=request.degree_bound or 0,
                    timeout_s=request.timeout_s,
                    delta_s=delta,
                    tenant=request.tenant,
                )
            )

    def record_result(self, request: QueryRequest, result: QueryResult) -> None:
        """Append one ``result`` line with the answer's digest."""
        now = time.perf_counter()
        with self._lock:
            started = self._request_started.pop(request.request_id, now)
            self.results_recorded += 1
            self._write(
                TraceResult(
                    trace_id=request.request_id,
                    digest=result_digest(result),
                    ok=result.ok,
                    error=result.error,
                    transform=result.transform,
                    degraded=result.degraded,
                    cache_hit=result.cache_hit,
                    elapsed_s=max(0.0, now - started),
                )
            )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._owns_stream and not self._stream.closed:
                self._stream.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
