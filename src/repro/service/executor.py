"""AnalyticsService: concurrent, cache-backed query execution.

The service owns a bounded submission queue, a pool of dispatcher
threads, and an execution backend.  The full pipeline per work item
is::

    submit -> [bounded queue] -> plan -> resolve artifact -> execute
                                  |            |
                        degradation on    GraphCatalog
                        tight deadlines   (LRU + spill)

Two backends execute that pipeline (``backend=``, or the
``REPRO_SERVICE_WORKERS`` environment variable):

* ``"threads"`` (default) — the pipeline runs in the dispatcher
  threads against the service's own catalog.  numpy releases the GIL
  often enough for useful overlap, and nothing is serialised or
  copied.
* ``"processes"`` — each dispatcher forwards its batch to a
  ``ProcessPoolExecutor`` worker as a picklable
  :class:`~repro.service.workers.BatchSpec`; workers hydrate graphs
  and artifacts from a shared ``.npz`` disk tier and reply with
  compact per-source arrays (:mod:`repro.service.workers`).  Heavy
  concurrent traffic scales past the GIL at the price of IPC.  A
  crashed or unresponsive worker degrades typed
  (:class:`~repro.errors.WorkerLost`): the batch is retried once in
  the dispatcher thread, and only a second failure reaches callers.

Design points, each of which the tests pin down:

* **backpressure** — the queue is bounded; a non-blocking submit
  against a full queue raises :class:`~repro.errors.ServiceError`
  instead of buffering without limit;
* **batching** — :meth:`submit_batch` coalesces same-graph requests
  into one plan + one artifact resolution + one deduplicated source
  fan-out (see :mod:`repro.service.batching`); a batch crosses the
  process boundary *intact*, so lane-parallel traversals still
  collapse;
* **timeouts** — a request still queued past its deadline fails fast;
  a cold-cache request whose remaining deadline cannot fund the
  transform build degrades to the untransformed CSR (correct answer,
  no amortisable work) rather than failing;
* **cancellation** — a ticket can be cancelled any time before a
  worker claims it; cancellation after claiming is refused (results
  are about to exist);
* **single-flight transforms** — concurrent cold queries for one
  artifact build it once (catalog build locks per process; the shared
  write-through disk tier keeps cross-process duplication to at most
  one build per worker), everyone else waits and then hits.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import multiprocessing
import os
import queue
import shutil
import tempfile
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.errors import (
    ServiceError,
    ServiceOverloadError,
    TigrError,
    UnknownGraphError,
    WorkerLost,
)
from repro.graph.csr import CSRGraph
from repro.service.batching import QueryBatch, fan_out_per_request, group_requests
from repro.service.catalog import GraphCatalog
from repro.service.ingest import TraceRecorder
from repro.service.metrics import QueryRecord, ServiceMetrics
from repro.service.query import QueryRequest, QueryResult, StageTimings
from repro.service.workers import (
    BatchOutcome,
    BatchSpec,
    execute_pipeline,
    export_graph,
    graph_store_path,
    prepare_for_algorithm,
    run_batch_spec,
    spec_nbytes,
    worker_init,
    worker_ping,
)

#: recognised execution backends.
BACKENDS = ("threads", "processes")

#: environment variable naming the default backend (CI runs the
#: service suite under both values; an explicit ``backend=`` wins).
BACKEND_ENV = "REPRO_SERVICE_WORKERS"

#: environment variable naming the multiprocessing start method for
#: the process backend (``fork``/``spawn``/``forkserver``).
MP_CONTEXT_ENV = "REPRO_SERVICE_MP_CONTEXT"

#: extra seconds past the tightest member deadline the front-end
#: waits on a process worker before declaring it lost.
WORKER_GRACE_S = 30.0


def resolve_backend(backend: Optional[str]) -> str:
    """Explicit argument, else ``REPRO_SERVICE_WORKERS``, else threads."""
    value = backend or os.environ.get(BACKEND_ENV) or "threads"
    if value not in BACKENDS:
        raise ServiceError(
            f"unknown worker backend {value!r}; known: {', '.join(BACKENDS)}"
        )
    return value


class QueryTicket:
    """Handle for one submitted request (a minimal future).

    ``result()`` blocks until the worker finishes (or the optional
    wait timeout elapses); ``cancel()`` succeeds only while the
    request is still queued.  ``on_resolve`` is the executor's
    observation hook (trace recording); it runs after the result is
    set and must never raise into the worker loop.

    A ticket is also **awaitable**: ``await ticket`` (or
    :meth:`aresult`) suspends the calling coroutine until a dispatcher
    thread resolves it — no thread blocks per waiter, the resolution
    is handed across with ``loop.call_soon_threadsafe``.  That is the
    bridge the HTTP front door (:mod:`repro.service.api`) is built on:
    one event loop can hold thousands of pending tickets open.
    :meth:`add_done_callback` is the underlying primitive (a callback
    registered after resolution fires immediately, on the caller's
    thread).
    """

    def __init__(
        self,
        request: QueryRequest,
        submitted_at: float,
        on_resolve: Optional[Callable[["QueryTicket", QueryResult], None]] = None,
    ) -> None:
        self.request = request
        self.submitted_at = submitted_at
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result: Optional[QueryResult] = None
        self._cancelled = False
        self._claimed = False
        self._on_resolve = on_resolve
        self._callbacks: List[Callable[["QueryTicket", QueryResult], None]] = []

    @property
    def deadline(self) -> float:
        if self.request.timeout_s is None:
            return float("inf")
        return self.submitted_at + self.request.timeout_s

    def done(self) -> bool:
        return self._event.is_set()

    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    def cancel(self) -> bool:
        """Cancel if still queued; returns whether it took effect."""
        with self._lock:
            if self._claimed or self._event.is_set():
                return False
            self._cancelled = True
        self._resolve(
            QueryResult(
                request_id=self.request.request_id,
                algorithm=self.request.algorithm,
                values={},
                transform="none",
                degree_bound=0,
                error="cancelled",
            )
        )
        return True

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """The finished :class:`QueryResult` (waits for it if needed)."""
        if not self._event.wait(timeout):
            raise ServiceError(
                f"request {self.request.request_id} not finished "
                f"within {timeout}s wait"
            )
        assert self._result is not None
        return self._result

    # -- asyncio side --------------------------------------------------
    def add_done_callback(
        self, fn: Callable[["QueryTicket", QueryResult], None]
    ) -> None:
        """Run ``fn(ticket, result)`` once the result exists.

        Registered before resolution, ``fn`` runs on the dispatcher
        thread that resolves the ticket; registered after, it runs
        immediately on the calling thread.  Exceptions are swallowed —
        observation must never fail serving (same contract as
        ``on_resolve``).
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        self._run_callback(fn, self._result)

    async def aresult(self, timeout: Optional[float] = None) -> QueryResult:
        """Awaitable :meth:`result`: suspends, never blocks a thread.

        Must be called from a running event loop.  ``timeout`` bounds
        the wait the same way :meth:`result`'s does, raising the same
        :class:`ServiceError`.
        """
        if self._event.is_set():
            assert self._result is not None
            return self._result
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[QueryResult]" = loop.create_future()

        def deliver(_ticket: "QueryTicket", result: QueryResult) -> None:
            def set_result() -> None:
                if not future.done():
                    future.set_result(result)

            try:
                loop.call_soon_threadsafe(set_result)
            except RuntimeError:
                pass  # loop already closed; nobody is awaiting

        self.add_done_callback(deliver)
        try:
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            raise ServiceError(
                f"request {self.request.request_id} not finished "
                f"within {timeout}s wait"
            ) from None

    def __await__(self):
        return self.aresult().__await__()

    def _run_callback(
        self, fn: Callable[["QueryTicket", QueryResult], None], result
    ) -> None:
        try:
            fn(self, result)
        except Exception:
            pass  # observation must never fail serving

    # -- worker side ---------------------------------------------------
    def _claim(self) -> bool:
        with self._lock:
            if self._cancelled:
                return False
            self._claimed = True
            return True

    def _resolve(self, result: QueryResult) -> None:
        self._result = result
        # Observe *before* waking waiters: a caller returning from
        # ``result()`` must find the trace line already written.
        if self._on_resolve is not None:
            try:
                self._on_resolve(self, result)
            except Exception:
                # Observation (trace capture) must never fail serving.
                pass
        with self._lock:
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._run_callback(fn, result)


@dataclass
class _WorkItem:
    batch: QueryBatch
    tickets: List[QueryTicket]
    enqueued_at: float = field(default_factory=time.perf_counter)


class _ProcessBackend:
    """Owns the ``ProcessPoolExecutor`` and its crash/timeout recovery.

    Dispatcher threads call :meth:`run` concurrently; submission to a
    ``ProcessPoolExecutor`` is thread-safe, so the only state this
    class guards is the pool handle itself, which is swapped out when
    a broken pool must be replaced.  A lost worker is reported as a
    typed :class:`WorkerLost`; the *executor* decides what degradation
    means (inline retry), keeping policy out of the plumbing.
    """

    def __init__(
        self,
        *,
        workers: int,
        artifacts_dir: str,
        graphs_dir: str,
        memory_budget_bytes: int,
        mp_context: Optional[str],
        metrics: ServiceMetrics,
        catalog_policy: str = "lru",
    ) -> None:
        self.workers = workers
        self.artifacts_dir = artifacts_dir
        self.graphs_dir = graphs_dir
        self.memory_budget_bytes = memory_budget_bytes
        self.metrics = metrics
        self.catalog_policy = catalog_policy
        context = mp_context or os.environ.get(MP_CONTEXT_ENV)
        if context is None:
            # fork reuses the parent's imported interpreter (~ms);
            # spawn boots a fresh one per worker (~s).  The pool is
            # created before any dispatcher thread starts, which keeps
            # the initial fork single-threaded.
            context = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        if context not in multiprocessing.get_all_start_methods():
            raise ServiceError(
                f"multiprocessing start method {context!r} unavailable "
                f"here; known: {multiprocessing.get_all_start_methods()}"
            )
        self.mp_context = context
        os.makedirs(artifacts_dir, exist_ok=True)
        os.makedirs(graphs_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._exported: set = set()
        with self._lock:
            self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = (
                self._make_pool()
            )
        self._warm_up()

    def _make_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context(self.mp_context),
            initializer=worker_init,
            initargs=(
                self.artifacts_dir,
                self.memory_budget_bytes,
                self.catalog_policy,
            ),
        )

    def _warm_up(self) -> None:
        """Start every worker now and fail fast if the pool cannot boot.

        Submitting ``workers`` pings forces the lazy pool to spawn its
        full complement before queries arrive, so the first real batch
        never pays (or half-pays) worker start-up, and a broken
        initializer surfaces here as a typed error instead of failing
        the first unlucky query.
        """
        with self._lock:
            pool = self._pool
        assert pool is not None
        try:
            futures = [pool.submit(worker_ping) for _ in range(self.workers)]
            for future in futures:
                future.result(timeout=120)
        except (BrokenProcessPool, concurrent.futures.TimeoutError) as exc:
            raise ServiceError(
                f"process workers failed to start: {exc!r}"
            ) from exc

    def export(self, graph: CSRGraph) -> str:
        """Publish ``graph`` to the shared store (once per fingerprint)."""
        fingerprint = graph.fingerprint()
        with self._lock:
            known = fingerprint in self._exported
        path = graph_store_path(self.graphs_dir, fingerprint)
        if known and os.path.exists(path):
            return path
        path = export_graph(graph, self.graphs_dir)
        with self._lock:
            self._exported.add(fingerprint)
        return path

    def run(self, spec: BatchSpec, wait_timeout: Optional[float]) -> "BatchOutcome":
        """Execute a spec on some worker; raises :class:`WorkerLost`.

        ``wait_timeout`` bounds how long the dispatcher waits for the
        reply (``None`` waits forever — chosen only when no member of
        the batch carries a deadline).  On a broken pool the pool is
        replaced *before* raising, so the next batch meets a healthy
        backend.
        """
        with self._lock:
            pool = self._pool
        if pool is None:
            raise WorkerLost("backend is shut down", batch_size=len(spec.sources))
        try:
            future = pool.submit(run_batch_spec, spec)
        except RuntimeError as exc:  # broken or concurrently shut down
            self._replace_pool(pool)
            raise WorkerLost(
                f"pool rejected submission: {exc}", batch_size=len(spec.sources)
            ) from exc
        try:
            reply = future.result(wait_timeout)
        except BrokenProcessPool as exc:
            self._replace_pool(pool)
            raise WorkerLost(
                "worker process died mid-batch", batch_size=len(spec.sources)
            ) from exc
        except concurrent.futures.TimeoutError as exc:
            # The worker may be wedged, not dead; the pool cannot
            # cancel a running task, so replace it wholesale.
            future.cancel()
            self._replace_pool(pool)
            raise WorkerLost(
                f"no reply within {wait_timeout:.1f}s wait budget",
                batch_size=len(spec.sources),
            ) from exc
        if reply.error is not None:
            raise ServiceError(reply.error)
        self.metrics.ipc_observed(spec_nbytes(spec) + reply.nbytes())
        assert reply.outcome is not None
        return reply.outcome

    def _replace_pool(self, broken) -> None:
        """Swap in a fresh pool if ``broken`` is still the current one."""
        with self._lock:
            if self._pool is not broken:
                return  # another dispatcher already replaced it
            self._pool = self._make_pool()
        self.metrics.worker_restarted()
        broken.shutdown(wait=False)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class AnalyticsService:
    """The serving layer: graphs in, concurrent analytics out.

    Parameters
    ----------
    catalog:
        Shared transform-artifact cache; a private 256 MiB in-memory
        catalog is created when omitted.  With ``backend="processes"``
        the catalog's ``spill_dir`` (when set) becomes the shared disk
        tier every worker process hydrates from — point it at a
        persistent directory and worker cold starts skip transform
        work entirely.
    workers:
        Worker count: dispatcher threads for the thread backend, and
        additionally process-pool size for the process backend.
    backend:
        ``"threads"`` or ``"processes"``; ``None`` reads the
        ``REPRO_SERVICE_WORKERS`` environment variable and falls back
        to threads.  See the module docstring and
        ``docs/operations.md`` for how to choose.
    queue_size:
        Bound of the submission queue — the backpressure knob.
    default_timeout_s:
        Applied to requests that specify no timeout (``None`` = no
        deadline).
    mp_context:
        Multiprocessing start method for the process backend
        (default: ``fork`` where available, else ``spawn``;
        overridable via ``REPRO_SERVICE_MP_CONTEXT``).
    process_fallback:
        Whether a batch whose worker process is lost is retried once
        in the dispatcher thread (``degraded=True`` on its results)
        instead of failing with the :class:`WorkerLost` message.
        Defaults to on; tests switch it off to observe the typed
        failure.
    recorder:
        Optional :class:`~repro.service.ingest.TraceRecorder` wrapped
        around live traffic from the start: every submitted request is
        written as a trace line (with its inter-arrival delta) and
        every resolved ticket as a result line carrying the answer's
        digest.  Also attachable/detachable at runtime
        (:meth:`attach_recorder` / :meth:`detach_recorder`).
    """

    def __init__(
        self,
        catalog: Optional[GraphCatalog] = None,
        *,
        workers: int = 2,
        backend: Optional[str] = None,
        queue_size: int = 64,
        default_timeout_s: Optional[float] = None,
        mp_context: Optional[str] = None,
        process_fallback: bool = True,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"need at least one worker, got {workers}")
        if queue_size < 1:
            raise ServiceError(f"queue size must be >= 1, got {queue_size}")
        self.catalog = catalog if catalog is not None else GraphCatalog()
        self.backend = resolve_backend(backend)
        self.metrics = ServiceMetrics(
            self.catalog.stats,
            backend=self.backend,
            catalog_policy=self.catalog.policy,
        )
        self.default_timeout_s = default_timeout_s
        self.process_fallback = bool(process_fallback)
        self._recorder = recorder
        self._graphs: Dict[str, CSRGraph] = {}
        self._queue: "queue.Queue[Optional[_WorkItem]]" = self._make_queue(queue_size)
        self._stopped = False
        self._shared_tmp: Optional[str] = None
        self._process: Optional[_ProcessBackend] = None
        if self.backend == "processes":
            # Shared state root: reuse the catalog's disk tier when it
            # has one (workers then hydrate artifacts the front-end or
            # earlier runs already spilled); otherwise a temp dir that
            # lives exactly as long as the service.
            root = self.catalog.spill_dir
            if root is None:
                root = self._shared_tmp = tempfile.mkdtemp(prefix="repro-serve-")
            self._process = _ProcessBackend(
                workers=workers,
                artifacts_dir=root,
                graphs_dir=os.path.join(root, "graphs"),
                memory_budget_bytes=self.catalog.memory_budget_bytes,
                mp_context=mp_context,
                metrics=self.metrics,
                catalog_policy=self.catalog.policy,
            )
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"repro-serve-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    @property
    def workers(self) -> int:
        """Dispatcher-thread count (and process-pool size, if any)."""
        return len(self._workers)

    @property
    def shared_artifact_dir(self) -> Optional[str]:
        """The disk tier process workers hydrate from (None for threads).

        Builds that should benefit the worker pool — the pre-warmer's,
        chiefly — must land here: worker catalogs cannot see the
        front-end's memory tier.
        """
        return self._process.artifacts_dir if self._process is not None else None

    def _make_queue(self, queue_size: int) -> "queue.Queue[Optional[_WorkItem]]":
        """Build the submission queue; the subclass discipline hook.

        The base service is strictly FIFO.  The sharded tier
        (:mod:`repro.service.sharding`) overrides this with a priority
        queue so its routing policy's priority classes order admission
        — everything else about submission and dispatch is shared.
        """
        return queue.Queue(maxsize=queue_size)

    # ------------------------------------------------------------------
    # Graph registry
    # ------------------------------------------------------------------
    def register(self, name: str, graph: CSRGraph) -> str:
        """Register ``graph`` under ``name``; returns its fingerprint."""
        self._graphs[name] = graph
        return graph.fingerprint()

    def registered(self) -> Dict[str, CSRGraph]:
        return dict(self._graphs)

    def _resolve_graph(self, request: QueryRequest) -> CSRGraph:
        if isinstance(request.graph, CSRGraph):
            return request.graph
        graph = self._graphs.get(request.graph)
        if graph is None:
            raise UnknownGraphError(request.graph, registered=self._graphs)
        return graph

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        request: QueryRequest,
        *,
        block: bool = True,
        submit_timeout_s: Optional[float] = None,
    ) -> QueryTicket:
        """Queue one request; returns its ticket.

        With ``block=False`` (or a ``submit_timeout_s`` that elapses)
        a full queue raises :class:`ServiceError` — that is the
        backpressure contract: overload is surfaced to the caller, not
        absorbed into unbounded memory.
        """
        return self.submit_batch(
            [request], block=block, submit_timeout_s=submit_timeout_s
        )[0]

    def submit_batch(
        self,
        requests: List[QueryRequest],
        *,
        block: bool = True,
        submit_timeout_s: Optional[float] = None,
    ) -> List[QueryTicket]:
        """Queue several requests, coalescing compatible ones.

        Same-graph/algorithm/plan requests become one work item with
        deduplicated sources; each still gets its own ticket and its
        own :class:`QueryResult`.  Tickets are returned in request
        order.
        """
        if self._stopped:
            raise ServiceError("service is stopped")
        if not requests:
            return []
        requests = [self._with_default_timeout(r) for r in requests]
        recorder = self._recorder
        if recorder is not None:
            for request in requests:
                recorder.record_request(request)
            self.metrics.trace_observed(requests=len(requests))
        now = time.perf_counter()
        tickets = {
            r.request_id: QueryTicket(r, now, on_resolve=self._ticket_resolved)
            for r in requests
        }
        for batch in group_requests(requests, self._resolve_graph):
            item = _WorkItem(
                batch=batch,
                tickets=[tickets[r.request_id] for r in batch.requests],
            )
            try:
                # the async bridge always calls with block=False (loop-side
                # backpressure retries with asyncio.sleep), so the only
                # blocking mode is the sync path's explicit opt-in
                self._queue.put(  # analyze: ignore[ASYNC001]
                    item, block=block, timeout=submit_timeout_s
                )
            except queue.Full:
                for ticket in item.tickets:
                    ticket.cancel()
                raise ServiceOverloadError(
                    f"submission queue full ({self._queue.maxsize} pending); "
                    f"retry later or raise queue_size"
                ) from None
            self.metrics.queue_depth_changed(self._queue.qsize())
        return [tickets[r.request_id] for r in requests]

    def run(self, request: QueryRequest, *, timeout: Optional[float] = None) -> QueryResult:
        """Submit and wait: the one-call synchronous convenience."""
        return self.submit(request).result(timeout)

    # ------------------------------------------------------------------
    # Trace capture
    # ------------------------------------------------------------------
    def attach_recorder(self, recorder: TraceRecorder) -> None:
        """Capture all traffic from now on as a replayable trace.

        One recorder at a time; attaching replaces any previous one
        (requests already in flight still resolve through the hook, so
        their result lines land in the *new* trace only if their
        request lines did — replay ignores orphaned results).
        """
        self._recorder = recorder

    def detach_recorder(self, recorder: Optional[TraceRecorder] = None) -> None:
        """Stop capturing (``recorder`` given: only if still attached)."""
        if recorder is None or self._recorder is recorder:
            self._recorder = None

    def _ticket_resolved(self, ticket: QueryTicket, result: QueryResult) -> None:
        """Resolution hook: append the result digest to the trace."""
        recorder = self._recorder
        if recorder is None:
            return
        recorder.record_result(ticket.request, result)
        self.metrics.trace_observed(results=1)

    def _with_default_timeout(self, request: QueryRequest) -> QueryRequest:
        if request.timeout_s is not None or self.default_timeout_s is None:
            return request
        return QueryRequest(
            algorithm=request.algorithm,
            graph=request.graph,
            sources=request.sources,
            transform=request.transform,
            degree_bound=request.degree_bound,
            timeout_s=self.default_timeout_s,
            options=request.options,
            tenant=request.tenant,
            request_id=request.request_id,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Wait until every queued work item has been processed.

        The graceful-shutdown half-step the HTTP front door needs:
        stop *admitting* first (close the listener), then ``drain()``
        so in-flight tickets resolve, then :meth:`close`.  Unlike
        :meth:`close` the service still accepts work afterwards.
        Returns ``False`` if ``timeout_s`` elapsed with work still in
        flight (``None`` waits indefinitely).
        """
        deadline = (
            None if timeout_s is None else time.perf_counter() + timeout_s
        )
        # queue.join() with a deadline: wait on the queue's own
        # all-tasks-done condition so "drained" means the dispatcher
        # called task_done, not merely that the queue looks empty.
        with self._queue.all_tasks_done:
            while self._queue.unfinished_tasks:
                remaining = (
                    None if deadline is None
                    else deadline - time.perf_counter()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._queue.all_tasks_done.wait(remaining)
        return True

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers.

        Already-queued work is drained before the workers exit.
        """
        if self._stopped:
            return
        self._stopped = True
        for _ in self._workers:
            self._queue.put(None)
        if wait:
            for thread in self._workers:
                thread.join()
            # Only a waited close tears the backend down: dispatchers
            # are done, so no future can reach the pool or the shared
            # directory afterwards.  A wait=False close leaves both to
            # die with the (daemonised) interpreter.
            if self._process is not None:
                self._process.close()
            if self._shared_tmp is not None:
                shutil.rmtree(self._shared_tmp, ignore_errors=True)

    def __enter__(self) -> "AnalyticsService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker pipeline
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            self.metrics.queue_depth_changed(self._queue.qsize())
            if item is None:
                return
            try:
                self._handle_item(item)
            finally:
                self._queue.task_done()

    def _handle_item(self, item: _WorkItem) -> None:
        dequeued_at = time.perf_counter()
        queue_s = dequeued_at - item.enqueued_at

        live: List[QueryTicket] = []
        for ticket in item.tickets:
            if ticket._claim():
                live.append(ticket)
            else:
                self.metrics.record(
                    QueryRecord(
                        stage_seconds={"queue": queue_s},
                        cache_hit=False, degraded=False, timed_out=False,
                        cancelled=True, failed=False,
                    )
                )
        if not live:
            return

        # A request whose deadline passed while queued fails fast.
        expired = [t for t in live if dequeued_at > t.deadline]
        live = [t for t in live if dequeued_at <= t.deadline]
        for ticket in expired:
            self._fail(
                ticket, "timed out in queue", queue_s=queue_s, timed_out=True
            )
        if not live:
            return

        batch = QueryBatch(
            graph=item.batch.graph,
            algorithm=item.batch.algorithm,
            transform=item.batch.transform,
            degree_bound=item.batch.degree_bound,
            options=item.batch.options,
            requests=[t.request for t in live],
        )
        try:
            self._execute(batch, live, queue_s)
        except TigrError as exc:
            for ticket in live:
                self._fail(ticket, str(exc), queue_s=queue_s)
        except Exception as exc:  # pragma: no cover - defensive
            for ticket in live:
                self._fail(ticket, f"internal error: {exc!r}", queue_s=queue_s)

    def _execute(
        self, batch: QueryBatch, tickets: List[QueryTicket], queue_s: float
    ) -> None:
        remaining_s = min(t.deadline for t in tickets) - time.perf_counter()
        ipc_bytes_before = self.metrics.ipc_bytes_snapshot()
        outcome = self._run_batch(batch, remaining_s)
        ipc_bytes = self.metrics.ipc_bytes_snapshot() - ipc_bytes_before

        per_request = fan_out_per_request(batch.requests, outcome.per_source)
        execution = outcome.execution
        finished_at = time.perf_counter()
        for index, ticket in enumerate(tickets):
            timings = StageTimings(
                queue_s=queue_s, plan_s=outcome.plan_s,
                transform_s=outcome.transform_s, execute_s=outcome.execute_s,
            )
            timed_out = finished_at > ticket.deadline
            ticket._resolve(
                QueryResult(
                    request_id=ticket.request.request_id,
                    algorithm=batch.algorithm,
                    values=per_request[ticket.request.request_id],
                    transform=outcome.transform,
                    degree_bound=outcome.degree_bound,
                    cache_hit=outcome.cache_hit,
                    degraded=outcome.degraded,
                    batched_with=len(tickets) - 1,
                    timings=timings,
                )
            )
            self.metrics.record(
                QueryRecord(
                    stage_seconds={
                        "queue": queue_s, "plan": outcome.plan_s,
                        "transform": outcome.transform_s,
                        "execute": outcome.execute_s,
                        "total": timings.total_s,
                    },
                    cache_hit=outcome.cache_hit,
                    degraded=outcome.degraded,
                    timed_out=timed_out,
                    cancelled=False,
                    failed=False,
                    # batch-level quantities are attributed once per
                    # batch, not once per member, so the aggregate
                    # counters stay interpretable.
                    batched_with=len(tickets) - 1 if index == 0 else 0,
                    sources_deduped=batch.sources_deduped if index == 0 else 0,
                    traversals=execution.traversals if index == 0 else 0,
                    lanes=execution.lanes if index == 0 else 0,
                    traversals_saved=(
                        execution.traversals_saved if index == 0 else 0
                    ),
                    ipc_bytes=ipc_bytes if index == 0 else 0,
                    hydrate_hits=outcome.hydrate_hits if index == 0 else 0,
                    strategy=execution.strategy if index == 0 else "",
                )
            )

    def _run_batch(self, batch: QueryBatch, remaining_s: float) -> BatchOutcome:
        """Execute one coalesced batch; the subclass execution hook.

        Everything around it — claiming, queue-deadline expiry,
        fan-out, ticket resolution, metrics attribution — is shared;
        only *where the pipeline runs* differs between backends.  The
        base implementation is the thread/process choice; the sharded
        router (:class:`repro.service.sharding.ShardedAnalyticsService`)
        overrides it to try the scatter-gather path first and falls
        back here.
        """
        if self._process is not None:
            return self._execute_on_processes(batch, remaining_s)
        return execute_pipeline(
            self.catalog,
            batch.graph,
            algorithm=batch.algorithm,
            transform=batch.transform,
            degree_bound=batch.degree_bound,
            options=batch.options,
            sources=batch.sources,
            remaining_s=remaining_s,
            prepare=self._prepare,
        )

    def _execute_on_processes(
        self, batch: QueryBatch, remaining_s: float
    ) -> BatchOutcome:
        """Ship a batch to the process pool, degrading on worker loss.

        The wait budget is the tightest member deadline plus a grace
        period; with no deadlines in the batch the dispatcher waits
        indefinitely (a crash still surfaces immediately — only a
        silently wedged worker needs the deadline to be detected).  On
        :class:`WorkerLost` the batch is retried once *inline* in this
        dispatcher thread against the front-end catalog — results are
        then correct but ``degraded``, mirroring the deadline
        degradation contract: a slower answer beats none.
        """
        assert self._process is not None
        graph_path = self._process.export(batch.graph)
        spec = BatchSpec(
            graph_fingerprint=batch.graph.fingerprint(),
            graph_path=graph_path,
            algorithm=batch.algorithm,
            transform=batch.transform,
            degree_bound=batch.degree_bound,
            options=batch.options,
            sources=batch.sources,
            remaining_s=remaining_s,
        )
        wait_timeout = (
            None if remaining_s == float("inf")
            else max(remaining_s, 0.0) + WORKER_GRACE_S
        )
        try:
            return self._process.run(spec, wait_timeout)
        except WorkerLost as lost:
            if not self.process_fallback:
                raise
            outcome = execute_pipeline(
                self.catalog,
                batch.graph,
                algorithm=batch.algorithm,
                transform=batch.transform,
                degree_bound=batch.degree_bound,
                options=batch.options,
                sources=batch.sources,
                remaining_s=remaining_s,
                prepare=self._prepare,
            )
            # The answer is correct but arrived the degraded way;
            # surface that exactly like deadline degradation does.
            del lost  # (message already counted via worker_restarts)
            return replace(outcome, degraded=True)

    def _prepare(self, graph: CSRGraph, algorithm: str) -> CSRGraph:
        """Per-algorithm preparation via the front-end catalog.

        Thin bound-method wrapper over
        :func:`~repro.service.workers.prepare_for_algorithm` so tests
        can intercept preparation on this service instance (the
        process backend's workers prepare in their own processes and
        are not affected).
        """
        return prepare_for_algorithm(self.catalog, graph, algorithm)

    def _fail(
        self,
        ticket: QueryTicket,
        message: str,
        *,
        queue_s: float,
        timed_out: bool = False,
    ) -> None:
        ticket._resolve(
            QueryResult(
                request_id=ticket.request.request_id,
                algorithm=ticket.request.algorithm,
                values={},
                transform="none",
                degree_bound=0,
                timings=StageTimings(queue_s=queue_s),
                error=message,
            )
        )
        self.metrics.record(
            QueryRecord(
                stage_seconds={"queue": queue_s, "total": queue_s},
                cache_hit=False, degraded=False, timed_out=timed_out,
                cancelled=False, failed=True,
            )
        )


def default_service(**kwargs) -> AnalyticsService:
    """An :class:`AnalyticsService` with library-default sizing."""
    return AnalyticsService(**kwargs)
