"""AnalyticsService: concurrent, cache-backed query execution.

The service owns a bounded submission queue and a thread pool of
workers.  The full pipeline per work item is::

    submit -> [bounded queue] -> plan -> resolve artifact -> execute
                                  |            |
                        degradation on    GraphCatalog
                        tight deadlines   (LRU + spill)

Design points, each of which the tests pin down:

* **backpressure** — the queue is bounded; a non-blocking submit
  against a full queue raises :class:`~repro.errors.ServiceError`
  instead of buffering without limit;
* **batching** — :meth:`submit_batch` coalesces same-graph requests
  into one plan + one artifact resolution + one deduplicated source
  fan-out (see :mod:`repro.service.batching`);
* **timeouts** — a request still queued past its deadline fails fast;
  a cold-cache request whose remaining deadline cannot fund the
  transform build degrades to the untransformed CSR (correct answer,
  no amortisable work) rather than failing;
* **cancellation** — a ticket can be cancelled any time before a
  worker claims it; cancellation after claiming is refused (results
  are about to exist);
* **single-flight transforms** — concurrent cold queries for one
  artifact build it once (catalog build locks), everyone else waits
  and then hits.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.baselines.base import ALGORITHMS, prepare_graph
from repro.core.types import TransformResult
from repro.errors import ServiceError, TigrError
from repro.graph.csr import CSRGraph
from repro.service.artifacts import ArtifactKey, TransformArtifact
from repro.service.batching import QueryBatch, group_requests, run_batch_on_target
from repro.service.catalog import GraphCatalog
from repro.service.metrics import QueryRecord, ServiceMetrics
from repro.service.planner import degrade_for_deadline, plan_query
from repro.service.query import QueryRequest, QueryResult, StageTimings


class QueryTicket:
    """Handle for one submitted request (a minimal future).

    ``result()`` blocks until the worker finishes (or the optional
    wait timeout elapses); ``cancel()`` succeeds only while the
    request is still queued.
    """

    def __init__(self, request: QueryRequest, submitted_at: float) -> None:
        self.request = request
        self.submitted_at = submitted_at
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result: Optional[QueryResult] = None
        self._cancelled = False
        self._claimed = False

    @property
    def deadline(self) -> float:
        if self.request.timeout_s is None:
            return float("inf")
        return self.submitted_at + self.request.timeout_s

    def done(self) -> bool:
        return self._event.is_set()

    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    def cancel(self) -> bool:
        """Cancel if still queued; returns whether it took effect."""
        with self._lock:
            if self._claimed or self._event.is_set():
                return False
            self._cancelled = True
        self._resolve(
            QueryResult(
                request_id=self.request.request_id,
                algorithm=self.request.algorithm,
                values={},
                transform="none",
                degree_bound=0,
                error="cancelled",
            )
        )
        return True

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """The finished :class:`QueryResult` (waits for it if needed)."""
        if not self._event.wait(timeout):
            raise ServiceError(
                f"request {self.request.request_id} not finished "
                f"within {timeout}s wait"
            )
        assert self._result is not None
        return self._result

    # -- worker side ---------------------------------------------------
    def _claim(self) -> bool:
        with self._lock:
            if self._cancelled:
                return False
            self._claimed = True
            return True

    def _resolve(self, result: QueryResult) -> None:
        self._result = result
        self._event.set()


@dataclass
class _WorkItem:
    batch: QueryBatch
    tickets: List[QueryTicket]
    enqueued_at: float = field(default_factory=time.perf_counter)


class AnalyticsService:
    """The serving layer: graphs in, concurrent analytics out.

    Parameters
    ----------
    catalog:
        Shared transform-artifact cache; a private 256 MiB in-memory
        catalog is created when omitted.
    workers:
        Worker thread count.  The engines are numpy-heavy, so threads
        overlap usefully despite the GIL (a process pool is an open
        roadmap item).
    queue_size:
        Bound of the submission queue — the backpressure knob.
    default_timeout_s:
        Applied to requests that specify no timeout (``None`` = no
        deadline).
    """

    def __init__(
        self,
        catalog: Optional[GraphCatalog] = None,
        *,
        workers: int = 2,
        queue_size: int = 64,
        default_timeout_s: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"need at least one worker, got {workers}")
        if queue_size < 1:
            raise ServiceError(f"queue size must be >= 1, got {queue_size}")
        self.catalog = catalog if catalog is not None else GraphCatalog()
        self.metrics = ServiceMetrics(self.catalog.stats)
        self.default_timeout_s = default_timeout_s
        self._graphs: Dict[str, CSRGraph] = {}
        self._queue: "queue.Queue[Optional[_WorkItem]]" = queue.Queue(maxsize=queue_size)
        self._stopped = False
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"repro-serve-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # Graph registry
    # ------------------------------------------------------------------
    def register(self, name: str, graph: CSRGraph) -> str:
        """Register ``graph`` under ``name``; returns its fingerprint."""
        self._graphs[name] = graph
        return graph.fingerprint()

    def registered(self) -> Dict[str, CSRGraph]:
        return dict(self._graphs)

    def _resolve_graph(self, request: QueryRequest) -> CSRGraph:
        if isinstance(request.graph, CSRGraph):
            return request.graph
        graph = self._graphs.get(request.graph)
        if graph is None:
            raise ServiceError(
                f"unknown graph {request.graph!r}; registered: "
                + (", ".join(sorted(self._graphs)) or "(none)")
            )
        return graph

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        request: QueryRequest,
        *,
        block: bool = True,
        submit_timeout_s: Optional[float] = None,
    ) -> QueryTicket:
        """Queue one request; returns its ticket.

        With ``block=False`` (or a ``submit_timeout_s`` that elapses)
        a full queue raises :class:`ServiceError` — that is the
        backpressure contract: overload is surfaced to the caller, not
        absorbed into unbounded memory.
        """
        return self.submit_batch(
            [request], block=block, submit_timeout_s=submit_timeout_s
        )[0]

    def submit_batch(
        self,
        requests: List[QueryRequest],
        *,
        block: bool = True,
        submit_timeout_s: Optional[float] = None,
    ) -> List[QueryTicket]:
        """Queue several requests, coalescing compatible ones.

        Same-graph/algorithm/plan requests become one work item with
        deduplicated sources; each still gets its own ticket and its
        own :class:`QueryResult`.  Tickets are returned in request
        order.
        """
        if self._stopped:
            raise ServiceError("service is stopped")
        if not requests:
            return []
        requests = [self._with_default_timeout(r) for r in requests]
        now = time.perf_counter()
        tickets = {r.request_id: QueryTicket(r, now) for r in requests}
        for batch in group_requests(requests, self._resolve_graph):
            item = _WorkItem(
                batch=batch,
                tickets=[tickets[r.request_id] for r in batch.requests],
            )
            try:
                self._queue.put(item, block=block, timeout=submit_timeout_s)
            except queue.Full:
                for ticket in item.tickets:
                    ticket.cancel()
                raise ServiceError(
                    f"submission queue full ({self._queue.maxsize} pending); "
                    f"retry later or raise queue_size"
                ) from None
            self.metrics.queue_depth_changed(self._queue.qsize())
        return [tickets[r.request_id] for r in requests]

    def run(self, request: QueryRequest, *, timeout: Optional[float] = None) -> QueryResult:
        """Submit and wait: the one-call synchronous convenience."""
        return self.submit(request).result(timeout)

    def _with_default_timeout(self, request: QueryRequest) -> QueryRequest:
        if request.timeout_s is not None or self.default_timeout_s is None:
            return request
        return QueryRequest(
            algorithm=request.algorithm,
            graph=request.graph,
            sources=request.sources,
            transform=request.transform,
            degree_bound=request.degree_bound,
            timeout_s=self.default_timeout_s,
            options=request.options,
            request_id=request.request_id,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers.

        Already-queued work is drained before the workers exit.
        """
        if self._stopped:
            return
        self._stopped = True
        for _ in self._workers:
            self._queue.put(None)
        if wait:
            for thread in self._workers:
                thread.join()

    def __enter__(self) -> "AnalyticsService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker pipeline
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            self.metrics.queue_depth_changed(self._queue.qsize())
            if item is None:
                return
            try:
                self._process(item)
            finally:
                self._queue.task_done()

    def _process(self, item: _WorkItem) -> None:
        dequeued_at = time.perf_counter()
        queue_s = dequeued_at - item.enqueued_at

        live: List[QueryTicket] = []
        for ticket in item.tickets:
            if ticket._claim():
                live.append(ticket)
            else:
                self.metrics.record(
                    QueryRecord(
                        stage_seconds={"queue": queue_s},
                        cache_hit=False, degraded=False, timed_out=False,
                        cancelled=True, failed=False,
                    )
                )
        if not live:
            return

        # A request whose deadline passed while queued fails fast.
        expired = [t for t in live if dequeued_at > t.deadline]
        live = [t for t in live if dequeued_at <= t.deadline]
        for ticket in expired:
            self._fail(
                ticket, "timed out in queue", queue_s=queue_s, timed_out=True
            )
        if not live:
            return

        batch = QueryBatch(
            graph=item.batch.graph,
            algorithm=item.batch.algorithm,
            transform=item.batch.transform,
            degree_bound=item.batch.degree_bound,
            options=item.batch.options,
            requests=[t.request for t in live],
        )
        try:
            self._execute(batch, live, queue_s)
        except TigrError as exc:
            for ticket in live:
                self._fail(ticket, str(exc), queue_s=queue_s)
        except Exception as exc:  # pragma: no cover - defensive
            for ticket in live:
                self._fail(ticket, f"internal error: {exc!r}", queue_s=queue_s)

    def _execute(
        self, batch: QueryBatch, tickets: List[QueryTicket], queue_s: float
    ) -> None:
        plan_start = time.perf_counter()
        prepared = self._prepare(batch.graph, batch.algorithm)
        representative = batch.requests[0]
        plan = plan_query(representative, prepared)
        if plan.caches:
            cached = (
                self.catalog.peek(
                    _artifact_key(prepared, plan)
                ) is not None
            )
            remaining = min(t.deadline for t in tickets) - time.perf_counter()
            plan = degrade_for_deadline(
                plan, prepared, remaining, artifact_cached=cached
            )
        plan_s = time.perf_counter() - plan_start

        transform_start = time.perf_counter()
        cache_hit = False
        projector: Optional[TransformResult] = None
        if plan.caches:
            artifact, origin = self.catalog.get_or_build_with_origin(
                prepared, plan.transform, plan.degree_bound,
                dumb_weight=plan.dumb_weight,
            )
            cache_hit = origin != "built"
            target: Union[CSRGraph, object] = artifact.payload
            if isinstance(artifact.payload, TransformResult):
                projector = artifact.payload
                target = artifact.payload.graph
        else:
            target = prepared
        transform_s = time.perf_counter() - transform_start

        execute_start = time.perf_counter()
        per_request, execution = run_batch_on_target(batch, target)
        execute_s = time.perf_counter() - execute_start

        finished_at = time.perf_counter()
        for index, ticket in enumerate(tickets):
            values = per_request[ticket.request.request_id]
            if projector is not None:
                values = {
                    source: projector.read_values(row)
                    for source, row in values.items()
                }
            timings = StageTimings(
                queue_s=queue_s, plan_s=plan_s,
                transform_s=transform_s, execute_s=execute_s,
            )
            timed_out = finished_at > ticket.deadline
            ticket._resolve(
                QueryResult(
                    request_id=ticket.request.request_id,
                    algorithm=batch.algorithm,
                    values=values,
                    transform=plan.transform,
                    degree_bound=plan.degree_bound,
                    cache_hit=cache_hit,
                    degraded=plan.degraded,
                    batched_with=len(tickets) - 1,
                    timings=timings,
                )
            )
            self.metrics.record(
                QueryRecord(
                    stage_seconds={
                        "queue": queue_s, "plan": plan_s,
                        "transform": transform_s, "execute": execute_s,
                        "total": timings.total_s,
                    },
                    cache_hit=cache_hit,
                    degraded=plan.degraded,
                    timed_out=timed_out,
                    cancelled=False,
                    failed=False,
                    # batch-level quantities are attributed once per
                    # batch, not once per member, so the aggregate
                    # counters stay interpretable.
                    batched_with=len(tickets) - 1 if index == 0 else 0,
                    sources_deduped=batch.sources_deduped if index == 0 else 0,
                    traversals=execution.traversals if index == 0 else 0,
                    lanes=execution.lanes if index == 0 else 0,
                    traversals_saved=(
                        execution.traversals_saved if index == 0 else 0
                    ),
                )
            )

    def _prepare(self, graph: CSRGraph, algorithm: str) -> CSRGraph:
        """Per-algorithm graph preparation, cached through the catalog.

        ``prepare_graph`` symmetrises for CC and strips weights for the
        unweighted analytics — O(|E|) work worth amortising across
        requests just like the transforms themselves.  Prepared graphs
        live in the :class:`GraphCatalog` as ``kind="prepared"``
        artifacts, so ONE byte budget governs transforms and prepared
        graphs and eviction keeps both tiers bounded (ROADMAP
        "prepared-graph cache bounds").  An input that needs no
        reshaping is passed through uncached.
        """
        spec = ALGORITHMS[algorithm]
        changes_graph = spec.symmetrize or (
            not spec.weighted and graph.weights is not None
        )
        if not changes_graph:
            return prepare_graph(graph, algorithm)
        key = ArtifactKey.for_prepared(
            graph, symmetrize=spec.symmetrize, weighted=spec.weighted
        )

        def build() -> TransformArtifact:
            start = time.perf_counter()
            prepared = prepare_graph(graph, algorithm)
            return TransformArtifact(
                key=key, payload=prepared,
                build_seconds=time.perf_counter() - start,
            )

        artifact, _ = self.catalog.get_for_key(key, build)
        return artifact.payload

    def _fail(
        self,
        ticket: QueryTicket,
        message: str,
        *,
        queue_s: float,
        timed_out: bool = False,
    ) -> None:
        ticket._resolve(
            QueryResult(
                request_id=ticket.request.request_id,
                algorithm=ticket.request.algorithm,
                values={},
                transform="none",
                degree_bound=0,
                timings=StageTimings(queue_s=queue_s),
                error=message,
            )
        )
        self.metrics.record(
            QueryRecord(
                stage_seconds={"queue": queue_s, "total": queue_s},
                cache_hit=False, degraded=False, timed_out=timed_out,
                cancelled=False, failed=True,
            )
        )


def _artifact_key(prepared: CSRGraph, plan) -> "object":
    from repro.service.artifacts import ArtifactKey

    return ArtifactKey.for_transform(
        prepared, plan.transform, plan.degree_bound, plan.dumb_weight
    )


def default_service(**kwargs) -> AnalyticsService:
    """An :class:`AnalyticsService` with library-default sizing."""
    return AnalyticsService(**kwargs)
