"""Routing policy for the sharded serving tier: quotas, priorities, routes.

Mechanism and policy are deliberately separate modules, mirroring the
``routing/`` + ``governance/`` split of multi-tenant serving systems:
:mod:`repro.service.sharding` knows *how* to fan a query across shard
executors and reduce the answers; this module decides *whether and
where* a request runs —

* **tenant token quotas** — each tenant owns a token bucket
  (``rate`` requests/second refill, ``burst`` bucket depth); an empty
  bucket refuses admission with a typed
  :class:`~repro.errors.QuotaExhaustedError` carrying the seconds
  until the next token, which the HTTP tier maps to 429;
* **priority classes** — an integer per tenant (lower runs sooner);
  the sharded service's submission queue is a priority queue ordered
  by these classes, so an interactive tenant's queries overtake a
  batch tenant's backlog instead of waiting behind it;
* **cost-model-aware routing** — ``route="auto"`` consults the
  measured calibration profile (:mod:`repro.engine.costmodel`) to
  decide whether a batch is worth scatter-gathering: a superstep pays
  one dispatch overhead *per shard* plus a gather, so sharding only
  wins once the per-step edge work dominates — small graphs route to
  the plain single-engine path.

Everything here is pure policy: no sockets, no threads, no numpy —
just decisions the mechanism layer asks for.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.errors import QuotaExhaustedError, ServiceError
from repro.service.query import QueryRequest

#: well-known priority classes (lower = served sooner).  Any integer
#: works; these names give operators a shared vocabulary.
PRIORITY_CLASSES: Dict[str, int] = {
    "interactive": 0,
    "default": 10,
    "batch": 20,
}

#: recognised routing modes.
ROUTES = ("sharded", "single", "auto")


@dataclass(frozen=True)
class TenantQuota:
    """Token-bucket admission budget for one tenant.

    ``rate`` tokens/second refill a bucket of depth ``burst``; every
    admitted request spends one token.  The same shape as the HTTP
    middleware's per-client rate limit, but charged at *submission*
    (any entry point: HTTP, trace replay, direct calls), so a tenant
    cannot sidestep its budget by switching transports.
    """

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst <= 0:
            raise ServiceError(
                f"quota rate and burst must be positive, got "
                f"rate={self.rate}, burst={self.burst}"
            )


@dataclass
class RouteDecision:
    """What the policy chose for one batch, and why."""

    route: str  # "sharded" | "single"
    reason: str


class RoutingPolicy:
    """Admission, ordering, and placement decisions for one service.

    Parameters
    ----------
    quotas:
        ``tenant -> TenantQuota``.  Tenants without an entry are
        unmetered (including the default ``""`` tenant), so attaching
        a policy never throttles traffic that predates tenancy.
    priorities:
        ``tenant -> priority class`` (lower runs sooner); tenants
        without an entry get ``default_priority``.
    route:
        ``"sharded"`` always scatter-gathers shardable batches,
        ``"single"`` never does (policy-level kill switch), and
        ``"auto"`` applies the cost model via
        :meth:`min_sharded_edges`.
    min_sharded_edges:
        Explicit edge-count threshold for ``"auto"``; ``None`` derives
        it from the measured calibration profile.
    clock:
        Injectable time source for the token buckets (tests freeze it).
    """

    def __init__(
        self,
        *,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        priorities: Optional[Mapping[str, int]] = None,
        default_priority: int = PRIORITY_CLASSES["default"],
        route: str = "sharded",
        min_sharded_edges: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if route not in ROUTES:
            raise ServiceError(
                f"unknown route {route!r}; known: {', '.join(ROUTES)}"
            )
        self.quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self.priorities: Dict[str, int] = {
            tenant: int(level) for tenant, level in (priorities or {}).items()
        }
        self.default_priority = int(default_priority)
        self.route = route
        self._min_sharded_edges = min_sharded_edges
        self._clock = clock
        self._lock = threading.Lock()
        #: tenant -> (tokens, last refill stamp)
        self._buckets: Dict[str, Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Quotas
    # ------------------------------------------------------------------
    def admit(self, request: QueryRequest) -> None:
        """Charge one token to ``request``'s tenant or refuse it.

        Raises :class:`QuotaExhaustedError` (HTTP 429) when the
        tenant's bucket is empty; unmetered tenants always pass.
        """
        wait_s = self.try_admit(request.tenant)
        if wait_s > 0.0:
            raise QuotaExhaustedError(request.tenant, retry_after_s=wait_s)

    def try_admit(self, tenant: str) -> float:
        """Non-raising admit: 0.0 on success, else seconds to wait."""
        quota = self.quotas.get(tenant)
        if quota is None:
            return 0.0
        now = self._clock()
        with self._lock:
            tokens, stamp = self._buckets.get(tenant, (quota.burst, now))
            tokens = min(quota.burst, tokens + (now - stamp) * quota.rate)
            if tokens >= 1.0:
                self._buckets[tenant] = (tokens - 1.0, now)
                return 0.0
            self._buckets[tenant] = (tokens, now)
            return (1.0 - tokens) / quota.rate

    # ------------------------------------------------------------------
    # Priorities
    # ------------------------------------------------------------------
    def priority_for(self, request: QueryRequest) -> int:
        """The priority class of ``request`` (lower runs sooner)."""
        return self.priorities.get(request.tenant, self.default_priority)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def min_sharded_edges(self, shards: int) -> int:
        """Edge count above which ``"auto"`` routes to the shards.

        Derived from the measured profile when not pinned: a sharded
        superstep pays ~``shards`` extra dispatch overheads
        (``run_overhead_s`` each) to cut scatter work by
        ``1 - 1/shards``, so sharding breaks even near
        ``shards^2 / (shards - 1) * run_overhead_s * scatter_rate``
        edges.
        """
        if self._min_sharded_edges is not None:
            return self._min_sharded_edges
        from repro.engine.costmodel import get_profile

        profile = get_profile()
        rate = profile.scatter_medges_s * 1e6
        if rate <= 0 or shards <= 1:
            return 0
        overhead = shards * shards / max(shards - 1, 1) * profile.run_overhead_s
        return int(overhead * rate)

    def choose_route(
        self, *, shardable: bool, num_edges: int, shards: int
    ) -> RouteDecision:
        """Sharded scatter-gather or the single-engine path for a batch."""
        if not shardable:
            return RouteDecision("single", "algorithm/plan is not shardable")
        if shards < 2:
            return RouteDecision("single", "fewer than two shards configured")
        if self.route == "single":
            return RouteDecision("single", "policy pins the single path")
        if self.route == "sharded":
            return RouteDecision("sharded", "policy pins the sharded path")
        threshold = self.min_sharded_edges(shards)
        if num_edges >= threshold:
            return RouteDecision(
                "sharded",
                f"{num_edges} edges >= break-even {threshold}",
            )
        return RouteDecision(
            "single",
            f"{num_edges} edges < break-even {threshold}",
        )


@dataclass
class ParsedPolicyArgs:
    """CLI-shaped policy knobs (``--quota``/``--priority`` values)."""

    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    priorities: Dict[str, int] = field(default_factory=dict)


def parse_quota_arg(value: str) -> Tuple[str, TenantQuota]:
    """``TENANT=RATE[:BURST]`` -> ``(tenant, TenantQuota)``.

    ``BURST`` defaults to ``max(rate, 1)`` so a plain ``alice=2`` means
    "two requests per second, no extra headroom".
    """
    tenant, sep, spec = value.partition("=")
    if not sep or not tenant or not spec:
        raise ServiceError(
            f"quota must look like TENANT=RATE[:BURST], got {value!r}"
        )
    rate_text, _, burst_text = spec.partition(":")
    try:
        rate = float(rate_text)
        burst = float(burst_text) if burst_text else max(rate, 1.0)
    except ValueError:
        raise ServiceError(
            f"quota must look like TENANT=RATE[:BURST], got {value!r}"
        ) from None
    return tenant, TenantQuota(rate=rate, burst=burst)


def parse_priority_arg(value: str) -> Tuple[str, int]:
    """``TENANT=CLASS`` -> ``(tenant, level)``; CLASS is a name or int."""
    tenant, sep, spec = value.partition("=")
    if not sep or not tenant or not spec:
        raise ServiceError(
            f"priority must look like TENANT=CLASS, got {value!r}"
        )
    if spec in PRIORITY_CLASSES:
        return tenant, PRIORITY_CLASSES[spec]
    try:
        return tenant, int(spec)
    except ValueError:
        raise ServiceError(
            f"priority class must be an integer or one of "
            f"{sorted(PRIORITY_CLASSES)}, got {spec!r}"
        ) from None
