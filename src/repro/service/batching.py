"""Request batching: same-graph queries share one plan and one fan-out.

Serving traffic is dominated by *many sources on few graphs* (every
"distance from me" product query is the same graph with a different
root).  The batcher exploits that shape:

* requests agreeing on (graph content, algorithm, transform, K,
  engine options) coalesce into one :class:`QueryBatch`;
* sources are merged and **deduplicated** across the batch — two
  users asking for the same root pay for one traversal;
* the batch executes through the lane-parallel multi-source helpers
  (:mod:`repro.algorithms.multi_source`) on a *single* resolved
  transform artifact: an entire batch of bfs/sssp sources collapses
  into **one** lane-parallel traversal (per block of
  :data:`~repro.algorithms.multi_source.DEFAULT_MAX_LANES` sources)
  whose distance matrix is sliced back per request;
* sourceless analytics (CC/PR) collapse even harder: the whole batch
  is one engine run whose result every member shares.

:func:`run_batch_on_target` reports how much engine work actually ran
as a :class:`BatchExecution`, which the executor feeds to
``ServiceMetrics`` (``lanes_per_traversal``, ``traversals_saved``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.algorithms._dispatch import resolve_scheduler
from repro.algorithms.multi_source import (
    DEFAULT_MAX_LANES,
    multi_source_distances,
    resolve_multisource_mode,
)
from repro.baselines._run import run_algorithm
from repro.baselines.base import ALGORITHMS
from repro.engine.push import EngineOptions
from repro.errors import ServiceError
from repro.graph.csr import CSRGraph
from repro.service.query import QueryRequest

#: analytics whose fan-out goes through ``multi_source_distances``.
_DISTANCE_FANOUT = {"bfs": False, "sssp": True}  # name -> weighted flag


@dataclass
class QueryBatch:
    """A group of requests served by one plan and one artifact."""

    graph: CSRGraph
    algorithm: str
    transform: str
    degree_bound: int  # 0 = planner decides
    options: EngineOptions
    requests: List[QueryRequest] = field(default_factory=list)

    @property
    def sources(self) -> Tuple[int, ...]:
        """Deduplicated, sorted union of member sources."""
        merged = sorted({s for req in self.requests for s in req.sources})
        return tuple(merged)

    @property
    def tightest_timeout_s(self) -> float:
        """Smallest member timeout (inf when none set); drives degradation."""
        timeouts = [r.timeout_s for r in self.requests if r.timeout_s is not None]
        return min(timeouts) if timeouts else float("inf")

    @property
    def sources_deduped(self) -> int:
        """How many per-source runs dedup avoided."""
        return sum(len(r.sources) for r in self.requests) - len(self.sources)


def group_requests(
    requests: List[QueryRequest],
    resolve_graph: Callable[[QueryRequest], CSRGraph],
) -> List[QueryBatch]:
    """Partition requests into maximal batches, preserving order.

    Grouping is by graph *content* (fingerprint), so the same dataset
    registered under two names, or passed inline twice, still
    coalesces.  Requests differing in transform, K, or engine options
    must not share an artifact and land in separate batches.
    """
    batches: Dict[tuple, QueryBatch] = {}
    for request in requests:
        graph = resolve_graph(request)
        for source in request.sources:
            if not 0 <= source < graph.num_nodes:
                raise ServiceError(
                    f"source {source} out of range for graph with "
                    f"{graph.num_nodes} nodes (request {request.request_id})"
                )
        key = (
            graph.fingerprint(),
            request.algorithm,
            request.transform,
            request.degree_bound or 0,
            request.options,
        )
        batch = batches.get(key)
        if batch is None:
            batch = batches[key] = QueryBatch(
                graph=graph,
                algorithm=request.algorithm,
                transform=request.transform,
                degree_bound=request.degree_bound or 0,
                options=request.options,
            )
        batch.requests.append(request)
    return list(batches.values())


@dataclass(frozen=True)
class BatchExecution:
    """Engine work one batch actually launched.

    ``traversals`` counts engine passes; ``lanes`` the per-source
    lanes those passes carried in total; ``traversals_saved`` the
    scalar passes lane batching avoided (``lanes - traversals`` when
    the lane engine ran, 0 for per-source fallbacks).  ``strategy``
    records what the planner actually chose — ``"lanes"`` or
    ``"loop"`` from the cost model for distance fan-outs,
    ``"per-source"`` / ``"shared"`` for the fixed shapes — so metrics
    reflect the decision, not a guess (the default keeps old pickled
    outcomes loadable across the IPC boundary).
    """

    traversals: int
    lanes: int
    traversals_saved: int
    strategy: str = ""


def run_sources_on_target(
    algorithm: str,
    sources: Tuple[int, ...],
    options: EngineOptions,
    target,
) -> Tuple[Dict[int, np.ndarray], BatchExecution]:
    """Execute one batch's *unique* sources on a resolved engine target.

    The engine-facing half of batch execution, deliberately free of
    :class:`QueryRequest` bookkeeping so the whole unit crosses the
    process-backend IPC boundary as a plain ``(algorithm, sources,
    options)`` spec — the lane-parallel collapse happens wherever the
    engine runs, never per forwarded request.  Returns ``(source ->
    values, execution)`` with values in the *target's* node space;
    sourceless analytics return the shared array under key ``-1``.
    For bfs/sssp all sources ride **one** lane-parallel traversal per
    ``DEFAULT_MAX_LANES``-wide block.
    """
    per_source: Dict[int, np.ndarray] = {}
    if algorithm in _DISTANCE_FANOUT:
        # the planner resolves the cost model's lanes-vs-loop choice
        # *here*, then passes it down explicitly — execution and the
        # accounting below cannot diverge (sources are already the
        # batch's deduplicated union)
        scheduler = resolve_scheduler(target)
        num = len(sources)
        weighted = _DISTANCE_FANOUT[algorithm]
        mode = "loop" if num <= 1 else resolve_multisource_mode(
            algorithm="sssp" if weighted else "bfs",
            num_sources=num,
            num_edges=scheduler.graph.num_edges,
        )
        rows = multi_source_distances(
            scheduler,
            list(sources),
            weighted=weighted,
            options=options,
            mode=mode,
        )
        per_source = {source: rows[i] for i, source in enumerate(sources)}
        traversals = (
            math.ceil(num / DEFAULT_MAX_LANES) if mode == "lanes" else num
        )
        execution = BatchExecution(
            traversals=traversals, lanes=num,
            traversals_saved=num - traversals,
            strategy=mode,
        )
    elif ALGORITHMS[algorithm].needs_source:  # sswp, bc: per-source engine runs
        for source in sources:
            values, _, _ = run_algorithm(target, algorithm, source, options, None)
            per_source[source] = values
        execution = BatchExecution(
            traversals=len(sources), lanes=len(sources), traversals_saved=0,
            strategy="per-source",
        )
    else:  # cc, pr: one run shared by the whole batch
        values, _, _ = run_algorithm(target, algorithm, None, options, None)
        per_source[-1] = values
        execution = BatchExecution(
            traversals=1, lanes=1, traversals_saved=0, strategy="shared",
        )
    return per_source, execution


def fan_out_per_request(
    requests: List[QueryRequest], per_source: Dict[int, np.ndarray]
) -> Dict[int, Dict[int, np.ndarray]]:
    """Map deduplicated per-source arrays back onto each request.

    The front-end half of batch execution: each request receives a
    view of exactly the sources it asked for (or the shared ``-1``
    array for sourceless analytics).  Rows are shared, not copied —
    two requests for one root reference one array.
    """
    out: Dict[int, Dict[int, np.ndarray]] = {}
    for request in requests:
        if request.sources:
            out[request.request_id] = {s: per_source[s] for s in request.sources}
        else:
            out[request.request_id] = {-1: per_source[-1]}
    return out


def run_batch_on_target(
    batch: QueryBatch, target
) -> Tuple[Dict[int, Dict[int, np.ndarray]], BatchExecution]:
    """Execute a batch on a resolved engine target.

    ``target`` is whatever the plan produced: a raw :class:`CSRGraph`,
    a transformed graph, or a :class:`~repro.core.virtual.VirtualGraph`.
    Returns ``(request_id -> (source -> values), execution)``; values
    are in the *target's* node space (the executor projects physically
    transformed results back to original ids).  Each unique source is
    executed exactly once (:func:`run_sources_on_target`) and fanned
    out to every request that asked for it
    (:func:`fan_out_per_request`).
    """
    per_source, execution = run_sources_on_target(
        batch.algorithm, batch.sources, batch.options, target
    )
    return fan_out_per_request(batch.requests, per_source), execution
