"""Analytics serving layer: cache, batch, and multiplex queries.

Everything below :mod:`repro.algorithms` computes one analytic on one
graph, rebuilding its transform each call.  This package is the layer
a production deployment actually talks to (the Gunrock lesson: a GPU
graph library's value is its reusable runtime, not its kernels alone):

* :class:`GraphCatalog` — a content-addressed transform-artifact
  cache (LRU memory tier + optional ``.npz`` disk spill) amortising
  the one-time transformation cost of §6.5/Table 7 across queries;
* :class:`AnalyticsService` — typed :class:`QueryRequest` /
  :class:`QueryResult` envelopes, a planner built on
  :mod:`repro.core.selection` and :mod:`repro.core.applicability`,
  same-graph request batching with source dedup, and a bounded-queue
  dispatcher pool with backpressure, per-request timeouts with
  graceful degradation, and cancellation.  Two execution backends:
  in-process threads (default) or a ``ProcessPoolExecutor`` whose
  workers hydrate graphs and artifacts from a shared disk tier
  (``backend="processes"``, :mod:`repro.service.workers`);
* :class:`ServiceMetrics` — cache hit rate, queue depth, and
  per-stage latency percentiles in the same reporting style as
  :mod:`repro.gpu.metrics`;
* :mod:`repro.service.ingest` / :mod:`repro.service.replay` — a
  versioned JSONL trace format with a :class:`TraceReader`
  (file/stdin/socket sources, strict/skip malformed-line policies)
  and a :class:`TraceRecorder` the service wraps around live traffic;
  :func:`replay_trace` re-submits a recorded stream and verifies
  per-request result digests, making every captured trace a
  deterministic regression test that runs identically under both
  backends (see ``docs/testing.md``);
* :mod:`repro.service.api` — the HTTP/JSON front door (asyncio
  bridge, stdlib HTTP server, auth/rate-limit middleware, and a
  trace-replaying client), speaking the same trace-v1 wire schema;
  see ``docs/http-api.md``.  Imported lazily — ``import
  repro.service.api`` — so non-network users pay nothing for it;
* :mod:`repro.service.sharding` / :mod:`repro.service.routing` —
  the sharded serving tier: destination-partitioned shard executors
  (in-process or remote over ``tcp://``), a scatter-gather router
  whose per-algorithm reduces keep result digests bitwise-identical
  to the single-engine path, and a policy layer with per-tenant
  token quotas, priority classes, and cost-model-aware route
  selection (``serve --shards N``); see ``docs/sharding.md``.

CLI: ``python -m repro query`` (one-shot), ``python -m repro serve``
(synthetic workload driver, trace-driven via ``--trace``/``--record``,
or the network front door via ``--http HOST:PORT``).
"""

from repro.errors import (
    QuotaExhaustedError,
    ServiceOverloadError,
    ShardLost,
    UnknownGraphError,
    WorkerLost,
)
from repro.service.artifacts import ArtifactKey, TransformArtifact, load_artifact
from repro.service.batching import QueryBatch, group_requests
from repro.service.catalog import CatalogStats, GraphCatalog
from repro.service.economics import (
    CATALOG_POLICIES,
    CATALOG_POLICY_ENV,
    EvictionPolicy,
    GdsfPolicy,
    LruPolicy,
    Prewarmer,
    WarmEntry,
    WarmPlan,
    forecast_trace,
    forecast_traces,
    load_plan,
    make_policy,
    resolve_plan_graphs,
    resolve_policy,
    save_plan,
)
from repro.service.executor import (
    BACKENDS,
    AnalyticsService,
    QueryTicket,
    default_service,
    resolve_backend,
)
from repro.service.ingest import (
    TRACE_VERSION,
    Trace,
    TraceHeader,
    TraceReader,
    TraceRecorder,
    TraceRequest,
    TraceResult,
    dataset_graph_entry,
    load_trace,
    parse_request_payload,
    result_digest,
)
from repro.service.metrics import QueryRecord, ServiceMetrics, percentile
from repro.service.planner import QueryPlan, estimate_build_seconds, plan_query
from repro.service.query import QueryRequest, QueryResult, StageTimings
from repro.service.replay import (
    DigestMismatch,
    ReplayReport,
    record_trace,
    replay_trace,
    resolve_trace_graphs,
)
from repro.service.routing import (
    PRIORITY_CLASSES,
    RouteDecision,
    RoutingPolicy,
    TenantQuota,
    parse_priority_arg,
    parse_quota_arg,
)
from repro.service.sharding import (
    LocalShard,
    RemoteShardHandle,
    ShardHostServer,
    ShardSet,
    ShardedAnalyticsService,
    parse_host_port,
)
from repro.service.workers import BatchOutcome, BatchSpec, execute_pipeline

__all__ = [
    "AnalyticsService",
    "ArtifactKey",
    "BACKENDS",
    "BatchOutcome",
    "BatchSpec",
    "CATALOG_POLICIES",
    "CATALOG_POLICY_ENV",
    "CatalogStats",
    "dataset_graph_entry",
    "default_service",
    "DigestMismatch",
    "estimate_build_seconds",
    "EvictionPolicy",
    "execute_pipeline",
    "forecast_trace",
    "forecast_traces",
    "GdsfPolicy",
    "GraphCatalog",
    "group_requests",
    "load_artifact",
    "load_plan",
    "load_trace",
    "LocalShard",
    "LruPolicy",
    "make_policy",
    "parse_host_port",
    "parse_priority_arg",
    "parse_quota_arg",
    "parse_request_payload",
    "percentile",
    "plan_query",
    "Prewarmer",
    "PRIORITY_CLASSES",
    "QueryBatch",
    "QueryPlan",
    "QueryRecord",
    "QueryRequest",
    "QueryResult",
    "QueryTicket",
    "QuotaExhaustedError",
    "record_trace",
    "RemoteShardHandle",
    "replay_trace",
    "ReplayReport",
    "resolve_backend",
    "resolve_plan_graphs",
    "resolve_policy",
    "resolve_trace_graphs",
    "result_digest",
    "RouteDecision",
    "RoutingPolicy",
    "save_plan",
    "ServiceMetrics",
    "ServiceOverloadError",
    "ShardedAnalyticsService",
    "ShardHostServer",
    "ShardLost",
    "ShardSet",
    "StageTimings",
    "TenantQuota",
    "Trace",
    "TRACE_VERSION",
    "TraceHeader",
    "TraceReader",
    "TraceRecorder",
    "TraceRequest",
    "TraceResult",
    "TransformArtifact",
    "UnknownGraphError",
    "WarmEntry",
    "WarmPlan",
    "WorkerLost",
]
