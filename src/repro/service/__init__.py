"""Analytics serving layer: cache, batch, and multiplex queries.

Everything below :mod:`repro.algorithms` computes one analytic on one
graph, rebuilding its transform each call.  This package is the layer
a production deployment actually talks to (the Gunrock lesson: a GPU
graph library's value is its reusable runtime, not its kernels alone):

* :class:`GraphCatalog` — a content-addressed transform-artifact
  cache (LRU memory tier + optional ``.npz`` disk spill) amortising
  the one-time transformation cost of §6.5/Table 7 across queries;
* :class:`AnalyticsService` — typed :class:`QueryRequest` /
  :class:`QueryResult` envelopes, a planner built on
  :mod:`repro.core.selection` and :mod:`repro.core.applicability`,
  same-graph request batching with source dedup, and a bounded-queue
  dispatcher pool with backpressure, per-request timeouts with
  graceful degradation, and cancellation.  Two execution backends:
  in-process threads (default) or a ``ProcessPoolExecutor`` whose
  workers hydrate graphs and artifacts from a shared disk tier
  (``backend="processes"``, :mod:`repro.service.workers`);
* :class:`ServiceMetrics` — cache hit rate, queue depth, and
  per-stage latency percentiles in the same reporting style as
  :mod:`repro.gpu.metrics`.

CLI: ``python -m repro query`` (one-shot) and ``python -m repro
serve`` (synthetic concurrent workload driver).
"""

from repro.errors import WorkerLost
from repro.service.artifacts import ArtifactKey, TransformArtifact, load_artifact
from repro.service.batching import QueryBatch, group_requests
from repro.service.catalog import CatalogStats, GraphCatalog
from repro.service.executor import (
    BACKENDS,
    AnalyticsService,
    QueryTicket,
    default_service,
    resolve_backend,
)
from repro.service.metrics import QueryRecord, ServiceMetrics, percentile
from repro.service.planner import QueryPlan, estimate_build_seconds, plan_query
from repro.service.query import QueryRequest, QueryResult, StageTimings
from repro.service.workers import BatchOutcome, BatchSpec, execute_pipeline

__all__ = [
    "AnalyticsService",
    "ArtifactKey",
    "BACKENDS",
    "BatchOutcome",
    "BatchSpec",
    "CatalogStats",
    "GraphCatalog",
    "QueryBatch",
    "QueryPlan",
    "QueryRecord",
    "QueryRequest",
    "QueryResult",
    "QueryTicket",
    "ServiceMetrics",
    "StageTimings",
    "TransformArtifact",
    "WorkerLost",
    "default_service",
    "estimate_build_seconds",
    "execute_pipeline",
    "group_requests",
    "load_artifact",
    "percentile",
    "plan_query",
    "resolve_backend",
]
