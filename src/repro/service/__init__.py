"""Analytics serving layer: cache, batch, and multiplex queries.

Everything below :mod:`repro.algorithms` computes one analytic on one
graph, rebuilding its transform each call.  This package is the layer
a production deployment actually talks to (the Gunrock lesson: a GPU
graph library's value is its reusable runtime, not its kernels alone):

* :class:`GraphCatalog` — a content-addressed transform-artifact
  cache (LRU memory tier + optional ``.npz`` disk spill) amortising
  the one-time transformation cost of §6.5/Table 7 across queries;
* :class:`AnalyticsService` — typed :class:`QueryRequest` /
  :class:`QueryResult` envelopes, a planner built on
  :mod:`repro.core.selection` and :mod:`repro.core.applicability`,
  same-graph request batching with source dedup, and a bounded-queue
  thread pool with backpressure, per-request timeouts with graceful
  degradation, and cancellation;
* :class:`ServiceMetrics` — cache hit rate, queue depth, and
  per-stage latency percentiles in the same reporting style as
  :mod:`repro.gpu.metrics`.

CLI: ``python -m repro query`` (one-shot) and ``python -m repro
serve`` (synthetic concurrent workload driver).
"""

from repro.service.artifacts import ArtifactKey, TransformArtifact, load_artifact
from repro.service.batching import QueryBatch, group_requests
from repro.service.catalog import CatalogStats, GraphCatalog
from repro.service.executor import AnalyticsService, QueryTicket, default_service
from repro.service.metrics import QueryRecord, ServiceMetrics, percentile
from repro.service.planner import QueryPlan, estimate_build_seconds, plan_query
from repro.service.query import QueryRequest, QueryResult, StageTimings

__all__ = [
    "AnalyticsService",
    "ArtifactKey",
    "CatalogStats",
    "GraphCatalog",
    "QueryBatch",
    "QueryPlan",
    "QueryRecord",
    "QueryRequest",
    "QueryResult",
    "QueryTicket",
    "ServiceMetrics",
    "StageTimings",
    "TransformArtifact",
    "default_service",
    "estimate_build_seconds",
    "group_requests",
    "load_artifact",
    "percentile",
    "plan_query",
]
