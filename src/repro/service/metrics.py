"""Serving metrics: cache hit rate, queue depth, stage latencies.

Mirrors the conventions of :mod:`repro.gpu.metrics`: small dataclass
records accumulated into an aggregate with derived properties and a
flat ``summary()`` dict for table/JSON formatting.  Everything is
thread-safe — workers record concurrently — and cheap enough to stay
on by default (a lock and a list append per stage).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.service.catalog import CatalogStats

#: serving stages with recorded latencies, in pipeline order.
STAGES = ("queue", "plan", "transform", "execute", "total")


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile (0 for an empty sample set).

    Nearest-rank (not interpolated) so reported p95s are latencies
    that actually happened, which is what an operator pages on.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass(frozen=True)
class QueryRecord:
    """Per-query observation the aggregate consumes."""

    stage_seconds: Dict[str, float]
    cache_hit: bool
    degraded: bool
    timed_out: bool
    cancelled: bool
    failed: bool
    batched_with: int = 0
    sources_deduped: int = 0
    #: engine passes the batch launched (attributed once per batch).
    traversals: int = 0
    #: per-source lanes those passes carried in total.
    lanes: int = 0
    #: scalar passes avoided by lane-parallel batching.
    traversals_saved: int = 0
    #: bytes shipped across the process-backend IPC boundary for this
    #: batch (spec down + reply up; 0 on the thread backend).
    ipc_bytes: int = 0
    #: worker-side cache fills served from the shared disk tier
    #: instead of a rebuild (0 on the thread backend).
    hydrate_hits: int = 0
    #: execution strategy the batch planner chose ("lanes", "loop",
    #: "per-source", "shared"; attributed once per batch, "" otherwise).
    strategy: str = ""


class ServiceMetrics:
    """Aggregate serving telemetry for one :class:`AnalyticsService`."""

    def __init__(
        self,
        catalog_stats: Optional[CatalogStats] = None,
        *,
        backend: str = "threads",
        catalog_policy: str = "lru",
    ) -> None:
        self._lock = threading.Lock()
        self._stage_samples: Dict[str, List[float]] = {s: [] for s in STAGES}
        self._catalog_stats = catalog_stats
        self.backend = backend
        #: eviction policy of the attached catalog (labels evictions).
        self.catalog_policy = catalog_policy
        self.queries_total = 0
        self.queries_failed = 0
        self.queries_degraded = 0
        self.queries_timed_out = 0
        self.queries_cancelled = 0
        self.cache_hits = 0
        self.batches_merged = 0
        self.sources_deduped = 0
        self.traversals_total = 0
        self.lanes_total = 0
        self.traversals_saved = 0
        #: batches per planner strategy (the cost model's choices).
        self.strategy_counts: Dict[str, int] = {}
        #: high-water mark of the submission queue.
        self.max_queue_depth = 0
        self._queue_depth = 0
        #: process-backend counters (all zero on the thread backend).
        self.worker_restarts = 0
        self.ipc_bytes = 0
        self.hydrate_hits = 0
        #: HTTP front-door counters (all zero without an attached
        #: :class:`~repro.service.api.server.ApiServer`).
        self.http_requests = 0
        self.http_2xx = 0
        self.http_4xx = 0
        self.http_5xx = 0
        self.http_rate_limited = 0
        self.http_bytes_sent = 0
        self._http_seconds: List[float] = []
        #: trace-capture counters (zero unless a recorder is attached).
        self.trace_requests = 0
        self.trace_results = 0
        #: replay verification counters (zero outside replay runs).
        self.replay_digests_checked = 0
        self.replay_digest_mismatches = 0
        #: sharded-tier counters (all zero on unsharded services).
        self.shards = 0
        self.sharded_batches = 0
        self.shard_supersteps = 0
        self.shard_fallbacks = 0
        self.shard_exchange_bytes = 0
        #: supersteps executed per shard id (the shard tag).
        self.shard_steps: Dict[int, int] = {}
        #: routing-policy counters (zero without a policy attached).
        self.quota_rejected = 0

    # ------------------------------------------------------------------
    # Recording (called by the executor)
    # ------------------------------------------------------------------
    def record(self, record: QueryRecord) -> None:
        with self._lock:
            self.queries_total += 1
            self.queries_failed += int(record.failed)
            self.queries_degraded += int(record.degraded)
            self.queries_timed_out += int(record.timed_out)
            self.queries_cancelled += int(record.cancelled)
            self.cache_hits += int(record.cache_hit)
            self.batches_merged += record.batched_with
            self.sources_deduped += record.sources_deduped
            self.traversals_total += record.traversals
            self.lanes_total += record.lanes
            self.traversals_saved += record.traversals_saved
            self.hydrate_hits += record.hydrate_hits
            if record.strategy:
                self.strategy_counts[record.strategy] = (
                    self.strategy_counts.get(record.strategy, 0) + 1
                )
            for stage, seconds in record.stage_seconds.items():
                if stage in self._stage_samples:
                    self._stage_samples[stage].append(seconds)

    def queue_depth_changed(self, depth: int) -> None:
        with self._lock:
            self._queue_depth = depth
            self.max_queue_depth = max(self.max_queue_depth, depth)

    def worker_restarted(self) -> None:
        """A pool worker died and the pool was replaced."""
        with self._lock:
            self.worker_restarts += 1

    def ipc_observed(self, nbytes: int) -> None:
        """Account bytes crossing the process-backend IPC boundary."""
        with self._lock:
            self.ipc_bytes += int(nbytes)

    def ipc_bytes_snapshot(self) -> int:
        """Current IPC byte total (for per-batch deltas)."""
        with self._lock:
            return self.ipc_bytes

    def http_observed(
        self, status: int, seconds: float, *, bytes_sent: int = 0
    ) -> None:
        """Account one served HTTP request (any route, any status)."""
        with self._lock:
            self.http_requests += 1
            if 200 <= status < 300:
                self.http_2xx += 1
            elif 400 <= status < 500:
                self.http_4xx += 1
            elif status >= 500:
                self.http_5xx += 1
            self.http_bytes_sent += int(bytes_sent)
            self._http_seconds.append(seconds)

    def http_rate_limit_rejected(self) -> None:
        """A request bounced off the token-bucket rate limiter."""
        with self._lock:
            self.http_rate_limited += 1

    def http_latency_percentile(self, fraction: float) -> float:
        """Server-side HTTP request latency percentile (seconds)."""
        with self._lock:
            return percentile(self._http_seconds, fraction)

    def trace_observed(self, *, requests: int = 0, results: int = 0) -> None:
        """Account trace-capture activity (attached recorder)."""
        with self._lock:
            self.trace_requests += int(requests)
            self.trace_results += int(results)

    def replay_observed(self, *, checked: int = 0, mismatched: int = 0) -> None:
        """Account replay digest verification against this service."""
        with self._lock:
            self.replay_digests_checked += int(checked)
            self.replay_digest_mismatches += int(mismatched)

    def sharded_observed(
        self,
        *,
        supersteps: int = 0,
        exchange_bytes: int = 0,
        per_shard_steps: Optional[Dict[int, int]] = None,
    ) -> None:
        """Account one batch executed through the scatter-gather router."""
        with self._lock:
            self.sharded_batches += 1
            self.shard_supersteps += int(supersteps)
            self.shard_exchange_bytes += int(exchange_bytes)
            for shard, steps in (per_shard_steps or {}).items():
                self.shard_steps[int(shard)] = (
                    self.shard_steps.get(int(shard), 0) + int(steps)
                )

    def shards_configured(self, shards: int) -> None:
        """Record the sharded tier's topology (called once at startup)."""
        with self._lock:
            self.shards = int(shards)

    def shard_fallback_observed(self) -> None:
        """Account one :class:`ShardLost` degradation to the single path."""
        with self._lock:
            self.shard_fallbacks += 1

    def quota_rejected_observed(self) -> None:
        """Account one tenant-quota admission refusal."""
        with self._lock:
            self.quota_rejected += 1

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently queued (a gauge, not a counter)."""
        with self._lock:
            return self._queue_depth

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of served queries whose artifact was already cached."""
        with self._lock:
            if self.queries_total == 0:
                return 0.0
            return self.cache_hits / self.queries_total

    def evictions_by_policy(self) -> Dict[str, int]:
        """Catalog evictions attributed to the active eviction policy.

        One catalog runs one policy, so the dict has one entry — keyed
        by policy name so dashboards comparing deployments (or the
        cache-policy bench sweeping both) aggregate without relabeling.
        Empty when no catalog stats are attached.
        """
        if self._catalog_stats is None:
            return {}
        return {self.catalog_policy: self._catalog_stats.evictions}

    def stage_percentile(self, stage: str, fraction: float) -> float:
        """Latency percentile (seconds) of one serving stage."""
        with self._lock:
            return percentile(self._stage_samples[stage], fraction)

    def latency_percentiles(
        self, fractions: tuple = (0.5, 0.95, 0.99)
    ) -> Dict[str, Dict[str, float]]:
        """``stage -> {"p50": s, ...}`` for all recorded stages."""
        with self._lock:
            return {
                stage: {
                    f"p{int(f * 100)}": percentile(samples, f) for f in fractions
                }
                for stage, samples in self._stage_samples.items()
            }

    def summary(self) -> Dict[str, float]:
        """Flat dict for table formatting, like ``RunMetrics.summary``.

        Snapshots every counter under one lock acquisition so the
        reported fields are mutually consistent even while workers
        record concurrently.
        """
        with self._lock:
            out: Dict[str, float] = {
                "queries_total": self.queries_total,
                "queries_failed": self.queries_failed,
                "queries_degraded": self.queries_degraded,
                "queries_timed_out": self.queries_timed_out,
                "queries_cancelled": self.queries_cancelled,
                "cache_hit_rate": (
                    self.cache_hits / self.queries_total
                    if self.queries_total else 0.0
                ),
                "batches_merged": self.batches_merged,
                "sources_deduped": self.sources_deduped,
                # the batching win: mean lane occupancy per engine
                # pass, and how many scalar passes lanes replaced.
                "lanes_per_traversal": (
                    self.lanes_total / self.traversals_total
                    if self.traversals_total else 0.0
                ),
                "traversals_saved": self.traversals_saved,
                # batches per cost-model strategy choice (distance
                # fan-outs report "lanes"/"loop"; fixed shapes report
                # "per-source"/"shared").
                "strategy_lanes": self.strategy_counts.get("lanes", 0),
                "strategy_loop": self.strategy_counts.get("loop", 0),
                "strategy_per_source": self.strategy_counts.get(
                    "per-source", 0
                ),
                "strategy_shared": self.strategy_counts.get("shared", 0),
                "queue_depth": self._queue_depth,
                "max_queue_depth": self.max_queue_depth,
                # process-backend telemetry; identically zero when
                # ``backend == "threads"`` (nothing crosses IPC).
                "worker_restarts": self.worker_restarts,
                "ipc_bytes": self.ipc_bytes,
                "hydrate_hits": self.hydrate_hits,
                # HTTP front-door telemetry; identically zero when no
                # ApiServer fronts this service.
                "http_requests": self.http_requests,
                "http_2xx": self.http_2xx,
                "http_4xx": self.http_4xx,
                "http_5xx": self.http_5xx,
                "http_rate_limited": self.http_rate_limited,
                "http_bytes_sent": self.http_bytes_sent,
                "http_p50_ms": percentile(self._http_seconds, 0.5) * 1e3,
                "http_p95_ms": percentile(self._http_seconds, 0.95) * 1e3,
                # trace/replay telemetry; zero unless a recorder is
                # attached or a replay verified against this service.
                "trace_requests": self.trace_requests,
                "trace_results": self.trace_results,
                "replay_digests_checked": self.replay_digests_checked,
                "replay_digest_mismatches": self.replay_digest_mismatches,
                # sharded-tier telemetry; identically zero unless a
                # ShardedAnalyticsService owns these metrics.
                "shards": self.shards,
                "sharded_batches": self.sharded_batches,
                "shard_supersteps": self.shard_supersteps,
                "shard_fallbacks": self.shard_fallbacks,
                "shard_exchange_bytes": self.shard_exchange_bytes,
                "quota_rejected": self.quota_rejected,
            }
            for shard in sorted(self.shard_steps):
                out[f"shard{shard}_steps"] = self.shard_steps[shard]
            percentiles = {
                stage: {
                    f"p{int(f * 100)}": percentile(samples, f)
                    for f in (0.5, 0.95)
                }
                for stage, samples in self._stage_samples.items()
            }
        for stage, values in percentiles.items():
            for name, seconds in values.items():
                out[f"{stage}_{name}_ms"] = seconds * 1e3
        if self._catalog_stats is not None:
            for key, value in self._catalog_stats.as_dict().items():
                out[f"catalog_{key}"] = value
            # pre-warm and policy telemetry at top level too: these are
            # the knobs docs/cache-economics.md tells operators to watch.
            out["prewarm_built"] = self._catalog_stats.prewarm_built
            out["prewarm_hits"] = self._catalog_stats.prewarm_hits
            for policy, evictions in self.evictions_by_policy().items():
                out[f"evictions_{policy}"] = evictions
        return out
