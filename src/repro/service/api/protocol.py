"""The wire schema: trace-v1 request/result lines over HTTP.

The front door deliberately invents no second serialisation.  A
``POST /v1/query`` body is exactly a trace ``request`` line
(:mod:`repro.service.ingest`, minus the mandatory ``id``); a
``POST /v1/batch`` body is the request lines of a trace, NDJSON; and
every response line is a trace ``result`` line — digest and all.
Consequences that the tests and the ``http-smoke`` CI job pin down:

* ``tools/loadgen.py`` replays any recorded trace over HTTP with no
  translation, and diffs the returned ``digest`` fields against the
  recorded ones — end-to-end parity gating through the network edge;
* traffic captured by an attached recorder *behind* the HTTP server
  replays bit-identically in-process, because both sides of the wire
  already speak the trace schema.

Typed service errors map onto machine-readable HTTP error bodies::

    {"error": {"type": "unknown_graph", "message": "...", "status": 404}}

The mapping (:func:`error_response`) leans on the exception hierarchy
in :mod:`repro.errors` — the planner and executor already raise typed
errors, the API tier only translates.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import (
    QuotaExhaustedError,
    ServiceError,
    ServiceOverloadError,
    SplitSafetyError,
    TigrError,
    TraceFormatError,
    UnknownGraphError,
    WorkerLost,
)
from repro.service.api.http import BadRequest, Response
from repro.service.ingest import (
    TraceRequest,
    TraceResult,
    _event_payload,
    parse_request_payload,
    result_digest,
)
from repro.service.query import QueryRequest, QueryResult

#: error-body ``type`` slugs, by exception class (order matters:
#: subclasses before bases).
_ERROR_TYPES: Tuple[Tuple[type, str, int], ...] = (
    # per-tenant quota exhaustion is the client's pace problem (429),
    # service-wide overload is ours (503); both carry retry-after
    (QuotaExhaustedError, "quota_exhausted", 429),
    (ServiceOverloadError, "overloaded", 503),
    (UnknownGraphError, "unknown_graph", 404),
    (SplitSafetyError, "split_unsafe", 422),
    (TraceFormatError, "bad_request", 400),
    (WorkerLost, "worker_lost", 500),
    (ServiceError, "bad_request", 400),
    (TigrError, "internal", 500),
)


def parse_wire_request(
    payload: dict, *, line: int = 0, default_id: int = 0
) -> TraceRequest:
    """One decoded JSON body/line -> validated :class:`TraceRequest`.

    Thin veneer over :func:`repro.service.ingest.parse_request_payload`
    (the single validator both the trace reader and the HTTP tier
    use); :class:`BadRequest`-compatible errors stay typed for
    :func:`error_response`.
    """
    if not isinstance(payload, dict):
        raise TraceFormatError(
            f"expected a JSON object, got {type(payload).__name__}",
            line=line,
            source="http",
        )
    return parse_request_payload(
        payload, line=line, source="http", default_id=default_id
    )


def _jsonable_values(result: QueryResult) -> dict:
    """Value arrays as JSON lists (infinities become ``null``)."""
    values = {}
    for source, array in result.values.items():
        data = np.asarray(array, dtype=np.float64).tolist()
        values[str(source)] = [
            None if not math.isfinite(v) else v for v in data
        ]
    return values


def result_payload(
    trace_id: int,
    result: QueryResult,
    *,
    elapsed_s: float = 0.0,
    include_values: bool = False,
) -> dict:
    """A resolved :class:`QueryResult` -> trace ``result`` line dict.

    Exactly what a :class:`~repro.service.ingest.TraceRecorder` would
    write for this answer — same digest, same fields — plus, when the
    caller opted in, the value arrays themselves (JSON floats; IEEE
    infinities, which mean "unreached", serialise as ``null``).
    """
    payload = _event_payload(
        TraceResult(
            trace_id=trace_id,
            digest=result_digest(result),
            ok=result.ok,
            error=result.error,
            transform=result.transform,
            degraded=result.degraded,
            cache_hit=result.cache_hit,
            elapsed_s=elapsed_s,
        )
    )
    if include_values:
        payload["values"] = _jsonable_values(result)
    return payload


def error_payload(
    kind: str, message: str, status: int, **extra
) -> dict:
    """The machine-readable error body shape, for any failure."""
    body = {"type": kind, "message": message, "status": status}
    body.update(extra)
    return {"error": body}


def error_response(exc: Exception) -> Response:
    """Map a raised exception to its HTTP response.

    Typed service errors carry their own status; transport-level
    :class:`BadRequest` carries one explicitly; anything else is a
    500 whose body names the exception class but not its internals.
    """
    if isinstance(exc, BadRequest):
        return Response(
            exc.status,
            error_payload("bad_request", exc.message, exc.status),
        )
    for klass, kind, status in _ERROR_TYPES:
        if isinstance(exc, klass):
            headers = {}
            if isinstance(exc, ServiceOverloadError):
                headers["retry-after"] = str(
                    max(1, math.ceil(exc.retry_after_s))
                )
            return Response(
                status, error_payload(kind, str(exc), status), headers
            )
    return Response(
        500,
        error_payload(
            "internal", f"unhandled {type(exc).__name__}", 500
        ),
    )


def to_query_request(
    trace_request: TraceRequest, *, default_timeout_s: Optional[float] = None
) -> QueryRequest:
    """Wire request -> executor request (graph resolved by name)."""
    request = trace_request.to_query_request()
    if request.timeout_s is None and default_timeout_s is not None:
        # QueryRequest is frozen; rebuild with the API-tier default.
        request = QueryRequest(
            algorithm=request.algorithm,
            graph=request.graph,
            sources=request.sources,
            transform=request.transform,
            degree_bound=request.degree_bound,
            timeout_s=default_timeout_s,
            options=request.options,
            tenant=request.tenant,
            request_id=request.request_id,
        )
    return request
