"""The HTTP/JSON front door: asyncio server over an AnalyticsService.

Routes (all under ``/v1``, wire schema in
:mod:`repro.service.api.protocol` — trace-v1 lines, nothing else):

``POST /v1/query``
    One request object in, one result object out.  Set
    ``"include_values": true`` in the body to get the value arrays
    alongside the digest.

``POST /v1/batch``
    NDJSON request lines in, NDJSON result lines *streamed* out in
    completion order — the first line is flushed while later tickets
    are still in flight, so a client replaying a 64-source batch sees
    lane blocks arrive as the engine resolves them.

``GET /v1/metrics``
    The service's :meth:`~repro.service.metrics.ServiceMetrics.summary`
    (which includes the HTTP counters this server feeds).

``GET /v1/healthz``
    Liveness + identity: version string, backend, registered graph
    fingerprints.  Exempt from auth and rate limiting.

Lifecycle follows the graceful-drain contract: :meth:`stop` closes
the listener first (no new admissions), drains the executor queue so
in-flight tickets resolve, and only then tears connections down.
Run it inside an existing loop (:meth:`start` / :meth:`stop`), as a
blocking call (:func:`run_server`), or from a thread-friendly handle
(:class:`ThreadedApiServer` — what the tests and the ``service-trace``
bench use to front a live service without owning the main thread).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import repro
from repro.errors import ServiceError, TigrError
from repro.service.api.bridge import as_resolved, submit_batch_async
from repro.service.api.http import (
    BadRequest,
    HttpRequest,
    NdjsonStream,
    Response,
    read_request,
    send_response,
)
from repro.service.api.middleware import (
    Middleware,
    RateLimit,
    RequestShaper,
    TokenAuth,
    chain,
)
from repro.service.api.protocol import (
    error_response,
    parse_wire_request,
    result_payload,
    to_query_request,
)
from repro.service.executor import AnalyticsService, QueryTicket
from repro.service.ingest import TraceRequest

#: hard cap on request lines per /v1/batch call (one HTTP request is
#: one admission decision; bigger replays split client-side).
MAX_BATCH_LINES = 4096

#: default seconds an admission may wait out backpressure before 503.
DEFAULT_ADMISSION_WAIT_S = 2.0


@dataclass
class StreamingBatch:
    """A batch endpoint's deferred response: stream as tickets land."""

    tickets: List[QueryTicket]
    #: executor request_id -> wire trace id (response correlation).
    trace_ids: Dict[int, int]
    include_values: bool
    submitted_at: float = field(default_factory=time.perf_counter)


class ApiServer:
    """Front one :class:`AnalyticsService` with an HTTP/JSON edge.

    Parameters
    ----------
    service:
        The executor to front.  The server never owns it unless
        ``own_service=True`` (then :meth:`stop` closes it too).
    auth_tokens:
        Accepted bearer tokens; empty disables authentication.
    rate_limit / burst:
        Per-client token-bucket admission (requests/second and bucket
        depth); ``rate_limit=None`` disables limiting.
    admission_wait_s:
        How long one HTTP request may suspend waiting out a full
        executor queue before answering 503.
    default_timeout_s:
        Applied to wire requests carrying no ``timeout_s``.
    prewarmer:
        An unstarted :class:`~repro.service.economics.Prewarmer`;
        :meth:`start` kicks it off just before binding, so the warm
        set builds behind the listener while early traffic trickles
        in.  ``/v1/healthz`` reports its progress.
    """

    def __init__(
        self,
        service: AnalyticsService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_tokens: Sequence[str] = (),
        rate_limit: Optional[float] = None,
        burst: int = 16,
        max_body: int = 64 * 1024 * 1024,
        admission_wait_s: float = DEFAULT_ADMISSION_WAIT_S,
        default_timeout_s: Optional[float] = None,
        own_service: bool = False,
        prewarmer=None,
    ) -> None:
        self.service = service
        self.prewarmer = prewarmer
        self.host = host
        self.port = port
        self.max_body = max_body
        self.admission_wait_s = admission_wait_s
        self.default_timeout_s = default_timeout_s
        self.own_service = own_service
        self._server: Optional[asyncio.base_events.Server] = None
        self._wire_ids = itertools.count(1)
        middlewares: List[Middleware] = [TokenAuth(auth_tokens)]
        if rate_limit is not None:
            middlewares.append(
                RateLimit(rate_limit, burst, metrics=service.metrics)
            )
        middlewares.append(RequestShaper())
        self._routes = {
            "/v1/query": self._handle_query,
            "/v1/batch": self._handle_batch,
            "/v1/metrics": self._handle_metrics,
            "/v1/healthz": self._handle_healthz,
        }
        self._handler = chain(middlewares, self._dispatch)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        if self.prewarmer is not None:
            # Background thread; start() is idempotent, so a CLI that
            # already kicked warming off before handing us the object
            # is fine.  Never awaited — traffic does not wait on it.
            self.prewarmer.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self, *, drain_s: Optional[float] = 30.0) -> None:
        """Graceful shutdown: stop listening, drain, then tear down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # In-flight handlers hold tickets; let the executor finish
        # them off the loop so connections flush their last lines.
        if drain_s:
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.service.drain(drain_s)
            )
        if self.own_service:
            await asyncio.get_running_loop().run_in_executor(
                None, self.service.close
            )

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client = f"{peer[0]}:{peer[1]}" if peer else "<pipe>"
        try:
            while True:
                started = time.perf_counter()
                try:
                    request = await read_request(
                        reader, max_body=self.max_body, client=client
                    )
                except BadRequest as exc:
                    response = error_response(exc)
                    bytes_sent = await send_response(writer, response)
                    self._observe(response.status, started, bytes_sent)
                    return  # framing is broken; do not trust the stream
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionError,
                ):
                    return
                if request is None:
                    return  # clean keep-alive end
                keep_alive = request.keep_alive
                done = await self._respond(request, writer, started)
                if not done or not keep_alive:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        started: float,
    ) -> bool:
        """Run the chain and write whatever it produced; False = close."""
        try:
            outcome = await self._handler(request)
        except (BadRequest, TigrError) as exc:
            outcome = error_response(exc)
        except Exception as exc:  # pragma: no cover - defensive
            outcome = error_response(exc)
        try:
            if isinstance(outcome, StreamingBatch):
                stream = NdjsonStream(writer)
                await stream.start()
                await self._stream_batch(outcome, stream)
                self._observe(200, started, stream.bytes_sent)
                return True
            assert isinstance(outcome, Response), outcome
            bytes_sent = await send_response(writer, outcome)
            self._observe(outcome.status, started, bytes_sent)
            return True
        except (ConnectionError, BrokenPipeError):
            # Peer went away mid-response; results already resolved.
            self._observe(499, started, 0)
            return False

    async def _stream_batch(
        self, batch: StreamingBatch, stream: NdjsonStream
    ) -> None:
        async for ticket, result in as_resolved(batch.tickets):
            elapsed = time.perf_counter() - batch.submitted_at
            await stream.write(
                result_payload(
                    batch.trace_ids[ticket.request.request_id],
                    result,
                    elapsed_s=elapsed,
                    include_values=batch.include_values,
                )
            )
        await stream.end()

    def _observe(self, status: int, started: float, bytes_sent: int) -> None:
        self.service.metrics.http_observed(
            status, time.perf_counter() - started, bytes_sent=bytes_sent
        )

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    async def _dispatch(self, request: HttpRequest):
        # RequestShaper already 404/405'd anything unknown.
        return await self._routes[request.path](request)

    def _admit(self, trace_requests: List[TraceRequest]):
        """Wire requests -> executor requests + id correlation map."""
        requests = []
        trace_ids: Dict[int, int] = {}
        for trace_request in trace_requests:
            request = to_query_request(
                trace_request, default_timeout_s=self.default_timeout_s
            )
            requests.append(request)
            trace_ids[request.request_id] = trace_request.trace_id
        return requests, trace_ids

    async def _handle_query(self, request: HttpRequest):
        payload = request.json()
        if not isinstance(payload, dict):
            raise BadRequest(400, "expected one JSON request object")
        include_values = bool(payload.pop("include_values", False))
        trace_request = parse_wire_request(
            payload, default_id=next(self._wire_ids)
        )
        requests, trace_ids = self._admit([trace_request])
        started = time.perf_counter()
        tickets = await submit_batch_async(
            self.service, requests, max_wait_s=self.admission_wait_s
        )
        result = await tickets[0].aresult()
        return Response(
            200,
            result_payload(
                trace_ids[tickets[0].request.request_id],
                result,
                elapsed_s=time.perf_counter() - started,
                include_values=include_values,
            ),
        )

    async def _handle_batch(self, request: HttpRequest):
        lines = request.ndjson_lines()
        if not lines:
            raise BadRequest(400, "batch body carries no request lines")
        if len(lines) > MAX_BATCH_LINES:
            raise BadRequest(
                413,
                f"{len(lines)} request lines exceed the per-call cap "
                f"of {MAX_BATCH_LINES}; split the replay window",
            )
        include_values = request.query.get("include_values") in ("1", "true")
        trace_requests = []
        for number, line in enumerate(lines, start=1):
            try:
                payload = json.loads(line)
            except ValueError as exc:
                raise BadRequest(
                    400, f"batch line {number} is not valid JSON ({exc})"
                ) from None
            trace_requests.append(
                parse_wire_request(
                    payload, line=number, default_id=next(self._wire_ids)
                )
            )
        requests, trace_ids = self._admit(trace_requests)
        tickets = await submit_batch_async(
            self.service, requests, max_wait_s=self.admission_wait_s
        )
        return StreamingBatch(
            tickets=tickets,
            trace_ids=trace_ids,
            include_values=include_values,
        )

    async def _handle_metrics(self, request: HttpRequest):
        return Response(200, self.service.metrics.summary())

    async def _handle_healthz(self, request: HttpRequest):
        graphs = {
            name: graph.fingerprint()
            for name, graph in self.service.registered().items()
        }
        payload = {
            "status": "ok",
            "version": repro.version_string(),
            "backend": self.service.backend,
            "workers": self.service.workers,
            "graphs": graphs,
        }
        if self.prewarmer is not None:
            payload["prewarm"] = {
                "done": self.prewarmer.done,
                "built": self.prewarmer.built,
                "already_warm": self.prewarmer.already_warm,
                "skipped": self.prewarmer.skipped,
            }
        return Response(200, payload)


def run_server(
    service: AnalyticsService,
    *,
    ready_callback=None,
    drain_s: Optional[float] = 30.0,
    **kwargs,
) -> None:
    """Blocking entry point: serve until SIGINT/SIGTERM (the CLI's shape).

    ``ready_callback(host, port)`` fires after the listener binds —
    the CLI uses it to print/write the bound address (port 0 means
    "pick one"), load generators use it to know when to connect.  On
    a termination signal the listener closes first and the executor
    queue drains before the call returns, so every admitted request
    still gets its response line.
    """

    async def main() -> None:
        server = ApiServer(service, **kwargs)
        host, port = await server.start()
        if ready_callback is not None:
            ready_callback(host, port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop; Ctrl-C falls through below
        try:
            await stop.wait()
        finally:
            await server.stop(drain_s=drain_s)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


class ThreadedApiServer:
    """An :class:`ApiServer` on a daemon thread with its own loop.

    For synchronous callers — tests, the bench harness, notebook use::

        with ThreadedApiServer(service) as handle:
            urllib.request.urlopen(f"http://{handle.address}/v1/healthz")

    ``start()`` returns once the listener is bound; ``stop()`` runs
    the graceful drain on the loop and joins the thread.
    """

    def __init__(self, service: AnalyticsService, **kwargs) -> None:
        self._server = ApiServer(service, **kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopped = False
        self._drain_s: Optional[float] = 30.0

    @property
    def address(self) -> str:
        return self._server.address

    @property
    def server(self) -> ApiServer:
        return self._server

    def start(self, timeout_s: float = 10.0) -> "ThreadedApiServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-api", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise ServiceError("API server failed to bind within timeout")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def main() -> None:
            # The stop event and loop handle are published only after
            # the listener binds, so stop() always sees both or neither.
            self._stop_event = asyncio.Event()
            await self._server.start()
            self._loop = loop
            self._ready.set()
            try:
                # start_server handles connections while the loop
                # runs; all main() must do is stay alive until asked.
                await self._stop_event.wait()
            finally:
                await self._server.stop(drain_s=self._drain_s)

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def stop(self, *, drain_s: Optional[float] = 30.0) -> None:
        if self._stopped or self._loop is None or self._stop_event is None:
            return
        self._stopped = True
        self._drain_s = drain_s
        self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=(drain_s or 0) + 30)

    def __enter__(self) -> "ThreadedApiServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
