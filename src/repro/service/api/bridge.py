"""Asyncio bridge: coroutine-shaped access to the threaded executor.

The executor's dispatcher pool is threads; the HTTP tier is one event
loop.  This module is the seam: admission that *suspends* instead of
blocking when the bounded queue is full, and resolution fan-in that
turns many :class:`~repro.service.executor.QueryTicket`\\ s into an
async stream in completion order — the primitive batch streaming is
built on.  No thread is parked per request anywhere on this path:
tickets hand their results across with ``loop.call_soon_threadsafe``
(see :meth:`QueryTicket.add_done_callback`), and backpressure waits
are ``asyncio.sleep`` retries against the non-blocking submit.
"""

from __future__ import annotations

import asyncio
import time
from typing import AsyncIterator, List, Sequence, Tuple

from repro.errors import ServiceOverloadError
from repro.service.executor import AnalyticsService, QueryTicket
from repro.service.query import QueryRequest, QueryResult

#: admission retry backoff bounds (seconds).
POLL_FLOOR_S = 0.001
POLL_CEIL_S = 0.05


async def submit_batch_async(
    service: AnalyticsService,
    requests: Sequence[QueryRequest],
    *,
    max_wait_s: float = 2.0,
) -> List[QueryTicket]:
    """Admit a batch, suspending (not blocking) under backpressure.

    Tries the non-blocking submit; on :class:`ServiceOverloadError`
    sleeps on the loop with exponential backoff and retries until
    ``max_wait_s`` is spent, then re-raises the overload (the server
    maps it to 503 + ``Retry-After``).  ``max_wait_s=0`` is a pure
    admission probe — one attempt, no waiting.
    """
    deadline = time.monotonic() + max_wait_s
    delay = POLL_FLOOR_S
    while True:
        try:
            return service.submit_batch(list(requests), block=False)
        except ServiceOverloadError:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise
            await asyncio.sleep(min(delay, remaining))
            delay = min(delay * 2, POLL_CEIL_S)


async def as_resolved(
    tickets: Sequence[QueryTicket],
) -> AsyncIterator[Tuple[QueryTicket, QueryResult]]:
    """Yield ``(ticket, result)`` pairs in completion order.

    Results cross from dispatcher threads onto the running loop via a
    queue; the first resolved ticket is yielded while the rest are
    still in flight, which is exactly the streaming contract of
    ``POST /v1/batch``.
    """
    if not tickets:
        return
    loop = asyncio.get_running_loop()
    resolved: "asyncio.Queue[Tuple[QueryTicket, QueryResult]]" = asyncio.Queue()

    def deliver(ticket: QueryTicket, result: QueryResult) -> None:
        def enqueue() -> None:
            resolved.put_nowait((ticket, result))

        try:
            loop.call_soon_threadsafe(enqueue)
        except RuntimeError:
            pass  # loop torn down mid-resolution; nobody is listening

    for ticket in tickets:
        ticket.add_done_callback(deliver)
    for _ in range(len(tickets)):
        yield await resolved.get()


async def gather_results(
    tickets: Sequence[QueryTicket],
) -> List[QueryResult]:
    """Await every ticket; results in *submission* order."""
    return [await ticket.aresult() for ticket in tickets]
