"""HTTP/JSON front door for the analytics service.

The network tier of the serving stack, stdlib-only, in five layers:

``http``
    Minimal HTTP/1.1 over :mod:`asyncio` streams — request parsing,
    fixed-length JSON responses, chunked NDJSON streams.
``protocol``
    The wire schema: trace-v1 request/result lines over HTTP, and the
    typed-exception → machine-readable error-body mapping.
``middleware``
    Token auth, per-client token-bucket rate limiting, and request
    shaping (routing/content-type validation), composable as a chain.
``bridge``
    The asyncio ↔ executor seam: awaitable tickets, non-blocking
    submission with loop-native backpressure, completion-order
    result iteration.
``server`` / ``client``
    :class:`ApiServer` (plus :func:`run_server` for processes and
    :class:`ThreadedApiServer` for tests/benches) on one side, the
    synchronous :class:`HttpReplayClient` + :func:`replay_trace_http`
    trace-parity replayer on the other.

See ``docs/http-api.md`` for the wire contract and operations guide.
"""

from repro.service.api.bridge import (
    as_resolved,
    gather_results,
    submit_batch_async,
)
from repro.service.api.client import (
    HttpReplayClient,
    HttpStatusError,
    replay_trace_http,
    verify_graphs,
)
from repro.service.api.http import (
    BadRequest,
    HttpRequest,
    NdjsonStream,
    Response,
)
from repro.service.api.middleware import (
    Middleware,
    RateLimit,
    RequestShaper,
    TokenAuth,
    chain,
)
from repro.service.api.protocol import (
    error_payload,
    error_response,
    parse_wire_request,
    result_payload,
    to_query_request,
)
from repro.service.api.server import (
    ApiServer,
    ThreadedApiServer,
    run_server,
)

__all__ = [
    "ApiServer",
    "ThreadedApiServer",
    "run_server",
    "HttpReplayClient",
    "HttpStatusError",
    "replay_trace_http",
    "verify_graphs",
    "submit_batch_async",
    "as_resolved",
    "gather_results",
    "Middleware",
    "TokenAuth",
    "RateLimit",
    "RequestShaper",
    "chain",
    "BadRequest",
    "HttpRequest",
    "Response",
    "NdjsonStream",
    "parse_wire_request",
    "result_payload",
    "error_payload",
    "error_response",
    "to_query_request",
]
