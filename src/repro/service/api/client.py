"""Synchronous HTTP replay client: drive a front door from a trace.

The client half of the parity contract.  :class:`HttpReplayClient`
speaks the same trace-v1 wire schema as the server, over stdlib
``http.client`` keep-alive connections — no event loop, no
dependencies — so a *separate process* can replay any recorded trace
against a live front door and diff every returned ``digest`` against
the recorded one (:func:`replay_trace_http` returns the same
:class:`~repro.service.replay.ReplayReport` shape the in-process
replayer produces).  ``tools/loadgen.py`` is a thin CLI over this
module; the ``service-trace`` bench and the ``http-smoke`` CI job
both drive it.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union
from urllib.parse import urlsplit

from repro.errors import ServiceError
from repro.service.ingest import Trace, TraceRequest, load_trace
from repro.service.replay import DigestMismatch, ReplayReport

#: seconds an idle socket waits on the server before giving up.
DEFAULT_HTTP_TIMEOUT_S = 300.0


class HttpStatusError(ServiceError):
    """The server answered outside 2xx; carries status + error body."""

    def __init__(self, status: int, body: dict, *, path: str = "") -> None:
        self.status = status
        self.body = body
        detail = body.get("error", {}) if isinstance(body, dict) else {}
        super().__init__(
            f"{path or 'request'} answered {status} "
            f"({detail.get('type', 'unknown')}: "
            f"{detail.get('message', '(no message)')})"
        )


class HttpReplayClient:
    """One keep-alive connection to a front door, trace lines in/out."""

    def __init__(
        self,
        url: str,
        *,
        token: Optional[str] = None,
        timeout_s: float = DEFAULT_HTTP_TIMEOUT_S,
    ) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("http", ""):
            raise ServiceError(
                f"only http:// front doors are supported, got {url!r}"
            )
        if not split.hostname:
            raise ServiceError(f"cannot parse host from {url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.token = token
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def _headers(self, content_type: Optional[str] = None) -> Dict[str, str]:
        headers = {}
        if content_type:
            headers["Content-Type"] = content_type
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None,
        content_type: Optional[str] = None,
    ) -> http.client.HTTPResponse:
        conn = self._connection()
        try:
            conn.request(
                method, path, body=body, headers=self._headers(content_type)
            )
            return conn.getresponse()
        except (ConnectionError, http.client.HTTPException):
            # one reconnect: the server may have closed an idle socket
            self.close()
            conn = self._connection()
            conn.request(
                method, path, body=body, headers=self._headers(content_type)
            )
            return conn.getresponse()

    def _json(self, response: http.client.HTTPResponse, path: str) -> dict:
        raw = response.read()
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"{path}: non-JSON response ({exc.msg}): {raw[:200]!r}"
            ) from exc
        if not 200 <= response.status < 300:
            raise HttpStatusError(response.status, payload, path=path)
        return payload

    # -- endpoints -----------------------------------------------------
    def healthz(self) -> dict:
        return self._json(self._request("GET", "/v1/healthz"), "/v1/healthz")

    def metrics(self) -> dict:
        return self._json(self._request("GET", "/v1/metrics"), "/v1/metrics")

    def query(self, payload: dict) -> dict:
        """POST one trace-schema request object; its result object."""
        body = json.dumps(payload).encode("utf-8")
        return self._json(
            self._request("POST", "/v1/query", body, "application/json"),
            "/v1/query",
        )

    def batch_lines(
        self, lines: Iterable[str]
    ) -> Iterable[Tuple[dict, float]]:
        """POST NDJSON request lines; yield ``(result, t_arrival_s)``.

        Streams: each yielded pair carries the wall-clock seconds
        since the request was sent, measured when its line *arrived* —
        the observable the incremental-streaming test asserts on
        (first line strictly before the batch finishes).
        """
        body = ("\n".join(lines) + "\n").encode("utf-8")
        sent_at = time.perf_counter()
        response = self._request(
            "POST", "/v1/batch", body, "application/x-ndjson"
        )
        if not 200 <= response.status < 300:
            raw = response.read()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": {"message": raw[:200].decode("latin-1")}}
            raise HttpStatusError(response.status, payload, path="/v1/batch")
        while True:
            line = response.readline()
            if not line:
                break
            line = line.strip()
            if line:
                yield json.loads(line), time.perf_counter() - sent_at

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "HttpReplayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def verify_graphs(client: HttpReplayClient, trace: Trace) -> List[str]:
    """Diff the server's registered graphs against the trace header.

    Returns human-readable problems (missing graph, fingerprint
    drift); empty means every graph the trace references is served
    with the recorded content.  Run before a replay so a mismatched
    deployment fails in one line instead of a wall of digest
    mismatches.
    """
    problems: List[str] = []
    served = client.healthz().get("graphs", {})
    referenced = {request.graph for request in trace.requests}
    for name in sorted(referenced):
        recorded = trace.header.graphs.get(name, {}).get("fingerprint")
        actual = served.get(name)
        if actual is None:
            problems.append(
                f"graph {name!r} is not registered on the server "
                f"(serving: {', '.join(sorted(served)) or '(none)'})"
            )
        elif recorded is not None and actual != recorded:
            problems.append(
                f"graph {name!r} fingerprint drift: server has "
                f"{actual[:16]}…, trace recorded {recorded[:16]}…"
            )
    return problems


def _request_line(request: TraceRequest) -> str:
    from repro.service.ingest import format_trace_line

    return format_trace_line(request)


def replay_trace_http(
    source: Union[str, Trace],
    url: str,
    *,
    token: Optional[str] = None,
    batch: int = 16,
    loop: int = 1,
    speed: float = 0.0,
    verify: bool = True,
    check_graphs: bool = True,
    on_malformed: str = "strict",
    timeout_s: float = DEFAULT_HTTP_TIMEOUT_S,
) -> ReplayReport:
    """Replay a recorded trace over HTTP and diff every digest.

    The network-edge twin of :func:`repro.service.replay.replay_trace`:
    consecutive requests are grouped into ``/v1/batch`` windows of
    ``batch`` lines (window of 1 uses ``/v1/query``), ``speed``
    re-paces recorded inter-arrival gaps, and every returned
    ``digest`` is diffed against the recorded one.  The report's
    ``backend`` field records the wire (``http://host:port``); digest
    parity across in-process and HTTP replay is the acceptance gate
    the ``http-smoke`` CI job enforces.
    """
    trace = source if isinstance(source, Trace) else None
    if trace is None:
        trace = load_trace(source, on_malformed=on_malformed)
    report = ReplayReport(
        source=source if isinstance(source, str) else "<trace>",
        backend=f"http://{url.split('://')[-1]}",
        loops=loop,
    )
    with HttpReplayClient(url, token=token, timeout_s=timeout_s) as client:
        if check_graphs:
            problems = verify_graphs(client, trace)
            if problems:
                raise ServiceError(
                    "front door does not serve this trace's graphs:\n  "
                    + "\n  ".join(problems)
                )
        start = time.perf_counter()
        for _ in range(loop):
            _replay_pass_http(
                client, trace, report,
                batch=batch, speed=speed, verify=verify,
            )
        report.elapsed_s = time.perf_counter() - start
    return report


def _verify_line(
    trace: Trace, report: ReplayReport, payload: dict, *, verify: bool
) -> None:
    ok = payload.get("ok", payload.get("error") is None)
    if ok:
        report.results_ok += 1
    else:
        report.results_failed += 1
    if not verify:
        return
    trace_id = int(payload.get("id", -1))
    recorded = trace.results.get(trace_id)
    if recorded is None:
        report.digests_missing += 1
        return
    report.digests_checked += 1
    actual = str(payload.get("digest", ""))
    if actual != recorded.digest:
        request = next(
            (r for r in trace.requests if r.trace_id == trace_id), None
        )
        report.mismatches.append(
            DigestMismatch(
                trace_id=trace_id,
                algorithm=request.algorithm if request else "?",
                graph=request.graph if request else "?",
                expected=recorded.digest,
                actual=actual,
                error=payload.get("error"),
            )
        )


def _replay_pass_http(
    client: HttpReplayClient,
    trace: Trace,
    report: ReplayReport,
    *,
    batch: int,
    speed: float,
    verify: bool,
) -> None:
    window: List[TraceRequest] = []

    def flush() -> None:
        if not window:
            return
        report.requests_submitted += len(window)
        if len(window) == 1 and batch == 1:
            payload = json.loads(_request_line(window[0]))
            _verify_line(
                trace, report, client.query(payload), verify=verify
            )
        else:
            lines = [_request_line(request) for request in window]
            for payload, _arrival in client.batch_lines(lines):
                _verify_line(trace, report, payload, verify=verify)
        window.clear()

    for request in trace.requests:
        if speed > 0 and request.delta_s > 0:
            time.sleep(request.delta_s / speed)
        window.append(request)
        if len(window) >= batch:
            flush()
    flush()
