"""Minimal HTTP/1.1 over :mod:`asyncio` streams — no dependencies.

The front door speaks just enough HTTP for a JSON API: request-line +
headers + ``Content-Length`` bodies in, fixed-length JSON or chunked
NDJSON streams out, keep-alive connections.  Deliberately *not*
implemented: request chunked transfer encoding (rejected with 411 —
every client this repo ships sends ``Content-Length``), multipart,
compression, TLS (terminate it in front, see ``docs/http-api.md``).

Parsing is strict where sloppiness would hide bugs (malformed request
lines, oversized headers/bodies raise :class:`BadRequest` with the
status to send) and tolerant where HTTP requires it (header case,
optional whitespace).  Everything here is transport; routing, auth,
and wire-schema concerns live in the sibling modules.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: request-side guard rails (bytes).
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 64 * 1024
DEFAULT_MAX_BODY = 64 * 1024 * 1024

#: the subset of status reasons this API emits.
REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

SERVER_NAME = "repro-api"


class BadRequest(Exception):
    """A request the transport layer refuses; carries the status."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message
        super().__init__(message)


@dataclass
class HttpRequest:
    """One parsed request (headers lower-cased, query decoded)."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    client: str = ""
    #: middleware scratch space (auth principal, parsed payloads, …).
    context: dict = field(default_factory=dict)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self):
        """The body as one JSON value (:class:`BadRequest` on junk)."""
        if not self.body:
            raise BadRequest(400, "request body is empty; expected JSON")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise BadRequest(
                400, f"request body is not valid JSON ({exc.msg})"
            ) from exc

    def ndjson_lines(self) -> list:
        """Non-blank body lines (the NDJSON batch wire format)."""
        text = self.body.decode("utf-8", errors="replace")
        return [line for line in text.splitlines() if line.strip()]


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body: int = DEFAULT_MAX_BODY,
    client: str = "",
) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`BadRequest` for anything the server should answer
    with a 4xx before closing, ``asyncio.IncompleteReadError`` /
    ``ConnectionError`` for a peer that vanished mid-request.
    """
    try:
        request_line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests: keep-alive ended
        raise
    except asyncio.LimitOverrunError:
        raise BadRequest(400, "request line too long") from None
    if len(request_line) > MAX_REQUEST_LINE:
        raise BadRequest(400, "request line too long")
    parts = request_line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(400, f"malformed request line {parts!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readuntil(b"\r\n")
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise BadRequest(400, "header block too large")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise BadRequest(
            411, "chunked request bodies are not supported; "
                 "send Content-Length"
        )
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise BadRequest(400, "Content-Length is not an integer") from None
        if length < 0:
            raise BadRequest(400, "Content-Length is negative")
        if length > max_body:
            raise BadRequest(
                413, f"body of {length} bytes exceeds the {max_body} limit"
            )
        body = await reader.readexactly(length)

    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query)}
    return HttpRequest(
        method=method,
        target=target,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
        client=client,
    )


def _head(
    status: int,
    headers: Dict[str, str],
) -> bytes:
    lines = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}"]
    base = {"server": SERVER_NAME, **headers}
    for name, value in base.items():
        lines.append(f"{name.title()}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


@dataclass
class Response:
    """A fixed-length response a handler returns to the server loop."""

    status: int
    payload: Optional[dict] = None
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> Tuple[bytes, int]:
        """Full wire bytes + body size (for metrics)."""
        body = b""
        headers = dict(self.headers)
        if self.payload is not None:
            body = (
                json.dumps(self.payload, separators=(", ", ": ")) + "\n"
            ).encode("utf-8")
            headers.setdefault("content-type", "application/json")
        headers["content-length"] = str(len(body))
        return _head(self.status, headers) + body, len(body)


class NdjsonStream:
    """A chunked ``application/x-ndjson`` response, one JSON per line.

    The streaming half of the wire contract: the head goes out before
    the first result exists, each :meth:`write` is one chunk flushed
    to the client immediately (first line lands while later tickets
    are still in flight), and :meth:`end` terminates the chunked body
    while keeping the connection reusable.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self.bytes_sent = 0
        self.lines_sent = 0

    async def start(self, *, status: int = 200) -> None:
        self._writer.write(_head(status, {
            "content-type": "application/x-ndjson",
            "transfer-encoding": "chunked",
        }))
        await self._writer.drain()

    async def write(self, payload: dict) -> None:
        line = (
            json.dumps(payload, separators=(", ", ": ")) + "\n"
        ).encode("utf-8")
        chunk = f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n"
        self._writer.write(chunk)
        self.bytes_sent += len(line)
        self.lines_sent += 1
        await self._writer.drain()

    async def end(self) -> None:
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


async def send_response(
    writer: asyncio.StreamWriter, response: Response
) -> int:
    """Write a fixed-length response; returns body bytes sent."""
    wire, body_bytes = response.encode()
    writer.write(wire)
    await writer.drain()
    return body_bytes
