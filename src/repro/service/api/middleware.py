"""Middleware chain: auth, rate limiting, request shaping.

The server composes an onion of small async callables around each
route handler::

    handler = chain([TokenAuth(...), RateLimit(...), RequestShaper(...)], endpoint)

Each middleware either short-circuits with a
:class:`~repro.service.api.http.Response` (401, 429, 400 …) or awaits
the next layer.  Policy stays here; the server loop and the route
handlers never look at an ``Authorization`` header or a token bucket
— the same policy-vs-mechanism split the executor keeps between
dispatch and degradation.

``RateLimit`` is a classic token bucket per client key: the
authenticated token when present, else the peer address.  Buckets
refill continuously at ``rate`` per second up to ``burst``; a request
arriving to an empty bucket is answered ``429`` with a
``Retry-After`` hint of the time until the next whole token.
"""

from __future__ import annotations

import threading
import time
from typing import Awaitable, Callable, Dict, Iterable, Optional

from repro.service.api.http import HttpRequest, Response
from repro.service.api.protocol import error_payload
from repro.service.metrics import ServiceMetrics

#: a route handler / the continuation each middleware wraps.
Handler = Callable[[HttpRequest], Awaitable[object]]

#: routes every deployment leaves reachable without credentials —
#: health probes must not need a secret.
UNAUTHENTICATED_PATHS = ("/v1/healthz",)


def chain(middlewares: Iterable["Middleware"], endpoint: Handler) -> Handler:
    """Compose middlewares (outermost first) around ``endpoint``."""
    handler = endpoint
    for middleware in reversed(list(middlewares)):
        handler = middleware.wrap(handler)
    return handler


class Middleware:
    """Base: subclasses implement ``__call__(request, next)``."""

    def wrap(self, nxt: Handler) -> Handler:
        async def handler(request: HttpRequest):
            return await self(request, nxt)

        return handler

    async def __call__(self, request: HttpRequest, nxt: Handler):
        raise NotImplementedError


class TokenAuth(Middleware):
    """Bearer-token gate: constant set of accepted tokens.

    An empty token set disables the gate entirely (a development
    server); health probes pass regardless.  The accepted token is
    published to downstream middleware as ``request.context["client"]``
    — the rate limiter keys on it, so one tenant cannot spend
    another's budget by sharing an egress IP.
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self.tokens = frozenset(t for t in tokens if t)

    async def __call__(self, request: HttpRequest, nxt: Handler):
        if not self.tokens or request.path in UNAUTHENTICATED_PATHS:
            return await nxt(request)
        header = request.headers.get("authorization", "")
        scheme, _, token = header.partition(" ")
        if scheme.lower() != "bearer" or token.strip() not in self.tokens:
            return Response(
                401,
                error_payload(
                    "unauthorized",
                    "missing or invalid bearer token",
                    401,
                ),
                {"www-authenticate": "Bearer"},
            )
        request.context["client"] = token.strip()
        return await nxt(request)


class RateLimit(Middleware):
    """Per-client token bucket; 429 + ``Retry-After`` when empty.

    ``rate`` tokens/second refill up to ``burst``; ``clock`` is
    injectable so tests drive time by hand.  Buckets are created
    lazily per client key and never expire — the key space is bounded
    by the configured token set (or peer addresses), not by request
    volume.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        *,
        metrics: Optional[ServiceMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.metrics = metrics
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, tuple] = {}  # key -> (tokens, stamp)

    def _take(self, key: str) -> float:
        """Try to spend one token; 0.0 on success, else seconds to wait."""
        now = self.clock()
        with self._lock:
            tokens, stamp = self._buckets.get(key, (self.burst, now))
            tokens = min(self.burst, tokens + (now - stamp) * self.rate)
            if tokens >= 1.0:
                self._buckets[key] = (tokens - 1.0, now)
                return 0.0
            self._buckets[key] = (tokens, now)
            return (1.0 - tokens) / self.rate

    async def __call__(self, request: HttpRequest, nxt: Handler):
        if request.path in UNAUTHENTICATED_PATHS:
            return await nxt(request)
        key = request.context.get("client") or request.client or "anonymous"
        wait_s = self._take(key)
        if wait_s > 0.0:
            if self.metrics is not None:
                self.metrics.http_rate_limit_rejected()
            retry_after = max(1, int(wait_s + 0.999))
            return Response(
                429,
                error_payload(
                    "rate_limited",
                    f"client {key!r} exceeded {self.rate:g} requests/s "
                    f"(burst {int(self.burst)}); retry in {wait_s:.2f}s",
                    429,
                    retry_after_s=round(wait_s, 3),
                ),
                {"retry-after": str(retry_after)},
            )
        return await nxt(request)


class RequestShaper(Middleware):
    """Transport-level shaping before any JSON is parsed.

    Enforces the method and content-type contract per route (size
    bounds are already enforced by the stream reader); anything that
    fails here never reaches the executor.  Route-specific *schema*
    validation happens in the handlers via
    :func:`~repro.service.api.protocol.parse_wire_request`, which maps
    straight onto the planner's typed errors.
    """

    #: path prefix -> allowed methods.
    METHODS = {
        "/v1/query": ("POST",),
        "/v1/batch": ("POST",),
        "/v1/metrics": ("GET",),
        "/v1/healthz": ("GET",),
    }

    #: content types accepted for bodies (bare or with parameters).
    BODY_TYPES = ("application/json", "application/x-ndjson")

    async def __call__(self, request: HttpRequest, nxt: Handler):
        allowed = self.METHODS.get(request.path)
        if allowed is None:
            return Response(
                404,
                error_payload(
                    "not_found",
                    f"no route {request.path!r}; known: "
                    + ", ".join(sorted(self.METHODS)),
                    404,
                ),
            )
        if request.method not in allowed:
            return Response(
                405,
                error_payload(
                    "method_not_allowed",
                    f"{request.method} not allowed on {request.path}",
                    405,
                ),
                {"allow": ", ".join(allowed)},
            )
        if request.method == "POST":
            content_type = request.headers.get(
                "content-type", "application/json"
            ).split(";")[0].strip().lower()
            if content_type not in self.BODY_TYPES:
                return Response(
                    415,
                    error_payload(
                        "unsupported_media_type",
                        f"content-type {content_type!r} not accepted; "
                        f"send {' or '.join(self.BODY_TYPES)}",
                        415,
                    ),
                )
            if not request.body:
                return Response(
                    400,
                    error_payload(
                        "bad_request", "request body is empty", 400
                    ),
                )
        return await nxt(request)
