"""Tigr: Transforming Irregular Graphs for GPU-Friendly Graph Processing.

A complete Python reproduction of the ASPLOS'18 paper (Nodehi Sabet,
Qiu & Zhao) — the split transformations, the virtual node array, a
vertex-centric engine over a simulated GPU, the compared frameworks,
and a harness regenerating every table and figure of the evaluation.

Most users need only the facade below::

    import repro

    graph = repro.load_dataset("livejournal")     # or repro.rmat(...)
    tigr  = repro.tigr(graph)                     # virtual transform, auto-K
    result = repro.run("sssp", tigr, source=0)    # simulated + exact
    print(result.values, result.metrics.total_time_ms)

The subpackages expose everything else — see README.md for the map.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.selection import choose_physical_k, choose_virtual_k
from repro.core.udt import udt_transform
from repro.core.virtual import VirtualGraph, virtual_transform
from repro.core.weights import DumbWeight
from repro.engine.push import EngineOptions, EngineResult
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.graph.generators import rmat

def _detect_version() -> str:
    """Installed package metadata when available, else the source tree.

    A deployed front door must be identifiable (``python -m repro
    --version``, ``GET /v1/healthz``), and the number must come from
    *one* place: the installed distribution's metadata.  Running from
    a source checkout without an install falls back to the last known
    version, marked as such.
    """
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        return "1.0.0+src"


__version__ = _detect_version()


def version_string() -> str:
    """The one-line identity every surface reports.

    The same string everywhere: ``python -m repro --version`` and the
    HTTP API's ``GET /v1/healthz`` (so an operator can match a
    deployed front door to a checkout).
    """
    return f"repro {__version__}"

__all__ = [
    "CSRGraph",
    "VirtualGraph",
    "load_dataset",
    "rmat",
    "tigr",
    "tigr_physical",
    "run",
    "choose_virtual_k",
    "choose_physical_k",
    "EngineOptions",
    "EngineResult",
    "DumbWeight",
    "__version__",
]


def tigr(
    graph: CSRGraph,
    degree_bound: Optional[int] = None,
    *,
    coalesced: bool = True,
) -> VirtualGraph:
    """The recommended transformation: virtual, coalesced, auto-K.

    This is "Tigr-V+" — what the paper's evaluation crowns.  Pass the
    result anywhere a graph is accepted by :func:`run` or the
    algorithm drivers; values stay per original node, answers are
    bit-identical to the untransformed graph (Theorem 2).
    """
    if degree_bound is None:
        degree_bound = choose_virtual_k(graph)
    return virtual_transform(graph, degree_bound, coalesced=coalesced)


def tigr_physical(
    graph: CSRGraph,
    degree_bound: Optional[int] = None,
    *,
    algorithm: str = "sssp",
):
    """The physical alternative: UDT with auto-K and the right dumb
    weights for ``algorithm`` (Corollaries 1–3).

    Returns a :class:`~repro.core.types.TransformResult`; read results
    back with its :meth:`~repro.core.types.TransformResult.read_values`.
    """
    if degree_bound is None:
        degree_bound = choose_physical_k(graph)
    return udt_transform(
        graph, degree_bound, dumb_weight=DumbWeight.for_algorithm(algorithm)
    )


def run(
    algorithm: str,
    target: Union[CSRGraph, VirtualGraph],
    source: Optional[int] = None,
    *,
    simulate: bool = True,
    options: EngineOptions = EngineOptions(),
) -> EngineResult:
    """Run one of the six analytics on a graph or transformed view.

    ``algorithm`` is one of ``bfs``, ``sssp``, ``sswp``, ``cc``,
    ``bc``, ``pr``.  With ``simulate=True`` (default) the result's
    ``metrics`` carries the GPU cost model's timing/efficiency.
    """
    from repro.baselines._run import run_algorithm
    from repro.gpu.simulator import GPUSimulator

    simulator = GPUSimulator() if simulate else None
    values, metrics, iterations = run_algorithm(
        target, algorithm.lower(), source, options, simulator
    )
    return EngineResult(
        values=values, num_iterations=iterations, converged=True,
        metrics=metrics,
    )
