"""Exception hierarchy for the Tigr reproduction.

All library-raised exceptions derive from :class:`TigrError` so callers
can catch the whole family with a single ``except`` clause while still
being able to distinguish graph-construction problems from
transformation problems or simulated out-of-memory conditions.
"""

from __future__ import annotations


class TigrError(Exception):
    """Base class for every exception raised by this library."""


class GraphError(TigrError):
    """A graph is malformed or an operation received an invalid graph.

    Raised for out-of-range endpoints, negative node counts,
    non-monotone CSR offsets, mismatched weight arrays, and similar
    structural problems.
    """


class TransformError(TigrError):
    """A graph transformation was mis-parameterised or failed.

    The most common cause is an invalid degree bound (``K < 1``).
    """


class EngineError(TigrError):
    """A vertex-centric engine was configured inconsistently.

    Examples: running a pull-based program on a push engine, requesting
    an unknown scheduling strategy, or iterating past ``max_iterations``
    without convergence when the caller demanded convergence.
    """


class DeviceOutOfMemoryError(TigrError):
    """The simulated GPU cannot fit a method's working set.

    Mirrors the ``OOM`` entries of Table 4 in the paper: raised when a
    method's modelled memory footprint exceeds
    :attr:`repro.gpu.GPUConfig.device_memory_bytes`.
    """

    def __init__(self, required_bytes: int, available_bytes: int, what: str = "") -> None:
        self.required_bytes = int(required_bytes)
        self.available_bytes = int(available_bytes)
        self.what = what
        detail = f" for {what}" if what else ""
        super().__init__(
            f"simulated device OOM{detail}: requires {required_bytes:,} bytes, "
            f"device has {available_bytes:,} bytes"
        )


class DatasetError(TigrError):
    """A named dataset stand-in does not exist or failed to generate."""


class ServiceError(TigrError):
    """The analytics serving layer rejected or failed a request.

    Raised for unknown registered graphs, malformed query requests,
    submissions against a stopped service, and queue overload when the
    caller asked not to block (backpressure).
    """


class ServiceOverloadError(ServiceError):
    """The service refused admission because it is at capacity.

    Raised for a non-blocking (or timed-out) submission against a full
    queue — the backpressure contract made typed, so network front
    ends can map overload to a retryable status (HTTP 503 with a
    ``Retry-After`` hint) instead of pattern-matching message text.
    ``retry_after_s`` is advisory: roughly how long a caller should
    back off before resubmitting.  Subclasses :class:`ServiceError` so
    existing blanket handlers keep working.
    """

    def __init__(self, reason: str, *, retry_after_s: float = 1.0) -> None:
        self.reason = reason
        self.retry_after_s = float(retry_after_s)
        super().__init__(reason)


class QuotaExhaustedError(ServiceOverloadError):
    """A tenant spent its admission quota; the request was refused.

    Raised by the sharded serving tier's routing policy
    (:class:`repro.service.routing.RoutingPolicy`) when a tenant's
    token bucket is empty.  Per-tenant overload is distinct from
    service-wide overload so front ends can map it to HTTP 429 (the
    *client* must slow down) instead of 503 (the *service* is busy);
    ``retry_after_s`` says when the bucket will hold a token again.
    Subclasses :class:`ServiceOverloadError` so the retry-after
    plumbing and blanket handlers keep working.
    """

    def __init__(self, tenant: str, *, retry_after_s: float = 1.0) -> None:
        self.tenant = tenant
        label = repr(tenant) if tenant else "(default)"
        reason = (
            f"tenant {label} quota exhausted; "
            f"retry in {retry_after_s:.2f}s"
        )
        super().__init__(reason, retry_after_s=retry_after_s)


class UnknownGraphError(ServiceError):
    """A request referenced a graph the service has not registered.

    Carries the offending reference so front ends can map it to a
    "resource not found" status (HTTP 404) with a machine-readable
    body.  Subclasses :class:`ServiceError` so existing blanket
    handlers keep working.
    """

    def __init__(self, name: str, *, registered=()) -> None:
        self.name = name
        self.registered = tuple(registered)
        super().__init__(
            f"unknown graph {name!r}; registered: "
            + (", ".join(sorted(self.registered)) or "(none)")
        )


class WorkerLost(ServiceError):
    """A process-pool worker died or stopped responding mid-batch.

    Raised inside the serving layer's process backend when the pool
    reports a broken worker (crash, OOM kill) or a dispatched batch
    exceeds its wait budget.  The executor catches it and *degrades*:
    the batch is retried once in the submitting thread, and only if
    that also fails do the affected tickets resolve with this error's
    message.  Subclasses :class:`ServiceError` so existing blanket
    handlers keep working.
    """

    def __init__(self, reason: str, *, batch_size: int = 0) -> None:
        self.reason = reason
        self.batch_size = int(batch_size)
        detail = f" ({batch_size} request(s) affected)" if batch_size else ""
        super().__init__(f"worker lost: {reason}{detail}")


class ShardLost(WorkerLost):
    """A shard executor died or became unreachable mid-query.

    The sharded tier's analogue of :class:`WorkerLost`: raised when an
    in-process shard executor errors or a remote shard host drops its
    connection during a scatter-gather superstep.  The sharded router
    catches it and degrades to an unsharded single-engine run (results
    then carry ``degraded=True``), mirroring the process backend's
    inline-retry contract.  Subclasses :class:`WorkerLost` so blanket
    worker-failure handlers keep working.
    """

    def __init__(self, reason: str, *, shard: int = -1, batch_size: int = 0) -> None:
        self.reason = reason
        self.shard = int(shard)
        self.batch_size = int(batch_size)
        where = f"shard {shard}" if shard >= 0 else "shard"
        detail = f" ({batch_size} request(s) affected)" if batch_size else ""
        # Skip WorkerLost.__init__: same attributes, shard-aware message.
        ServiceError.__init__(self, f"{where} lost: {reason}{detail}")


class TraceFormatError(ServiceError):
    """A request trace line could not be parsed or validated.

    Raised by :class:`repro.service.ingest.TraceReader` under the
    ``strict`` malformed-line policy for non-JSON lines, lines missing
    required fields, unknown line types, and field values that fail
    validation (bad algorithm, negative delta, non-integer sources).
    Carries the one-based line number so operators can find the
    offending record in a multi-gigabyte trace.  Subclasses
    :class:`ServiceError` so existing blanket handlers keep working.
    """

    def __init__(self, reason: str, *, line: int = 0, source: str = "") -> None:
        self.reason = reason
        self.line = int(line)
        self.source = source
        where = f"{source or 'trace'}"
        if line:
            where += f":{line}"
        super().__init__(f"{where}: {reason}")


class TraceVersionError(TraceFormatError):
    """A trace declares a format version this reader cannot replay.

    Version checks are structural, not per-line: a future-versioned
    trace is rejected outright even under the ``skip`` policy, because
    silently skipping every line of an incompatible trace would report
    a vacuous zero-mismatch replay.
    """

    def __init__(self, found: int, supported: int, *, source: str = "") -> None:
        self.found = int(found)
        self.supported = int(supported)
        super().__init__(
            f"trace format version {found} not supported "
            f"(this reader replays version {supported})",
            source=source,
        )


class SplitSafetyError(ServiceError):
    """A split transform was requested for a split-unsafe analytic.

    The §3.3 applicability table (:mod:`repro.core.applicability`)
    proves which analytics survive node splitting; requesting a
    physical split for one that does not (or for an analytic the table
    has never classified) is a planning error, rejected before any
    transform work is spent.  Subclasses :class:`ServiceError` so
    existing blanket handlers keep working.
    """

    def __init__(self, algorithm: str, justification: str) -> None:
        self.algorithm = algorithm
        self.justification = justification
        super().__init__(
            f"split transform cannot serve {algorithm!r}: {justification}"
        )
