"""Breadth-first search driver."""

from __future__ import annotations

from typing import Optional

from repro.algorithms._dispatch import Target, resolve_scheduler
from repro.algorithms.programs import BFSProgram
from repro.engine.push import EngineOptions, EngineResult, run_push
from repro.gpu.simulator import GPUSimulator


def bfs(
    target: Target,
    source: int,
    *,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> EngineResult:
    """Hop distances from ``source`` (``inf`` for unreachable nodes).

    ``target`` may be a plain graph (thread per node), a
    :class:`~repro.core.virtual.VirtualGraph` (Tigr scheduling), or
    any scheduler.  On weighted graphs the weights are *used* — pass
    an unweighted graph for pure hop counts, or a physically
    transformed graph whose 0/1 dumb weights encode hops (see
    :class:`~repro.algorithms.programs.BFSProgram`).
    """
    return run_push(
        resolve_scheduler(target), BFSProgram(), source,
        options=options, simulator=simulator,
    )
