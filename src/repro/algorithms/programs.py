"""The paper's analytics expressed as push programs (§6.1, Figure 2).

Each program is a tiny object: initial values, initial frontier, the
per-edge relax function, and the destination reduction.  The same
program instances drive the baseline node engine, the physically
transformed graphs, and the virtual engines — only the scheduler
changes, which is the whole point of Tigr's data-level approach.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.program import PushProgram, ReduceOp
from repro.errors import EngineError
from repro.graph.csr import NODE_DTYPE


def _require_source(source: Optional[int], name: str) -> int:
    if source is None:
        raise EngineError(f"{name} requires a source node")
    return int(source)


class BFSProgram(PushProgram):
    """Breadth-first search: hop distance from the source.

    BFS is SSSP on unit weights (§3.3).  On unweighted graphs the
    relax is ``src + 1``; on weighted graphs the weights are *used* —
    which is exactly what a physically transformed graph needs, since
    its dumb-weight edges carry 0 and its original edges carry 1.
    Callers wanting pure hop counts on a weighted graph should strip
    weights first.
    """

    name = "bfs"
    reduce = ReduceOp.MIN
    unit_hop_metric = True

    def initial_values(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        values = np.full(num_nodes, np.inf)
        values[_require_source(source, self.name)] = 0.0
        return values

    def initial_frontier(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        return np.asarray([_require_source(source, self.name)], dtype=NODE_DTYPE)

    def relax(self, src_values, edge_weights):
        if edge_weights is None:
            return src_values + 1.0
        return src_values + edge_weights


class SSSPProgram(PushProgram):
    """Single-source shortest path — the Figure 2 / Algorithm 2 kernel.

    ``alt = v.dist + weight``; destination keeps the minimum
    (``atomicMin``).
    """

    name = "sssp"
    reduce = ReduceOp.MIN
    needs_weights = True

    def initial_values(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        values = np.full(num_nodes, np.inf)
        values[_require_source(source, self.name)] = 0.0
        return values

    def initial_frontier(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        return np.asarray([_require_source(source, self.name)], dtype=NODE_DTYPE)

    def relax(self, src_values, edge_weights):
        return src_values + edge_weights


class SSWPProgram(PushProgram):
    """Single-source widest path: maximise the path's bottleneck.

    A path's width is its minimum edge weight; candidates are
    ``min(src_width, weight)`` and destinations keep the maximum.
    Source width is ``+inf``, unreached is ``-inf`` — which is why
    +inf dumb weights (Corollary 3) are transparent to it.
    """

    name = "sswp"
    reduce = ReduceOp.MAX
    needs_weights = True

    def initial_values(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        values = np.full(num_nodes, -np.inf)
        values[_require_source(source, self.name)] = np.inf
        return values

    def initial_frontier(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        return np.asarray([_require_source(source, self.name)], dtype=NODE_DTYPE)

    def relax(self, src_values, edge_weights):
        return np.minimum(src_values, edge_weights)


class CCProgram(PushProgram):
    """Connected components by min-label propagation.

    Every node starts labelled with its own id and pushes its label;
    destinations keep the minimum.  On a symmetrised graph the fixed
    point labels each weakly connected component with its smallest
    node id — directly comparable to the union-find oracle.
    """

    name = "cc"
    reduce = ReduceOp.MIN

    def initial_values(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        return np.arange(num_nodes, dtype=np.float64)

    def initial_frontier(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        return np.arange(num_nodes, dtype=NODE_DTYPE)

    def relax(self, src_values, edge_weights):
        return src_values.copy()


class PageRankProgram(PushProgram):
    """PageRank's push step: scatter ``rank / outdegree`` to neighbors.

    Unlike the monotone analytics, PR recomputes every node each
    iteration; :func:`repro.algorithms.pagerank.pagerank` owns that
    loop and uses this program only for the scatter shape (ADD
    reduction onto a fresh contribution array).  ``set_out_degrees``
    must be called with the *physical* outdegrees — on virtually
    transformed graphs every sibling divides by the full physical
    degree, which is the "modified vertex function" footnote of
    Theorem 3's discussion.
    """

    name = "pagerank"
    reduce = ReduceOp.ADD

    def __init__(self) -> None:
        self._inv_degrees: Optional[np.ndarray] = None

    def set_out_degrees(self, degrees: np.ndarray) -> None:
        inv = np.zeros(len(degrees), dtype=np.float64)
        nonzero = degrees > 0
        inv[nonzero] = 1.0 / degrees[nonzero]
        self._inv_degrees = inv

    def initial_values(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        return np.full(num_nodes, 1.0 / max(num_nodes, 1))

    def initial_frontier(self, num_nodes: int, source: Optional[int]) -> np.ndarray:
        return np.arange(num_nodes, dtype=NODE_DTYPE)

    def relax(self, src_values, edge_weights):
        # src_values here are rank[src] * inv_degree[src], prepared by
        # the PR driver; the scatter just sums them.
        return src_values.copy()
