"""Sequential CPU reference implementations — correctness oracles.

These are textbook algorithms, written for clarity and independence
from the vertex-centric engines: Dijkstra for SSSP, a Dijkstra variant
for widest paths, queue BFS, union-find connected components, Brandes
betweenness centrality, and power-iteration PageRank.  Every engine
result in the test suite is compared against these.

Only :mod:`repro.graph` is imported here, so any module in the library
may use an oracle without creating import cycles.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

#: value used for "unreached" in distance arrays.
UNREACHED = np.inf


def _weights_or_ones(graph: CSRGraph) -> np.ndarray:
    if graph.weights is not None:
        return graph.weights
    return np.ones(graph.num_edges, dtype=np.float64)


def reference_bfs(graph: CSRGraph, source: int) -> np.ndarray:
    """Hop distances from ``source``; unreachable nodes get ``inf``."""
    if not 0 <= source < graph.num_nodes:
        raise GraphError(f"source {source} out of range")
    dist = np.full(graph.num_nodes, UNREACHED)
    dist[source] = 0.0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        next_dist = dist[node] + 1.0
        for nbr in graph.neighbors(node):
            if dist[nbr] == UNREACHED:
                dist[nbr] = next_dist
                queue.append(int(nbr))
    return dist


def reference_sssp(graph: CSRGraph, source: int) -> np.ndarray:
    """Dijkstra shortest-path distances from ``source``.

    Unweighted graphs are treated as unit-weight.  Zero-weight edges
    (dumb weights on transformed graphs) are handled correctly —
    Dijkstra only requires non-negative weights.
    """
    if not 0 <= source < graph.num_nodes:
        raise GraphError(f"source {source} out of range")
    weights = _weights_or_ones(graph)
    if len(weights) and weights.min() < 0:
        raise GraphError("Dijkstra requires non-negative edge weights")
    dist = np.full(graph.num_nodes, UNREACHED)
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist[node]:
            continue
        start, end = graph.edge_range(node)
        for slot in range(start, end):
            nbr = int(graph.targets[slot])
            alt = d + weights[slot]
            if alt < dist[nbr]:
                dist[nbr] = alt
                heapq.heappush(heap, (alt, nbr))
    return dist


def reference_sswp(graph: CSRGraph, source: int) -> np.ndarray:
    """Single-source widest path (maximum bottleneck) from ``source``.

    The width of a path is its minimum edge weight; each node's value
    is the maximum width over all paths from the source.  The source
    itself has width ``inf``; unreachable nodes have width ``-inf``.
    A max-heap Dijkstra variant.
    """
    if not 0 <= source < graph.num_nodes:
        raise GraphError(f"source {source} out of range")
    weights = _weights_or_ones(graph)
    width = np.full(graph.num_nodes, -np.inf)
    width[source] = np.inf
    heap = [(-np.inf, source)]  # negated for max-heap behaviour
    while heap:
        neg_w, node = heapq.heappop(heap)
        w = -neg_w
        if w < width[node]:
            continue
        start, end = graph.edge_range(node)
        for slot in range(start, end):
            nbr = int(graph.targets[slot])
            alt = min(w, weights[slot])
            if alt > width[nbr]:
                width[nbr] = alt
                heapq.heappush(heap, (-alt, nbr))
    return width


def reference_connected_components(graph: CSRGraph) -> np.ndarray:
    """Weakly connected component labels via union-find.

    Each node's label is the smallest node id in its component —
    matching the fixed point of min-label propagation, so engine
    results are directly comparable.
    """
    parent = np.arange(graph.num_nodes, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, int(parent[x])
        return root

    for src, dst in zip(graph.edge_sources(), graph.targets):
        ra, rb = find(int(src)), find(int(dst))
        if ra != rb:
            # union by smaller id so labels are canonical minima
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb
    return np.asarray([find(i) for i in range(graph.num_nodes)], dtype=np.int64)


def reference_bc(graph: CSRGraph, source: Optional[int] = None) -> np.ndarray:
    """Betweenness centrality via Brandes' algorithm (unweighted).

    With ``source`` given, returns the single-source dependency
    contribution (what the GPU frameworks compute per traversal);
    with ``source=None``, accumulates over all sources — exact BC up
    to the conventional factor.
    """
    n = graph.num_nodes
    centrality = np.zeros(n, dtype=np.float64)
    sources = range(n) if source is None else [source]
    for s in sources:
        if not 0 <= s < n:
            raise GraphError(f"source {s} out of range")
        # Forward phase: BFS computing sigma (shortest-path counts).
        sigma = np.zeros(n, dtype=np.float64)
        dist = np.full(n, -1, dtype=np.int64)
        sigma[s] = 1.0
        dist[s] = 0
        order = []
        queue = deque([s])
        while queue:
            node = queue.popleft()
            order.append(node)
            for nbr in graph.neighbors(node):
                nbr = int(nbr)
                if dist[nbr] < 0:
                    dist[nbr] = dist[node] + 1
                    queue.append(nbr)
                if dist[nbr] == dist[node] + 1:
                    sigma[nbr] += sigma[node]
        # Backward phase: dependency accumulation in reverse BFS order.
        delta = np.zeros(n, dtype=np.float64)
        for node in reversed(order):
            for nbr in graph.neighbors(node):
                nbr = int(nbr)
                if dist[nbr] == dist[node] + 1 and sigma[nbr] > 0:
                    delta[node] += sigma[node] / sigma[nbr] * (1.0 + delta[nbr])
            if node != s:
                centrality[node] += delta[node]
    return centrality


def reference_pagerank(
    graph: CSRGraph,
    *,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Power-iteration PageRank with uniform teleport.

    Dangling nodes (outdegree 0) redistribute their rank uniformly,
    the standard convention.  Iterates to an L1 fixed point.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    degrees = graph.out_degrees().astype(np.float64)
    dangling = degrees == 0
    sources = graph.edge_sources()
    rank = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        contrib = np.zeros(n, dtype=np.float64)
        push = rank[sources] / degrees[sources]
        np.add.at(contrib, graph.targets, push)
        dangling_mass = rank[dangling].sum() / n
        new_rank = (1.0 - damping) / n + damping * (contrib + dangling_mass)
        if np.abs(new_rank - rank).sum() < tolerance:
            return new_rank
        rank = new_rank
    return rank
