"""Connected components driver (min-label propagation)."""

from __future__ import annotations

from typing import Optional

from repro.algorithms._dispatch import Target, resolve_scheduler
from repro.algorithms.programs import CCProgram
from repro.engine.push import EngineOptions, EngineResult, run_push
from repro.gpu.simulator import GPUSimulator


def connected_components(
    target: Target,
    *,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> EngineResult:
    """Component labels: each node ends with its component's least id.

    Propagation follows edge direction, so pass a symmetrised graph
    (:func:`repro.graph.builder.to_undirected`) for the usual weakly
    connected components — the same convention the paper's frameworks
    use.  Corollary 1: any split transformation preserves these
    labels for the original node ids.
    """
    return run_push(
        resolve_scheduler(target), CCProgram(), None,
        options=options, simulator=simulator,
    )
