"""Neighborhood-dependent analytics: triangle counting and coloring.

§3.3's applicability discussion names these as the analytics split
transformations *cannot* preserve: "analyses that require preserving
the neighborhood of nodes, such as graph coloring (GC), triangle
counting (TC), clique detection (CD)".  They are implemented here so
the library can demonstrate — not just assert — that boundary
(:mod:`repro.core.applicability` and the test suite run them on
UDT-transformed graphs and watch the answers change).

Both operate on the *undirected* view of their input: pass a
symmetrised graph (:func:`repro.graph.builder.to_undirected`) for the
conventional definitions.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.graph.csr import CSRGraph


def triangle_count(graph: CSRGraph) -> int:
    """Number of triangles (3-cycles over symmetric edge pairs).

    Uses the standard rank-ordering trick: orient each undirected edge
    from the lower-(degree, id) endpoint to the higher, then count
    common out-neighbors per oriented edge — each triangle is counted
    exactly once.  Expects a symmetrised graph; parallel edges and
    self-loops are ignored.
    """
    n = graph.num_nodes
    if n == 0 or graph.num_edges == 0:
        return 0
    src, dst, _ = graph.to_coo()
    keep = src != dst
    src, dst = src[keep], dst[keep]

    degrees = np.bincount(np.concatenate([src]), minlength=n)
    # rank = (degree, id) lexicographic position
    rank = np.argsort(np.argsort(degrees * (n + 1) + np.arange(n)))
    forward = rank[src] < rank[dst]
    fsrc, fdst = src[forward], dst[forward]

    # oriented adjacency sets
    order = np.argsort(fsrc, kind="stable")
    fsrc, fdst = fsrc[order], fdst[order]
    neighbors: Dict[int, np.ndarray] = {}
    starts = np.searchsorted(fsrc, np.arange(n))
    ends = np.searchsorted(fsrc, np.arange(n), side="right")
    for node in np.unique(fsrc):
        neighbors[int(node)] = np.unique(fdst[starts[node]:ends[node]])

    count = 0
    for u, v in zip(fsrc, fdst):
        nu = neighbors.get(int(u))
        nv = neighbors.get(int(v))
        if nu is None or nv is None:
            continue
        count += len(np.intersect1d(nu, nv, assume_unique=True))
    return count


def local_triangle_counts(graph: CSRGraph) -> np.ndarray:
    """Per-node triangle participation counts (symmetrised input).

    ``local_triangle_counts(g).sum() == 3 * triangle_count(g)``.
    """
    n = graph.num_nodes
    counts = np.zeros(n, dtype=np.int64)
    if n == 0 or graph.num_edges == 0:
        return counts
    adjacency = [np.unique(graph.neighbors(v)) for v in range(n)]
    for u in range(n):
        for v in adjacency[u]:
            if v <= u:
                continue
            common = np.intersect1d(adjacency[u], adjacency[int(v)],
                                    assume_unique=True)
            common = common[(common != u) & (common != v)]
            for w in common:
                if w > v:  # count each unordered triangle once
                    counts[u] += 1
                    counts[int(v)] += 1
                    counts[int(w)] += 1
    return counts


def greedy_coloring(graph: CSRGraph) -> np.ndarray:
    """Greedy vertex coloring in descending-degree order.

    Returns a color per node such that no symmetric edge joins two
    nodes of the same color.  Deterministic (ties broken by node id),
    which is what lets the applicability tests compare colorings
    before and after a transformation meaningfully.
    """
    n = graph.num_nodes
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors
    order = np.lexsort((np.arange(n), -graph.out_degrees()))
    for node in order:
        node = int(node)
        used = set(int(c) for c in colors[graph.neighbors(node)] if c >= 0)
        # also respect in-edges so directed inputs still yield proper
        # colorings of the underlying undirected graph
        color = 0
        while color in used:
            color += 1
        colors[node] = color
    # second pass with in-neighbors for non-symmetric inputs
    in_lists = _in_neighbors(graph)
    changed = True
    while changed:
        changed = False
        for node in order:
            node = int(node)
            used = set(int(c) for c in colors[graph.neighbors(node)])
            used |= set(int(colors[u]) for u in in_lists[node])
            used.discard(int(colors[node]))
            if int(colors[node]) in used:
                color = 0
                while color in used:
                    color += 1
                colors[node] = color
                changed = True
    return colors


def chromatic_upper_bound(graph: CSRGraph) -> int:
    """Number of colors the greedy coloring uses."""
    colors = greedy_coloring(graph)
    return int(colors.max()) + 1 if len(colors) else 0


def _in_neighbors(graph: CSRGraph):
    lists = [[] for _ in range(graph.num_nodes)]
    for src, dst in zip(graph.edge_sources(), graph.targets):
        lists[int(dst)].append(int(src))
    return lists
