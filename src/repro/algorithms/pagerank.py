"""PageRank driver — push-based scatter with per-iteration recompute.

PR differs from the monotone analytics: every node is processed every
iteration (the paper singles this out as why push-based engines lose
to pull/scan engines like CuSha on PR).  Each iteration scatters
``rank[v] / outdeg(v)`` along every out-edge into a fresh contribution
array, then applies damping and dangling-mass redistribution.

On a virtually transformed graph the scatter divides by the
**physical** outdegree (Corollary 4 preserves it) and sibling virtual
nodes' partial sums combine through the ADD reduction — associative,
so Theorem 3 applies and the ranks match the original exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms._dispatch import Target, resolve_scheduler
from repro.engine import kernels
from repro.engine.push import EngineOptions, EngineResult
from repro.gpu.simulator import GPUSimulator


def pagerank(
    target: Target,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-10,
    max_iterations: int = 100,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> EngineResult:
    """PageRank scores (sum to 1; dangling mass redistributed uniformly).

    ``options.worklist`` is ignored — PR is inherently all-active.
    Convergence is the L1 distance between successive rank vectors
    dropping below ``tolerance``.
    """
    scheduler = resolve_scheduler(target)
    graph = scheduler.graph
    n = graph.num_nodes
    if n == 0:
        return EngineResult(np.zeros(0), 0, True,
                            simulator.finish() if simulator else None, 0)

    degrees = graph.out_degrees().astype(np.float64)
    inv_deg = np.zeros(n)
    nonzero = degrees > 0
    inv_deg[nonzero] = 1.0 / degrees[nonzero]
    dangling = ~nonzero

    rank = np.full(n, 1.0 / n)
    all_nodes = scheduler.all_nodes()
    batch = scheduler.batch(all_nodes)  # PR's launch never changes
    eidx = batch.edge_indices()
    src = batch.sources_per_edge()
    dst = graph.targets[eidx]
    # the per-edge scatter factor never changes either, so the fused
    # kernel's `rank[src[e]] * scale[e]` matches `rank[src] * inv_deg[src]`
    # term for term in the same edge order — bitwise-identical sums
    scale = np.ascontiguousarray(inv_deg[src])
    backend = kernels.resolve_backend(
        options.kernel_backend, edges=graph.num_edges
    )

    converged = False
    iterations = 0
    edges_processed = 0
    for _ in range(max_iterations):
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1
        edges_processed += batch.total_edges

        contrib = np.zeros(n)
        if not backend.try_edge_mul_add(contrib, rank, src, dst, scale):
            np.add.at(contrib, dst, rank[src] * inv_deg[src])
        dangling_mass = rank[dangling].sum() / n
        new_rank = (1.0 - damping) / n + damping * (contrib + dangling_mass)
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        if delta < tolerance:
            converged = True
            break

    return EngineResult(
        values=rank,
        num_iterations=iterations,
        converged=converged,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
    )
