"""Internal: accept a graph, a virtual graph, or a scheduler uniformly."""

from __future__ import annotations

from typing import Union

from repro.core.virtual import VirtualGraph
from repro.engine.schedule import NodeScheduler, Scheduler, VirtualScheduler
from repro.graph.csr import CSRGraph

Target = Union[CSRGraph, VirtualGraph, Scheduler]


def resolve_scheduler(target: Target) -> Scheduler:
    """Normalise an algorithm-driver target into a scheduler.

    * :class:`~repro.graph.csr.CSRGraph` → one thread per node;
    * :class:`~repro.core.virtual.VirtualGraph` → one thread per
      virtual node (Tigr);
    * any :class:`~repro.engine.schedule.Scheduler` → used as-is.
    """
    if isinstance(target, Scheduler):
        return target
    if isinstance(target, VirtualGraph):
        return VirtualScheduler(target)
    if isinstance(target, CSRGraph):
        return NodeScheduler(target)
    raise TypeError(f"cannot schedule {type(target).__name__}")
