"""Betweenness centrality (single source) — Brandes on the BSP engine.

Two level-synchronous phases, both scheduled through the same
scheduler abstraction as the other analytics (so Tigr's virtual
scheduling applies to BC exactly as the paper evaluates it):

* **forward**: BFS from the source settling levels and accumulating
  ``sigma`` (shortest-path counts) level by level;
* **backward**: dependency accumulation
  ``delta[v] += sigma[v]/sigma[w] * (1 + delta[w])`` over edges
  ``v -> w`` one level apart, sweeping levels deepest-first.

Both phases only ADD into shared per-physical-node arrays, so virtual
siblings compose associatively (Theorem 3's condition).  BC here is
unweighted (hop-count shortest paths), matching the GPU frameworks
the paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.algorithms._dispatch import Target, resolve_scheduler
from repro.engine.push import EngineOptions
from repro.gpu.metrics import RunMetrics
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import NODE_DTYPE


@dataclass
class BCResult:
    """Outcome of a single-source BC run."""

    #: dependency scores (the source's own entry is 0 by convention).
    centrality: np.ndarray
    #: BFS level per node (-1 if unreached).
    levels: np.ndarray
    #: shortest-path counts from the source.
    sigma: np.ndarray
    num_iterations: int
    converged: bool
    metrics: Optional[RunMetrics] = None
    edges_processed: int = 0


def bc(
    target: Target,
    source: int,
    *,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> BCResult:
    """Single-source betweenness contribution from ``source``.

    ``options.worklist`` is inherent here (both phases are
    frontier-driven by construction); ``options.max_iterations``
    bounds the total level count.
    """
    scheduler = resolve_scheduler(target)
    graph = scheduler.graph
    n = graph.num_nodes
    targets = graph.targets

    levels = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    levels[source] = 0
    sigma[source] = 1.0

    level_frontiers = []
    frontier = np.asarray([source], dtype=NODE_DTYPE)
    level = 0
    iterations = 0
    edges_processed = 0

    # ---------------- forward phase ----------------
    while len(frontier) and iterations < options.max_iterations:
        level_frontiers.append(frontier)
        batch = scheduler.batch(frontier)
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1
        edges_processed += batch.total_edges

        eidx = batch.edge_indices()
        if len(eidx) == 0:
            break
        dst = targets[eidx]
        src = batch.sources_per_edge()
        # settle the next level
        fresh = dst[levels[dst] < 0]
        if len(fresh):
            levels[np.unique(fresh)] = level + 1
        # accumulate sigma over edges landing exactly one level down
        on_level = levels[dst] == level + 1
        np.add.at(sigma, dst[on_level], sigma[src[on_level]])
        frontier = np.unique(fresh)
        level += 1

    # ---------------- backward phase ----------------
    delta = np.zeros(n, dtype=np.float64)
    for frontier in reversed(level_frontiers[:-1] if len(level_frontiers) > 1 else []):
        batch = scheduler.batch(frontier)
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1
        edges_processed += batch.total_edges

        eidx = batch.edge_indices()
        if len(eidx) == 0:
            continue
        dst = targets[eidx]
        src = batch.sources_per_edge()
        down = (levels[dst] == levels[src] + 1) & (sigma[dst] > 0)
        contrib = np.zeros(len(eidx), dtype=np.float64)
        contrib[down] = (
            sigma[src[down]] / sigma[dst[down]] * (1.0 + delta[dst[down]])
        )
        np.add.at(delta, src, contrib)

    centrality = delta.copy()
    centrality[source] = 0.0
    return BCResult(
        centrality=centrality,
        levels=levels,
        sigma=sigma,
        num_iterations=iterations,
        converged=True,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
    )
