"""Betweenness centrality (single source) — Brandes on the BSP engine.

Two level-synchronous phases, both scheduled through the same
scheduler abstraction as the other analytics (so Tigr's virtual
scheduling applies to BC exactly as the paper evaluates it):

* **forward**: BFS from the source settling levels and accumulating
  ``sigma`` (shortest-path counts) level by level;
* **backward**: dependency accumulation
  ``delta[v] += sigma[v]/sigma[w] * (1 + delta[w])`` over edges
  ``v -> w`` one level apart, sweeping levels deepest-first.

Both phases only ADD into shared per-physical-node arrays, so virtual
siblings compose associatively (Theorem 3's condition).  BC here is
unweighted (hop-count shortest paths), matching the GPU frameworks
the paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.algorithms._dispatch import Target, resolve_scheduler
from repro.engine.push import EngineOptions
from repro.gpu.metrics import RunMetrics
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import NODE_DTYPE


@dataclass
class BCResult:
    """Outcome of a single-source BC run."""

    #: dependency scores (the source's own entry is 0 by convention).
    centrality: np.ndarray
    #: BFS level per node (-1 if unreached).
    levels: np.ndarray
    #: shortest-path counts from the source.
    sigma: np.ndarray
    num_iterations: int
    converged: bool
    metrics: Optional[RunMetrics] = None
    edges_processed: int = 0


def bc(
    target: Target,
    source: int,
    *,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> BCResult:
    """Single-source betweenness contribution from ``source``.

    ``options.worklist`` is inherent here (both phases are
    frontier-driven by construction); ``options.max_iterations``
    bounds the total level count.
    """
    scheduler = resolve_scheduler(target)
    graph = scheduler.graph
    n = graph.num_nodes
    targets = graph.targets

    levels = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    levels[source] = 0
    sigma[source] = 1.0

    level_frontiers = []
    frontier = np.asarray([source], dtype=NODE_DTYPE)
    level = 0
    iterations = 0
    edges_processed = 0

    # ---------------- forward phase ----------------
    while len(frontier) and iterations < options.max_iterations:
        level_frontiers.append(frontier)
        batch = scheduler.batch(frontier)
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1
        edges_processed += batch.total_edges

        eidx = batch.edge_indices()
        if len(eidx) == 0:
            break
        dst = targets[eidx]
        src = batch.sources_per_edge()
        # settle the next level
        fresh = dst[levels[dst] < 0]
        if len(fresh):
            levels[np.unique(fresh)] = level + 1
        # accumulate sigma over edges landing exactly one level down
        on_level = levels[dst] == level + 1
        np.add.at(sigma, dst[on_level], sigma[src[on_level]])
        frontier = np.unique(fresh)
        level += 1

    # ---------------- backward phase ----------------
    delta = np.zeros(n, dtype=np.float64)
    for frontier in reversed(level_frontiers[:-1] if len(level_frontiers) > 1 else []):
        batch = scheduler.batch(frontier)
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1
        edges_processed += batch.total_edges

        eidx = batch.edge_indices()
        if len(eidx) == 0:
            continue
        dst = targets[eidx]
        src = batch.sources_per_edge()
        down = (levels[dst] == levels[src] + 1) & (sigma[dst] > 0)
        contrib = np.zeros(len(eidx), dtype=np.float64)
        contrib[down] = (
            sigma[src[down]] / sigma[dst[down]] * (1.0 + delta[dst[down]])
        )
        np.add.at(delta, src, contrib)

    centrality = delta.copy()
    centrality[source] = 0.0
    return BCResult(
        centrality=centrality,
        levels=levels,
        sigma=sigma,
        num_iterations=iterations,
        converged=True,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
    )


def bc_lanes(
    target: Target,
    sources,
    *,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> np.ndarray:
    """Per-source BC contributions, all sources in one lane pass.

    Returns an ``(n, len(sources))`` matrix whose column ``k`` equals
    ``bc(target, sources[k], options=options).centrality`` bitwise:
    both Brandes phases run on the *union* of the per-lane frontiers,
    with per-lane level masks gating every edge so lanes only
    accumulate the exact terms their scalar run would — extra union
    nodes contribute literal ``0.0``, which leaves IEEE sums unchanged.
    Levels are per lane (an ``(n, B)`` matrix), so lanes at different
    BFS depths coexist in one sweep.
    """
    scheduler = resolve_scheduler(target)
    graph = scheduler.graph
    n = graph.num_nodes
    targets = graph.targets
    srcs = np.asarray(sources, dtype=np.int64)
    num_lanes = len(srcs)
    if num_lanes == 0:
        return np.zeros((n, 0))
    lanes = np.arange(num_lanes, dtype=np.int64)

    levels = np.full((n, num_lanes), -1, dtype=np.int64)
    sigma = np.zeros((n, num_lanes), dtype=np.float64)
    frontier_mask = np.zeros((n, num_lanes), dtype=bool)
    levels[srcs, lanes] = 0
    sigma[srcs, lanes] = 1.0
    frontier_mask[srcs, lanes] = True

    union_frontiers = []
    level = 0
    iterations = 0

    # ---------------- forward phase (all lanes) ----------------
    while frontier_mask.any() and iterations < options.max_iterations:
        union = np.flatnonzero(frontier_mask.any(axis=1)).astype(NODE_DTYPE)
        union_frontiers.append(union)
        batch = scheduler.batch(union)
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1

        eidx = batch.edge_indices()
        if len(eidx) == 0:
            break
        dst = targets[eidx]
        src = batch.sources_per_edge()
        # a lane participates in an edge only when its source sits in
        # that lane's frontier (level == current) — the union batch
        # carries edges other lanes do not want.
        src_on_level = levels[src] == level
        discovered = src_on_level & (levels[dst] < 0)
        new_mask = np.zeros((n, num_lanes), dtype=bool)
        np.logical_or.at(new_mask, dst, discovered)
        fresh_rows, fresh_lanes = np.nonzero(new_mask)
        levels[fresh_rows, fresh_lanes] = level + 1
        # sigma over edges landing exactly one level down, per lane
        on_level = src_on_level & (levels[dst] == level + 1)
        np.add.at(sigma, dst, np.where(on_level, sigma[src], 0.0))
        frontier_mask = new_mask
        level += 1

    # ---------------- backward phase (all lanes) ----------------
    delta = np.zeros((n, num_lanes), dtype=np.float64)
    deepest = len(union_frontiers) - 1
    for lvl in range(deepest - 1, -1, -1):
        union = union_frontiers[lvl]
        batch = scheduler.batch(union)
        if simulator is not None:
            simulator.record_iteration(batch.trace())
        iterations += 1

        eidx = batch.edge_indices()
        if len(eidx) == 0:
            continue
        dst = targets[eidx]
        src = batch.sources_per_edge()
        down = (
            (levels[src] == lvl)
            & (levels[dst] == lvl + 1)
            & (sigma[dst] > 0)
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            raw = sigma[src] / sigma[dst] * (1.0 + delta[dst])
        np.add.at(delta, src, np.where(down, raw, 0.0))

    centrality = delta.copy()
    centrality[srcs, lanes] = 0.0
    if simulator is not None:
        simulator.finish()
    return centrality
