""""Hardwired" GPU graph primitives (§6.1's deferred comparison).

The paper compares its framework against general systems in Table 4
and notes that comparisons with *specific*, hand-tuned primitives —
Merrill et al.'s BFS, Davidson et al.'s SSSP, ECL-CC, Elsen &
Vaidyanathan's PageRank — are left to the project website.  This
module implements those four primitives' algorithmic cores so the
benchmark suite can run that comparison too:

* :func:`direction_optimizing_bfs` — Beamer-style push/pull switching
  (the heart of Merrill-class BFS performance);
* :func:`delta_stepping_sssp` — bucketed light/heavy relaxation
  (Davidson et al. / Meyer & Sanders);
* :func:`pointer_jumping_cc` — hooking + pointer jumping (the ECL-CC
  family), converging in O(log n) rounds instead of O(diameter);
* :func:`gas_pagerank` — gather-apply-scatter PR over in-edges
  (vertexAPI2 style).

Each computes exact results with numpy and, when given a simulator,
emits work traces that reflect its own parallelisation strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import EngineError
from repro.gpu.metrics import RunMetrics
from repro.gpu.simulator import GPUSimulator
from repro.gpu.warp import WorkTrace
from repro.graph.csr import CSRGraph, NODE_DTYPE
from repro.indexing import ranges_to_indices, segment_ids


@dataclass
class HardwiredResult:
    """Outcome of a hardwired primitive run."""

    values: np.ndarray
    num_iterations: int
    converged: bool
    metrics: Optional[RunMetrics] = None
    edges_processed: int = 0
    notes: Optional[dict] = None


def _edge_parallel_trace(num_edges: int) -> WorkTrace:
    """One thread per edge, consecutive slots: the coalesced launch of
    scan-based hardwired kernels."""
    return WorkTrace.uniform(num_edges, 1)


def _node_trace(starts: np.ndarray, counts: np.ndarray) -> WorkTrace:
    return WorkTrace(
        np.asarray(counts, dtype=np.int64),
        np.asarray(starts, dtype=np.int64),
        np.ones(len(counts), dtype=np.int64),
    )


# ---------------------------------------------------------------------------
# Direction-optimizing BFS
# ---------------------------------------------------------------------------
def direction_optimizing_bfs(
    graph: CSRGraph,
    source: int,
    *,
    alpha: float = 14.0,
    simulator: Optional[GPUSimulator] = None,
) -> HardwiredResult:
    """Beamer/Merrill-style BFS: top-down until the frontier is heavy,
    then bottom-up.

    Top-down levels expand the frontier edge-parallel (fully
    coalesced).  Once the frontier's out-edges exceed ``1/alpha`` of
    the unexplored edges, levels switch to bottom-up: every unvisited
    node scans its *in*-edges and stops at the first visited parent —
    the early exit that makes the dense middle levels of power-law
    BFS nearly free.
    """
    if not 0 <= source < graph.num_nodes:
        raise EngineError(f"source {source} out of range")
    n = graph.num_nodes
    reverse = graph.reverse()
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = np.asarray([source], dtype=NODE_DTYPE)
    level = 0
    iterations = 0
    edges_processed = 0
    switches = 0

    degrees = graph.out_degrees()
    while len(frontier):
        iterations += 1
        frontier_edges = int(degrees[frontier].sum())
        unvisited = np.flatnonzero(np.isinf(dist))
        remaining_edges = int(degrees[unvisited].sum()) if len(unvisited) else 0

        bottom_up = frontier_edges * alpha > max(remaining_edges, 1)
        if bottom_up:
            switches += 1
            examined, fresh = _bottom_up_step(reverse, dist, level)
            edges_processed += int(examined.sum())
            if simulator is not None and len(unvisited):
                starts = reverse.offsets[unvisited]
                simulator.record_iteration(_node_trace(starts, examined))
        else:
            starts = graph.offsets[frontier]
            counts = graph.offsets[frontier + 1] - starts
            slots = ranges_to_indices(starts, counts)
            neighbors = graph.targets[slots]
            fresh = np.unique(neighbors[np.isinf(dist[neighbors])])
            edges_processed += len(slots)
            if simulator is not None:
                simulator.record_iteration(_edge_parallel_trace(len(slots)))
        if len(fresh) == 0:
            break
        level += 1
        dist[fresh] = level
        frontier = fresh

    return HardwiredResult(
        values=dist, num_iterations=iterations, converged=True,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
        notes={"bottom_up_levels": switches},
    )


def _bottom_up_step(reverse: CSRGraph, dist: np.ndarray, level: int):
    """One bottom-up level: each unvisited node scans in-edges until it
    finds a level-``level`` parent.  Returns (edges examined per
    unvisited node, newly visited node ids)."""
    unvisited = np.flatnonzero(np.isinf(dist))
    starts = reverse.offsets[unvisited]
    counts = reverse.offsets[unvisited + 1] - starts
    slots = ranges_to_indices(starts, counts)
    if len(slots) == 0:
        return np.zeros(len(unvisited), dtype=np.int64), np.zeros(0, dtype=NODE_DTYPE)
    seg = segment_ids(counts)
    parents_on_level = dist[reverse.targets[slots]] == level
    # position of the first hit within each segment (early exit point)
    position = np.arange(len(slots)) - np.repeat(
        np.concatenate([[0], np.cumsum(counts)[:-1]])[counts > 0],
        counts[counts > 0],
    )
    sentinel = len(slots) + 1
    hit_pos = np.where(parents_on_level, position, sentinel)
    first_hit = np.full(len(unvisited), sentinel, dtype=np.int64)
    np.minimum.at(first_hit, seg, hit_pos)
    found = first_hit < sentinel
    examined = np.where(found, first_hit + 1, counts)
    fresh = unvisited[found]
    return examined.astype(np.int64), fresh.astype(NODE_DTYPE)


# ---------------------------------------------------------------------------
# Delta-stepping SSSP
# ---------------------------------------------------------------------------
def delta_stepping_sssp(
    graph: CSRGraph,
    source: int,
    *,
    delta: Optional[float] = None,
    simulator: Optional[GPUSimulator] = None,
    max_phases: int = 100_000,
) -> HardwiredResult:
    """Meyer & Sanders Δ-stepping, the core of Davidson et al.'s GPU SSSP.

    Nodes are kept in distance buckets of width Δ.  Each bucket is
    drained by repeatedly relaxing its nodes' *light* edges (weight
    ≤ Δ, which can re-insert into the same bucket), then relaxing the
    settled nodes' *heavy* edges once.  Δ defaults to the mean edge
    weight — the standard compromise between Dijkstra (Δ→0) and
    Bellman-Ford (Δ→∞).
    """
    if graph.weights is None:
        raise EngineError("delta-stepping requires edge weights")
    if not 0 <= source < graph.num_nodes:
        raise EngineError(f"source {source} out of range")
    weights = graph.weights
    if len(weights) and weights.min() < 0:
        raise EngineError("delta-stepping requires non-negative weights")
    if delta is None:
        delta = float(weights.mean()) if len(weights) else 1.0
    if delta <= 0:
        raise EngineError("delta must be positive")

    n = graph.num_nodes
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    light = weights <= delta
    #: distance each node last pushed with; a node re-enters the
    #: current bucket whenever its distance improved since (light
    #: relaxations can re-insert into the same bucket — the defining
    #: delta-stepping subtlety).
    relaxed_at = np.full(n, np.inf)

    phases = 0
    edges_processed = 0
    bucket_index = 0
    while phases < max_phases:
        pending = np.flatnonzero(np.isfinite(dist))
        if not len(pending):
            break
        buckets = np.floor(dist[pending] / delta).astype(np.int64)
        candidates = buckets[buckets >= bucket_index]
        if not len(candidates):
            break
        bucket_index = int(candidates.min())
        in_bucket = pending[buckets == bucket_index]

        touched = np.zeros(0, dtype=NODE_DTYPE)
        # light-edge phases: drain the bucket (including re-insertions)
        while len(in_bucket):
            phases += 1
            relaxed_at[in_bucket] = dist[in_bucket]
            edges_processed += _relax(
                graph, weights, dist, in_bucket, light, simulator
            )
            touched = np.union1d(touched, in_bucket)
            current = np.flatnonzero(
                np.isfinite(dist) & (dist < bucket_index * delta + delta)
                & (dist >= bucket_index * delta)
            )
            in_bucket = current[dist[current] < relaxed_at[current]]
        # one heavy-edge phase over everything settled in this bucket
        if len(touched):
            phases += 1
            edges_processed += _relax(
                graph, weights, dist, touched, ~light, simulator
            )
        bucket_index += 1

    converged = phases < max_phases
    return HardwiredResult(
        values=dist, num_iterations=phases, converged=converged,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
        notes={"delta": delta},
    )


def _relax(graph, weights, dist, nodes, edge_mask, simulator) -> int:
    """Relax the masked edges of ``nodes``; returns edges processed."""
    starts = graph.offsets[nodes]
    counts = graph.offsets[nodes + 1] - starts
    slots = ranges_to_indices(starts, counts)
    if len(slots) == 0:
        return 0
    keep = edge_mask[slots]
    slots = slots[keep]
    src = np.repeat(nodes, counts)[keep]
    if simulator is not None:
        # Davidson et al. process relaxations edge-parallel after a scan.
        simulator.record_iteration(_edge_parallel_trace(len(slots)))
    if len(slots):
        candidates = dist[src] + weights[slots]
        np.minimum.at(dist, graph.targets[slots], candidates)
    return len(slots)


# ---------------------------------------------------------------------------
# Pointer-jumping connected components (ECL-CC family)
# ---------------------------------------------------------------------------
def pointer_jumping_cc(
    graph: CSRGraph,
    *,
    simulator: Optional[GPUSimulator] = None,
    max_rounds: int = 10_000,
) -> HardwiredResult:
    """Hooking + pointer jumping: components in O(log n) rounds.

    Unlike label propagation (whose round count scales with the
    component diameter — what the vertex-centric engines run), each
    round hooks every edge's larger root under the smaller and then
    fully compresses the parent forest.  This is why ECL-CC-class
    codes beat general frameworks on CC, the one exception Gunrock's
    comparison concedes — and the same exception shows up in this
    repository's bench.
    """
    n = graph.num_nodes
    parent = np.arange(n, dtype=np.int64)
    src, dst, _ = graph.to_coo()
    rounds = 0
    edges_processed = 0
    while rounds < max_rounds:
        rounds += 1
        edges_processed += len(src)
        if simulator is not None:
            simulator.record_iteration(_edge_parallel_trace(len(src)))
        ru, rv = parent[src], parent[dst]
        hi = np.maximum(ru, rv)
        lo = np.minimum(ru, rv)
        before = parent.copy()
        np.minimum.at(parent, hi, lo)
        # pointer jumping to full compression
        while True:
            jumped = parent[parent]
            if simulator is not None:
                simulator.record_iteration(_edge_parallel_trace(n))
            if np.array_equal(jumped, parent):
                break
            parent = jumped
        if np.array_equal(parent, before):
            break

    return HardwiredResult(
        values=parent.astype(np.float64), num_iterations=rounds,
        converged=rounds < max_rounds,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
    )


# ---------------------------------------------------------------------------
# Gather-apply-scatter PageRank (vertexAPI2 style)
# ---------------------------------------------------------------------------
def gas_pagerank(
    graph: CSRGraph,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-10,
    max_iterations: int = 100,
    simulator: Optional[GPUSimulator] = None,
) -> HardwiredResult:
    """Pull-based PR: gather ``rank/outdeg`` over in-edges, apply, repeat.

    The gather runs edge-parallel over the reverse graph with a
    segmented reduction — no atomics, fully coalesced — which is the
    structural advantage GAS systems (and CuSha) have on PR.
    """
    n = graph.num_nodes
    if n == 0:
        return HardwiredResult(np.zeros(0), 0, True,
                               simulator.finish() if simulator else None, 0)
    reverse = graph.reverse()
    degrees = graph.out_degrees().astype(np.float64)
    inv_deg = np.divide(1.0, degrees, out=np.zeros(n), where=degrees > 0)
    dangling = degrees == 0
    in_sources = reverse.targets

    rank = np.full(n, 1.0 / n)
    iterations = 0
    converged = False
    edges_processed = 0
    for _ in range(max_iterations):
        iterations += 1
        edges_processed += reverse.num_edges
        if simulator is not None:
            simulator.record_iteration(_edge_parallel_trace(reverse.num_edges))
        contrib = np.zeros(n)
        push = rank[in_sources] * inv_deg[in_sources]
        np.add.at(contrib, segment_ids(reverse.out_degrees()), push)
        dangling_mass = rank[dangling].sum() / n
        new_rank = (1.0 - damping) / n + damping * (contrib + dangling_mass)
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        if delta < tolerance:
            converged = True
            break

    return HardwiredResult(
        values=rank, num_iterations=iterations, converged=converged,
        metrics=simulator.finish() if simulator is not None else None,
        edges_processed=edges_processed,
    )
