"""The six graph analytics the paper evaluates (§6.1).

Each analytic exists in two forms:

* an **engine form** (``bfs``, ``sssp``, ``sswp``, ``cc``, ``bc``,
  ``pagerank``) expressed as a vertex program and executed by the
  push/pull engines of :mod:`repro.engine` on the original, physically
  transformed, or virtually transformed graph;
* a **reference form** (:mod:`repro.algorithms.reference`) — classic
  sequential CPU implementations used as correctness oracles by the
  test suite and the benchmark harness.
"""

from repro.algorithms.bc import bc, BCResult
from repro.algorithms.bfs import bfs
from repro.algorithms.cc import connected_components
from repro.algorithms.pagerank import pagerank
from repro.algorithms.paths import path_length, reconstruct_path, shortest_path_tree_edges
from repro.algorithms.programs import (
    BFSProgram,
    CCProgram,
    PageRankProgram,
    SSSPProgram,
    SSWPProgram,
)
from repro.algorithms.multi_source import (
    approximate_bc,
    closeness_centrality,
    multi_source_distances,
)
from repro.algorithms.sssp import sssp
from repro.algorithms.sswp import sswp

__all__ = [
    "bfs",
    "sssp",
    "sswp",
    "connected_components",
    "bc",
    "BCResult",
    "pagerank",
    "closeness_centrality",
    "approximate_bc",
    "multi_source_distances",
    "reconstruct_path",
    "path_length",
    "shortest_path_tree_edges",
    "BFSProgram",
    "SSSPProgram",
    "SSWPProgram",
    "CCProgram",
    "PageRankProgram",
]
