"""Path reconstruction from converged distance arrays.

The engines compute *distances* (the paper's analytics never need the
paths themselves), but downstream users usually want the route.  A
converged SSSP/BFS array contains enough information to rebuild any
shortest path without storing predecessors during the run: walk
backwards from the target, at each step picking an in-neighbor ``u``
with ``dist[u] + w(u, v) == dist[v]``.  This keeps the hot loops
predecessor-free (as the GPU kernels are) while making paths available
on demand.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import EngineError
from repro.graph.csr import CSRGraph


def reconstruct_path(
    graph: CSRGraph,
    distances: np.ndarray,
    source: int,
    target: int,
    *,
    reverse: Optional[CSRGraph] = None,
    tolerance: float = 1e-9,
) -> List[int]:
    """One shortest path ``source -> ... -> target`` as node ids.

    ``distances`` must be a converged SSSP (or BFS) array for
    ``source`` on ``graph``.  Returns ``[source]`` when
    ``target == source``; raises :class:`~repro.errors.EngineError`
    when the target is unreachable or the array is inconsistent.
    Ties are broken toward the smallest predecessor id, so the result
    is deterministic.
    """
    n = graph.num_nodes
    if not (0 <= source < n and 0 <= target < n):
        raise EngineError("source/target out of range")
    distances = np.asarray(distances, dtype=np.float64)
    if distances.shape != (n,):
        raise EngineError("distance array shape mismatch")
    if not np.isfinite(distances[target]):
        raise EngineError(f"target {target} is unreachable from {source}")
    if distances[source] != 0.0:
        raise EngineError("distances[source] must be 0 (wrong source array?)")

    if reverse is None:
        reverse = graph.reverse()
    weights = reverse.weights
    path = [int(target)]
    node = int(target)
    # a simple path visits at most n nodes
    for _ in range(n):
        if node == source:
            return list(reversed(path))
        start, end = reverse.edge_range(node)
        in_nbrs = reverse.targets[start:end]
        w = weights[start:end] if weights is not None else np.ones(end - start)
        consistent = np.abs(distances[in_nbrs] + w - distances[node]) <= tolerance
        candidates = in_nbrs[consistent]
        if len(candidates) == 0:
            raise EngineError(
                f"no consistent predecessor for node {node}: "
                "the distance array does not belong to this graph/source"
            )
        node = int(candidates.min())
        path.append(node)
    raise EngineError("path reconstruction exceeded |V| hops (cycle of zeros?)")


def path_length(graph: CSRGraph, path: List[int]) -> float:
    """Total weight of a node path (unit weights when unweighted).

    Raises :class:`~repro.errors.EngineError` if a consecutive pair is
    not an edge.
    """
    total = 0.0
    for u, v in zip(path, path[1:]):
        start, end = graph.edge_range(int(u))
        nbrs = graph.targets[start:end]
        hits = np.flatnonzero(nbrs == v)
        if len(hits) == 0:
            raise EngineError(f"({u}, {v}) is not an edge")
        if graph.weights is None:
            total += 1.0
        else:
            total += float(graph.weights[start + hits].min())
    return total


def shortest_path_tree_edges(
    graph: CSRGraph,
    distances: np.ndarray,
    *,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Boolean edge mask of the shortest-path DAG.

    An edge ``(u, v)`` is *tight* when ``dist[u] + w == dist[v]`` —
    the union of all shortest paths from the source.  Useful for
    betweenness-style analyses and for visualising what SSSP found.
    """
    distances = np.asarray(distances, dtype=np.float64)
    src = graph.edge_sources()
    dst = graph.targets
    w = graph.weights if graph.weights is not None else np.ones(graph.num_edges)
    finite = np.isfinite(distances[src]) & np.isfinite(distances[dst])
    tight = np.zeros(graph.num_edges, dtype=bool)
    tight[finite] = (
        np.abs(distances[src[finite]] + w[finite] - distances[dst[finite]])
        <= tolerance
    )
    return tight
