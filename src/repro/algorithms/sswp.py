"""Single-source widest path driver."""

from __future__ import annotations

from typing import Optional

from repro.algorithms._dispatch import Target, resolve_scheduler
from repro.algorithms.programs import SSWPProgram
from repro.engine.push import EngineOptions, EngineResult, run_push
from repro.gpu.simulator import GPUSimulator


def sswp(
    target: Target,
    source: int,
    *,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> EngineResult:
    """Maximum bottleneck width from ``source`` to every node.

    The source has width ``+inf``; unreachable nodes ``-inf``.
    Physically transformed graphs must carry INFINITY dumb weights
    (Corollary 3).
    """
    return run_push(
        resolve_scheduler(target), SSWPProgram(), source,
        options=options, simulator=simulator,
    )
