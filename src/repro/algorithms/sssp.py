"""Single-source shortest path driver (the paper's running example)."""

from __future__ import annotations

from typing import Optional

from repro.algorithms._dispatch import Target, resolve_scheduler
from repro.algorithms.programs import SSSPProgram
from repro.engine.push import EngineOptions, EngineResult, run_push
from repro.gpu.simulator import GPUSimulator


def sssp(
    target: Target,
    source: int,
    *,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> EngineResult:
    """Shortest-path distances from ``source`` on a weighted graph.

    This is Algorithm 2 (and, under a coalesced virtual scheduler,
    Algorithm 3): relax ``dist[v] + w`` along each out-edge, fold with
    ``atomicMin``.  Physically transformed graphs must carry ZERO dumb
    weights (Corollary 2) for the distances to match the original.
    """
    return run_push(
        resolve_scheduler(target), SSSPProgram(), source,
        options=options, simulator=simulator,
    )
