"""Multi-source analytics built on the lane-parallel engines.

Downstream adopters of a graph engine rarely stop at one traversal;
these helpers batch the paper's primitives into the derived analytics
practitioners actually ask for, all of them Tigr-schedulable because
they are compositions of the split-safe primitives:

* :func:`closeness_centrality` — harmonic closeness from per-source
  BFS/SSSP distances;
* :func:`approximate_bc` — Brandes BC estimated from sampled sources
  (the standard way full BC is made tractable, and what GPU BC
  evaluations like the paper's run per-source anyway);
* :func:`multi_source_distances` — a distance matrix slice for a set
  of sources.

Since the lane-parallel engine mode
(:func:`repro.engine.push.run_push_lanes`), a whole batch of sources
rides **one** traversal: values are an ``(n, S)`` matrix, the frontier
is the union of per-lane frontiers, and one edge gather serves every
lane.  Memory is ``O(n * S)``, so large source sets are processed in
*lane blocks* of at most :data:`DEFAULT_MAX_LANES` sources (see
``docs/multi-source.md`` for the heuristic).  Column ``k`` of a lane
run is bitwise-identical to the scalar run from ``sources[k]``, so
``mode="lanes"`` and ``mode="loop"`` return the exact same floats.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.algorithms._dispatch import Target, resolve_scheduler
from repro.algorithms.bc import bc, bc_lanes
from repro.algorithms.bfs import bfs
from repro.algorithms.programs import BFSProgram, SSSPProgram
from repro.algorithms.sssp import sssp
from repro.engine.push import EngineOptions, run_push_lanes
from repro.errors import EngineError
from repro.gpu.simulator import GPUSimulator

#: default lane-block width.  64 lanes keep the value matrix at
#: ``n * 512`` bytes — small next to the edge arrays for any graph
#: worth batching — and align with the 64-bit words of the bit-packed
#: BFS fast path (one word per node per block).
DEFAULT_MAX_LANES = 64

#: accepted execution modes for the multi-source helpers.
_MODES = ("auto", "lanes", "loop")


def _pick_sources(
    num_nodes: int,
    num_sources: Optional[int],
    sources: Optional[Sequence[int]],
    seed: Optional[int],
) -> np.ndarray:
    if sources is not None:
        picked = np.unique(np.asarray(sources, dtype=np.int64))
        if len(picked) and (picked.min() < 0 or picked.max() >= num_nodes):
            raise EngineError("source out of range")
        return picked
    if num_sources is None or num_sources >= num_nodes:
        return np.arange(num_nodes, dtype=np.int64)
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(num_nodes, size=num_sources, replace=False))


def _check_mode(mode: str) -> str:
    if mode not in _MODES:
        raise EngineError(f"mode must be one of {_MODES}, got {mode!r}")
    return mode


def resolve_multisource_mode(
    *,
    algorithm: str,
    num_sources: int,
    num_edges: int,
    max_lanes: int = DEFAULT_MAX_LANES,
) -> str:
    """What ``mode="auto"`` will run: ``"lanes"`` or ``"loop"``.

    Asks the calibrated cost model (:mod:`repro.engine.costmodel`)
    which strategy predicts cheaper for ``num_sources`` deduplicated
    sources on a graph of ``num_edges`` edges.  ``algorithm`` is the
    lane-cost family — ``"bfs"`` for unweighted hop counts (the
    bit-packed fast path), ``"sssp"`` for weighted float lanes.

    Public so the service batch planner can make the *same* choice it
    accounts for in metrics; both strategies return bitwise-identical
    floats, so this is purely a speed prediction.
    """
    from repro.engine import costmodel

    return costmodel.get_profile().choose_multisource_mode(
        algorithm=algorithm,
        num_sources=num_sources,
        num_edges=num_edges,
        max_lanes=max_lanes,
    )


def lane_blocks(
    num_sources: int, max_lanes: int = DEFAULT_MAX_LANES
) -> Iterator[slice]:
    """Slices partitioning ``num_sources`` into lane-width blocks.

    The value matrix of a lane pass costs ``O(n * S)`` memory, so a
    large source set runs as several passes of at most ``max_lanes``
    lanes each — the lane-blocking heuristic of ``docs/multi-source.md``.
    """
    if max_lanes < 1:
        raise EngineError("max_lanes must be >= 1")
    for start in range(0, num_sources, max_lanes):
        yield slice(start, min(start + max_lanes, num_sources))


def multi_source_distances(
    target: Target,
    sources: Sequence[int],
    *,
    weighted: bool = True,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
    mode: str = "auto",
    max_lanes: int = DEFAULT_MAX_LANES,
) -> np.ndarray:
    """Distance rows for each source: shape ``(len(sources), n)``.

    Uses SSSP when ``weighted`` (requires edge weights), BFS hop
    counts otherwise.

    ``mode`` selects the execution strategy: ``"lanes"`` collapses the
    whole batch into lane-parallel passes (one traversal per
    ``max_lanes`` sources, duplicates deduplicated and sliced back),
    ``"loop"`` runs one scalar engine pass per listed source, and
    ``"auto"`` (default) asks the measured cost model
    (:func:`resolve_multisource_mode`) which strategy predicts
    cheaper — lane passes still deduplicate either way.  All modes
    return bitwise-identical floats.
    """
    _check_mode(mode)
    scheduler = resolve_scheduler(target)
    n = scheduler.graph.num_nodes
    if len(sources) == 0:
        return np.zeros((0, n))

    if mode == "loop":
        runner = sssp if weighted else bfs
        rows = []
        for source in sources:
            result = runner(scheduler, int(source), options=options,
                            simulator=simulator)
            rows.append(result.values)
        return np.vstack(rows)

    requested = np.asarray(sources, dtype=np.int64)
    unique, inverse = np.unique(requested, return_inverse=True)
    if mode == "auto":
        mode = resolve_multisource_mode(
            algorithm="sssp" if weighted else "bfs",
            num_sources=len(unique),
            num_edges=scheduler.graph.num_edges,
            max_lanes=max_lanes,
        )
        if mode == "loop":
            # scalar passes over the *deduplicated* sources, mapped
            # back through ``inverse`` — duplicates still share a run,
            # and a single source reproduces the old tile shortcut
            runner = sssp if weighted else bfs
            rows = [
                runner(scheduler, int(source), options=options,
                       simulator=simulator).values
                for source in unique
            ]
            return np.vstack(rows)[inverse]

    program = SSSPProgram() if weighted else BFSProgram()
    matrix = np.empty((n, len(unique)))
    for block in lane_blocks(len(unique), max_lanes):
        result = run_push_lanes(
            scheduler, program, unique[block].tolist(),
            options=options, simulator=simulator,
        )
        matrix[:, block] = result.values
    # one row per *requested* source: duplicates share a lane's column.
    return matrix.T[inverse]


def closeness_centrality(
    target: Target,
    *,
    num_sources: Optional[int] = None,
    sources: Optional[Sequence[int]] = None,
    weighted: bool = False,
    seed: Optional[int] = 0,
    options: EngineOptions = EngineOptions(),
    mode: str = "auto",
    max_lanes: int = DEFAULT_MAX_LANES,
) -> np.ndarray:
    """Harmonic closeness: ``C(v) = sum over reached u of 1/d(u, v)``.

    Computed from traversals out of sampled sources (exact when all
    nodes are sources), then normalised by the sample fraction so the
    estimate is unbiased.  Harmonic (not classic) closeness is used
    because it is well-defined on disconnected graphs.

    The whole picked source set goes through
    :func:`multi_source_distances` in one call (lane-blocked
    traversals); rows are folded into the accumulator in source order,
    so the result is bitwise-identical to the historical per-source
    loop.
    """
    scheduler = resolve_scheduler(target)
    n = scheduler.graph.num_nodes
    picked = _pick_sources(n, num_sources, sources, seed)
    closeness = np.zeros(n)
    distances = multi_source_distances(
        scheduler, picked, weighted=weighted, options=options,
        mode=mode, max_lanes=max_lanes,
    )
    for dist in distances:
        reachable = np.isfinite(dist) & (dist > 0)
        contrib = np.zeros(n)
        np.divide(1.0, dist, out=contrib, where=reachable)
        closeness += contrib
    if len(picked) and len(picked) < n:
        closeness *= n / len(picked)
    return closeness


def approximate_bc(
    target: Target,
    *,
    num_sources: Optional[int] = None,
    sources: Optional[Sequence[int]] = None,
    seed: Optional[int] = 0,
    options: EngineOptions = EngineOptions(),
    mode: str = "auto",
    max_lanes: int = DEFAULT_MAX_LANES,
) -> np.ndarray:
    """Betweenness centrality from sampled Brandes sources.

    With all nodes as sources this is exact (matches
    :func:`repro.algorithms.reference.reference_bc` with
    ``source=None``); with a sample it is the standard unbiased
    estimator scaled by ``n / #samples``.

    ``mode="lanes"`` (or ``"auto"`` with more than one source) runs
    lane-blocked :func:`repro.algorithms.bc.bc_lanes` passes — both
    Brandes phases carry all lanes of a block at once — and folds the
    per-source columns in the same order the scalar loop would, so the
    two modes agree bitwise.
    """
    _check_mode(mode)
    scheduler = resolve_scheduler(target)
    n = scheduler.graph.num_nodes
    picked = _pick_sources(n, num_sources, sources, seed)
    centrality = np.zeros(n)
    if mode == "loop" or (mode == "auto" and len(picked) <= 1):
        for source in picked:
            centrality += bc(scheduler, int(source), options=options).centrality
    else:
        for block in lane_blocks(len(picked), max_lanes):
            columns = bc_lanes(scheduler, picked[block], options=options)
            for k in range(columns.shape[1]):
                centrality += columns[:, k]
    if len(picked) and len(picked) < n:
        centrality *= n / len(picked)
    return centrality
