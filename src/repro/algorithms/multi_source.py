"""Multi-source analytics built on the single-source engines.

Downstream adopters of a graph engine rarely stop at one traversal;
these helpers batch the paper's primitives into the derived analytics
practitioners actually ask for, all of them Tigr-schedulable because
they are compositions of the split-safe primitives:

* :func:`closeness_centrality` — harmonic closeness from per-source
  BFS/SSSP distances;
* :func:`approximate_bc` — Brandes BC estimated from sampled sources
  (the standard way full BC is made tractable, and what GPU BC
  evaluations like the paper's run per-source anyway);
* :func:`multi_source_distances` — a distance matrix slice for a set
  of sources.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.algorithms._dispatch import Target, resolve_scheduler
from repro.algorithms.bc import bc
from repro.algorithms.bfs import bfs
from repro.algorithms.sssp import sssp
from repro.engine.push import EngineOptions
from repro.errors import EngineError
from repro.gpu.simulator import GPUSimulator


def _pick_sources(
    num_nodes: int,
    num_sources: Optional[int],
    sources: Optional[Sequence[int]],
    seed: Optional[int],
) -> np.ndarray:
    if sources is not None:
        picked = np.unique(np.asarray(sources, dtype=np.int64))
        if len(picked) and (picked.min() < 0 or picked.max() >= num_nodes):
            raise EngineError("source out of range")
        return picked
    if num_sources is None or num_sources >= num_nodes:
        return np.arange(num_nodes, dtype=np.int64)
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(num_nodes, size=num_sources, replace=False))


def multi_source_distances(
    target: Target,
    sources: Sequence[int],
    *,
    weighted: bool = True,
    options: EngineOptions = EngineOptions(),
    simulator: Optional[GPUSimulator] = None,
) -> np.ndarray:
    """Distance rows for each source: shape ``(len(sources), n)``.

    Uses SSSP when ``weighted`` (requires edge weights), BFS hop
    counts otherwise.
    """
    scheduler = resolve_scheduler(target)
    runner = sssp if weighted else bfs
    rows = []
    for source in sources:
        result = runner(scheduler, int(source), options=options,
                        simulator=simulator)
        rows.append(result.values)
    return np.vstack(rows) if rows else np.zeros((0, scheduler.graph.num_nodes))


def closeness_centrality(
    target: Target,
    *,
    num_sources: Optional[int] = None,
    sources: Optional[Sequence[int]] = None,
    weighted: bool = False,
    seed: Optional[int] = 0,
    options: EngineOptions = EngineOptions(),
) -> np.ndarray:
    """Harmonic closeness: ``C(v) = sum over reached u of 1/d(u, v)``.

    Computed from traversals out of sampled sources (exact when all
    nodes are sources), then normalised by the sample fraction so the
    estimate is unbiased.  Harmonic (not classic) closeness is used
    because it is well-defined on disconnected graphs.
    """
    scheduler = resolve_scheduler(target)
    n = scheduler.graph.num_nodes
    picked = _pick_sources(n, num_sources, sources, seed)
    closeness = np.zeros(n)
    for source in picked:
        dist = multi_source_distances(
            scheduler, [int(source)], weighted=weighted, options=options
        )[0]
        contrib = np.zeros(n)
        reachable = np.isfinite(dist) & (dist > 0)
        contrib[reachable] = 1.0 / dist[reachable]
        closeness += contrib
    if len(picked) and len(picked) < n:
        closeness *= n / len(picked)
    return closeness


def approximate_bc(
    target: Target,
    *,
    num_sources: Optional[int] = None,
    sources: Optional[Sequence[int]] = None,
    seed: Optional[int] = 0,
    options: EngineOptions = EngineOptions(),
) -> np.ndarray:
    """Betweenness centrality from sampled Brandes sources.

    With all nodes as sources this is exact (matches
    :func:`repro.algorithms.reference.reference_bc` with
    ``source=None``); with a sample it is the standard unbiased
    estimator scaled by ``n / #samples``.
    """
    scheduler = resolve_scheduler(target)
    n = scheduler.graph.num_nodes
    picked = _pick_sources(n, num_sources, sources, seed)
    centrality = np.zeros(n)
    for source in picked:
        centrality += bc(scheduler, int(source), options=options).centrality
    if len(picked) and len(picked) < n:
        centrality *= n / len(picked)
    return centrality
