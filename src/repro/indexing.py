"""Vectorised ragged-range indexing helpers.

Every frontier gather in the library boils down to: given parallel
``(start, count[, stride])`` descriptors — one per active thread —
expand them into a single flat array of edge-array indices.  Doing
this with ``np.cumsum`` instead of a Python loop is what keeps the
engines fast enough to process the million-edge stand-in graphs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def ranges_to_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Expand parallel ``(start, count)`` pairs into one index array.

    ``ranges_to_indices([3, 10], [2, 3]) == [3, 4, 10, 11, 12]``.
    Zero-count ranges contribute nothing.
    """
    return strided_ranges_to_indices(starts, counts, None)


def strided_ranges_to_indices(
    starts: np.ndarray,
    counts: np.ndarray,
    strides: Optional[np.ndarray],
) -> np.ndarray:
    """Expand ``(start, count, stride)`` triples into one index array.

    Range ``i`` contributes ``start_i, start_i + stride_i,
    start_i + 2*stride_i, ...`` (``count_i`` terms).  ``strides=None``
    means unit stride everywhere.  This is the primitive behind both
    the default virtual-node edge layout (stride 1) and the
    edge-array-coalesced layout (stride = family size, Figure 12).
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if strides is None:
        strides = np.ones(len(starts), dtype=np.int64)
    else:
        strides = np.asarray(strides, dtype=np.int64)
    nonzero = counts > 0
    if not nonzero.all():
        starts, counts, strides = starts[nonzero], counts[nonzero], strides[nonzero]
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    # Per-slot increments; range boundaries get a corrective jump from
    # the previous range's last value to the next range's start.
    increments = np.repeat(strides, counts)
    increments[0] = starts[0]
    if len(starts) > 1:
        boundaries = np.cumsum(counts)[:-1]
        prev_last = starts[:-1] + strides[:-1] * (counts[:-1] - 1)
        increments[boundaries] = starts[1:] - prev_last
    return np.cumsum(increments)


def segment_ids(counts: np.ndarray) -> np.ndarray:
    """Which range each expanded slot belongs to.

    ``segment_ids([2, 0, 3]) == [0, 0, 2, 2, 2]`` — parallel to the
    output of :func:`ranges_to_indices` for the same ``counts``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    return np.repeat(np.arange(len(counts), dtype=np.int64), counts)
