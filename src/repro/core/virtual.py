"""Virtual split transformation: the virtual node array over CSR (§4).

Instead of rewriting the graph, a :class:`VirtualGraph` overlays a
*virtual layer* on the untouched physical CSR (Figure 9): every
physical node of outdegree ``d`` is represented by ``ceil(d/K)``
virtual nodes, each owning at most ``K`` of the node's edge slots.

* Computation tasks (threads) are scheduled per **virtual** node.
* Values live per **physical** node — virtual siblings read and write
  the same slot, which is the *implicit value synchronization* that
  makes the scheme correct for all push-based vertex-centric analytics
  (Theorem 2) and, with associative functions, pull-based ones
  (Theorem 3).

Two edge layouts are supported (Figures 10 and 12):

``coalesced=False``
    Virtual node ``j`` of a family owns the consecutive slots
    ``[j*K, (j+1)*K)`` of the node's edge range.  From one thread's
    view access is sequential, but a warp of siblings strides by
    ``K``.
``coalesced=True``
    Edge-array coalescing: virtual node ``j`` owns slots
    ``j, j+s, j+2s, ...`` where ``s`` is the family size, so a warp of
    siblings touches one consecutive chunk per step.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import TransformError
from repro.graph.csr import CSRGraph, NODE_DTYPE
from repro.indexing import strided_ranges_to_indices


class VirtualGraph:
    """The virtual node array of Figure 10, plus layout metadata.

    Create with :func:`virtual_transform`.  The physical graph is
    shared, never copied.

    Attributes exposed per *virtual* node id (arrays of length
    :attr:`num_virtual_nodes`):

    * :attr:`physical_ids` — ``mapv``: the owning physical node;
    * :attr:`virtual_degrees` — number of edge slots owned (≤ K);
    * :attr:`family_rank` / :attr:`family_size` — position within and
      size of the node's family (these are the ``offset`` and
      ``stride`` fields of Algorithm 3).
    """

    __slots__ = (
        "physical",
        "degree_bound",
        "coalesced",
        "physical_ids",
        "virtual_degrees",
        "family_rank",
        "family_size",
        "first_virtual",
    )

    def __init__(
        self,
        physical: CSRGraph,
        degree_bound: int,
        *,
        coalesced: bool = False,
    ) -> None:
        if degree_bound < 1:
            raise TransformError(f"degree bound K must be >= 1, got {degree_bound}")
        self.physical = physical
        self.degree_bound = int(degree_bound)
        self.coalesced = bool(coalesced)

        degrees = physical.out_degrees()
        k = self.degree_bound
        per_node = (degrees + k - 1) // k  # ceil(d/K); 0 for sinks
        #: physical node -> [first, last) range of its virtual ids.
        self.first_virtual = np.zeros(physical.num_nodes + 1, dtype=NODE_DTYPE)
        np.cumsum(per_node, out=self.first_virtual[1:])

        self.physical_ids = np.repeat(
            np.arange(physical.num_nodes, dtype=NODE_DTYPE), per_node
        )
        global_ids = np.arange(len(self.physical_ids), dtype=NODE_DTYPE)
        self.family_rank = global_ids - self.first_virtual[self.physical_ids]
        self.family_size = per_node[self.physical_ids]

        d = degrees[self.physical_ids]
        if self.coalesced:
            # slots j, j+s, j+2s, ... -> ceil((d - j) / s) of them
            s = self.family_size
            self.virtual_degrees = (d - self.family_rank + s - 1) // s
        else:
            self.virtual_degrees = np.minimum(k, d - self.family_rank * k)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_virtual_nodes(self) -> int:
        """Total virtual node count (threads launched per full sweep)."""
        return len(self.physical_ids)

    @property
    def num_physical_nodes(self) -> int:
        """Node count of the underlying physical graph."""
        return self.physical.num_nodes

    @property
    def num_edges(self) -> int:
        """Edge count — unchanged: the physical edge array is shared."""
        return self.physical.num_edges

    def max_virtual_degree(self) -> int:
        """Largest per-thread edge count; at most ``K`` by construction."""
        if self.num_virtual_nodes == 0:
            return 0
        return int(self.virtual_degrees.max(initial=0))

    # ------------------------------------------------------------------
    # Edge layout
    # ------------------------------------------------------------------
    def edge_layout(
        self, virtual_ids: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(starts, counts, strides)`` into the physical edge array.

        The ``i``-th edge slot of virtual node ``v`` is
        ``starts[v] + strides[v] * i`` for ``i < counts[v]`` — exactly
        the index arithmetic of Algorithm 3 (coalesced) or Algorithm 2
        (default).  With ``virtual_ids=None`` the layout covers every
        virtual node.
        """
        if virtual_ids is None:
            vids = slice(None)
            phys = self.physical_ids
            rank = self.family_rank
            size = self.family_size
            counts = self.virtual_degrees
        else:
            vids = np.asarray(virtual_ids, dtype=NODE_DTYPE)
            phys = self.physical_ids[vids]
            rank = self.family_rank[vids]
            size = self.family_size[vids]
            counts = self.virtual_degrees[vids]
        base = self.physical.offsets[phys]
        if self.coalesced:
            starts = base + rank
            strides = size.astype(NODE_DTYPE)
        else:
            starts = base + rank * self.degree_bound
            strides = np.ones(len(counts), dtype=NODE_DTYPE)
        return starts, counts.astype(NODE_DTYPE), strides

    def edge_indices(self, virtual_id: int) -> np.ndarray:
        """Physical edge-array indices owned by one virtual node."""
        starts, counts, strides = self.edge_layout(np.asarray([virtual_id]))
        return strided_ranges_to_indices(starts, counts, strides)

    def gather_edge_indices(
        self, virtual_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat edge indices for a batch of virtual nodes.

        Returns ``(flat_indices, counts)`` where ``flat_indices``
        concatenates each virtual node's slots in order and ``counts``
        is per-virtual-node (zero-count nodes contribute nothing).
        """
        starts, counts, strides = self.edge_layout(virtual_ids)
        return strided_ranges_to_indices(starts, counts, strides), counts

    def virtual_nodes_of(self, physical_ids: np.ndarray) -> np.ndarray:
        """All virtual ids belonging to the given physical nodes.

        Used by the worklist: when a physical node's value changes,
        *every* virtual sibling becomes active next iteration (they
        share the value that changed).
        """
        phys = np.asarray(physical_ids, dtype=NODE_DTYPE)
        starts = self.first_virtual[phys]
        counts = self.first_virtual[phys + 1] - starts
        return strided_ranges_to_indices(starts, counts, None)

    # ------------------------------------------------------------------
    # Accounting (Table 6)
    # ------------------------------------------------------------------
    def virtual_node_array_words(self) -> int:
        """Storage words of the virtual node array.

        Each entry stores ``{physicalNodeId, edgePointer}`` (Figure
        10) — two words.  Offset and stride of the coalesced layout
        are derived from the physical node's degree and ``K`` at run
        time, so they cost nothing (this matches how the paper's
        Table 6 space numbers scale).
        """
        return 2 * self.num_virtual_nodes

    def space_ratio(self) -> float:
        """Virtually-transformed CSR size over original CSR size.

        Counted in structure words: node offsets + edge array, plus
        the virtual node array for the transformed size.  Reproduces
        Table 6.
        """
        base = (self.physical.num_nodes + 1) + self.physical.num_edges
        return (base + self.virtual_node_array_words()) / base

    def __repr__(self) -> str:
        layout = "coalesced" if self.coalesced else "default"
        return (
            f"VirtualGraph(K={self.degree_bound}, {layout}, "
            f"virtual={self.num_virtual_nodes}, "
            f"physical={self.num_physical_nodes}, edges={self.num_edges})"
        )


def virtual_transform(
    graph: CSRGraph,
    degree_bound: int,
    *,
    coalesced: bool = False,
) -> VirtualGraph:
    """Build the virtual node array for ``graph`` (Figure 10 / 12).

    This is the entire "transformation" — O(|V|) time, no copy of the
    edge array — which is why Table 7 shows virtual transformation
    one to two orders of magnitude cheaper than physical UDT.
    """
    return VirtualGraph(graph, degree_bound, coalesced=coalesced)
