"""Tigr's core contribution: split transformations, physical and virtual.

Physical transformations (:mod:`repro.core.splits`,
:mod:`repro.core.udt`) rewrite the graph structure — they split every
node whose outdegree exceeds a bound *K* into a *family* of nodes with
degree ≤ *K* (§3 of the paper).  Virtual transformation
(:mod:`repro.core.virtual`) instead overlays a virtual node array on
the untouched CSR (§4), optionally with edge-array coalescing (§4.4).
"""

from repro.core.analysis import SplitProperties, predict_properties
from repro.core.dynamic import DynamicMapper
from repro.core.properties import (
    check_split_transformation,
    family_members,
    verify_degree_bound,
    verify_distance_preservation,
    verify_path_preservation,
    verify_widest_path_preservation,
)
from repro.core.splits import clique_transform, circular_transform, star_transform
from repro.core.types import TransformResult, TransformStats
from repro.core.udt import udt_transform
from repro.core.virtual import VirtualGraph, virtual_transform
from repro.core.weights import DumbWeight

__all__ = [
    "TransformResult",
    "TransformStats",
    "DumbWeight",
    "udt_transform",
    "clique_transform",
    "circular_transform",
    "star_transform",
    "VirtualGraph",
    "virtual_transform",
    "DynamicMapper",
    "SplitProperties",
    "predict_properties",
    "check_split_transformation",
    "family_members",
    "verify_degree_bound",
    "verify_distance_preservation",
    "verify_path_preservation",
    "verify_widest_path_preservation",
]
