"""Applicability of split transformations per analytic (§3.3).

The paper closes §3.3 with: "by checking the graph property
requirements, the applicability of UDT or other split transformations
for a specific graph analysis can be determined."  This module encodes
that check: every analytic declares which graph properties it relies
on, and split safety follows from whether UDT preserves all of them
(Theorem 1 and Corollaries 1–4 preserve connectivity, paths/distances,
bottlenecks and in/outdegrees; neighborhood structure is *not*
preserved — split nodes change who is whose direct neighbor).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.weights import DumbWeight


class GraphProperty(enum.Enum):
    """Graph properties an analytic's answer can depend on."""

    #: which nodes are mutually reachable (Corollary 1 preserves it).
    CONNECTIVITY = "connectivity"
    #: pairwise path distances (Corollary 2, dumb weight 0).
    DISTANCES = "distances"
    #: per-path minimum edge weight (Corollary 3, dumb weight +inf).
    BOTTLENECKS = "bottlenecks"
    #: in/outdegrees of original nodes (Corollary 4).
    DEGREES = "degrees"
    #: the exact 1-hop neighborhood of each node — NOT preserved:
    #: a split node's neighbors are distributed across its family.
    NEIGHBORHOODS = "neighborhoods"


#: properties UDT preserves, mapped to the corollary that proves it.
PRESERVED_BY_UDT: Dict[GraphProperty, str] = {
    GraphProperty.CONNECTIVITY: "Corollary 1",
    GraphProperty.DISTANCES: "Corollary 2 (dumb weight 0)",
    GraphProperty.BOTTLENECKS: "Corollary 3 (dumb weight +inf)",
    GraphProperty.DEGREES: "Corollary 4",
}


@dataclass(frozen=True)
class AnalysisRequirements:
    """What one analytic needs from the graph, and the verdict."""

    analysis: str
    requires: Tuple[GraphProperty, ...]
    #: dumb-weight policy a physical transform must use (when safe).
    dumb_weight: DumbWeight

    @property
    def split_safe(self) -> bool:
        """Whether any split transformation can preserve this analytic."""
        return all(prop in PRESERVED_BY_UDT for prop in self.requires)

    @property
    def justification(self) -> str:
        """Which corollaries carry the proof, or why it fails."""
        broken = [p for p in self.requires if p not in PRESERVED_BY_UDT]
        if broken:
            names = ", ".join(p.value for p in broken)
            return f"not split-safe: depends on {names}, which splitting destroys"
        cites = sorted({PRESERVED_BY_UDT[p] for p in self.requires})
        return "split-safe by " + ", ".join(cites)


#: the §3.3 applicability table: the six supported analytics plus the
#: named counterexamples (graph coloring, triangle counting, clique
#: detection).
REQUIREMENTS: Dict[str, AnalysisRequirements] = {
    req.analysis: req
    for req in [
        AnalysisRequirements("cc", (GraphProperty.CONNECTIVITY,), DumbWeight.NONE),
        AnalysisRequirements("bfs", (GraphProperty.DISTANCES,), DumbWeight.ZERO),
        AnalysisRequirements("sssp", (GraphProperty.DISTANCES,), DumbWeight.ZERO),
        AnalysisRequirements("bc", (GraphProperty.DISTANCES,), DumbWeight.ZERO),
        AnalysisRequirements("sswp", (GraphProperty.BOTTLENECKS,), DumbWeight.INFINITY),
        AnalysisRequirements("pr", (GraphProperty.DEGREES,), DumbWeight.NONE),
        AnalysisRequirements(
            "triangle_counting", (GraphProperty.NEIGHBORHOODS,), DumbWeight.NONE
        ),
        AnalysisRequirements(
            "graph_coloring", (GraphProperty.NEIGHBORHOODS,), DumbWeight.NONE
        ),
        AnalysisRequirements(
            "clique_detection", (GraphProperty.NEIGHBORHOODS,), DumbWeight.NONE
        ),
    ]
}


#: relax-body path-metric classes and the Theorem 1 dumb weight each
#: one demands on transformation-introduced edges.  The static
#: analyzer (:mod:`repro.analyze.programs`) classifies every
#: ``PushProgram.relax`` body into one of these and cross-checks the
#: result against :data:`PROGRAM_EXPECTATIONS`.
RELAX_CLASS_DUMB_WEIGHT: Dict[str, DumbWeight] = {
    #: ``alt = src + w`` — additive path metric (Corollary 2).
    "additive": DumbWeight.ZERO,
    #: ``alt = min(src, w)`` — bottleneck path metric (Corollary 3).
    "widest_path": DumbWeight.INFINITY,
    #: ``alt = src`` — weight-oblivious label/rank propagation.
    "propagation": DumbWeight.NONE,
}


@dataclass(frozen=True)
class ProgramExpectation:
    """What the §3.3 table expects of one ``PushProgram`` subclass.

    ``program`` is the subclass's ``name`` attribute; ``analysis`` the
    :data:`REQUIREMENTS` key it serves.  ``relax_class`` and
    ``reduce_op`` pin the (relax, reduce) pair Theorems 1 and 3
    certify — editing either side of the pair without updating this
    table is exactly the drift ``repro analyze`` exists to catch.
    """

    program: str
    analysis: str
    relax_class: str
    reduce_op: str
    #: whether the pair may run lane-parallel (multi-source mode).
    #: ``None`` means "derive from the reduction": MIN/MAX are
    #: idempotent, so union-frontier over-relaxation folds away; ADD
    #: double-counts.  Explicit ``True``/``False`` pins the verdict so
    #: ``repro analyze`` (SPLIT006) catches a reduce edit that silently
    #: flips lane safety.
    lane_safe: Optional[bool] = None

    @property
    def dumb_weight(self) -> DumbWeight:
        """The table's dumb-weight policy for the backing analysis."""
        return REQUIREMENTS[self.analysis].dumb_weight

    @property
    def lane_safe_resolved(self) -> bool:
        """The certified lane-safety verdict (explicit or derived)."""
        if self.lane_safe is not None:
            return self.lane_safe
        return self.reduce_op in ("min", "max")


#: expectations for every vertex program the engines execute, keyed by
#: the program's ``name`` attribute.
PROGRAM_EXPECTATIONS: Dict[str, ProgramExpectation] = {
    exp.program: exp
    for exp in [
        ProgramExpectation("bfs", "bfs", "additive", "min", lane_safe=True),
        ProgramExpectation("sssp", "sssp", "additive", "min", lane_safe=True),
        ProgramExpectation("sswp", "sswp", "widest_path", "max", lane_safe=True),
        ProgramExpectation("cc", "cc", "propagation", "min", lane_safe=True),
        ProgramExpectation("pagerank", "pr", "propagation", "add", lane_safe=False),
    ]
}

#: split-safe analytics with no dedicated vertex program because they
#: are composed from other programs' passes (BC runs BFS/SSSP forward
#: phases plus a dependency accumulation, §3.3 / Corollary 2).
COMPOSED_ANALYSES: Dict[str, Tuple[str, ...]] = {
    "bc": ("bfs", "sssp"),
}


@dataclass(frozen=True)
class KernelBackendExpectation:
    """The certification record of one kernel backend.

    A backend (:mod:`repro.engine.kernels`) replaces the engines'
    relax/reduce inner loops, so a wrong one corrupts every analytic
    at once.  Each registered backend must therefore declare the
    parity fixture that proves it bitwise-equal to the numpy baseline
    — rule KERN001 of ``repro analyze`` fails any backend class whose
    ``name`` is missing from this table or that has no fixture.
    """

    backend: str
    #: whether the backend JIT-compiles (numpy is the baseline).
    jit: bool
    #: the test module that asserts bitwise parity against numpy for
    #: every certified program, on every engine (push/pull/lanes/
    #: adaptive).  Empty means uncertified, which KERN001 rejects.
    parity_fixture: str


#: certification table for every registered kernel backend, keyed by
#: the backend class's ``name`` attribute.
KERNEL_BACKEND_EXPECTATIONS: Dict[str, KernelBackendExpectation] = {
    exp.backend: exp
    for exp in [
        KernelBackendExpectation(
            "numpy", jit=False, parity_fixture="tests/test_kernels.py"
        ),
        KernelBackendExpectation(
            "cjit", jit=True, parity_fixture="tests/test_kernels.py"
        ),
        KernelBackendExpectation(
            "numba", jit=True, parity_fixture="tests/test_kernels.py"
        ),
    ]
}


def is_split_safe(analysis: str) -> bool:
    """Whether physical split transformations preserve ``analysis``.

    Raises :class:`KeyError` for analytics not in the §3.3 table.
    """
    return REQUIREMENTS[analysis].split_safe


def explain(analysis: str) -> str:
    """Human-readable applicability verdict with its justification."""
    req = REQUIREMENTS[analysis]
    verdict = "SAFE" if req.split_safe else "UNSAFE"
    return f"{req.analysis}: {verdict} — {req.justification}"


def split_safe_analyses() -> Tuple[str, ...]:
    """The analytics UDT provably preserves (§3.3's positive list)."""
    return tuple(sorted(a for a, r in REQUIREMENTS.items() if r.split_safe))


def split_unsafe_analyses() -> Tuple[str, ...]:
    """The §3.3 counterexamples."""
    return tuple(sorted(a for a, r in REQUIREMENTS.items() if not r.split_safe))
