"""On-the-fly mapping reasoning — the zero-memory virtualization (§4.1).

The second virtualization design of the paper: instead of storing a
virtual node array, the mapping between virtual and physical nodes is
*recomputed* from the node-splitting logic whenever a thread needs it,
trading computation for memory.

A :class:`DynamicMapper` answers the same queries as the stored
virtual node array — "which physical node does virtual node ``v'``
belong to, and which edge slots does it own?" — using only the
physical CSR offsets and the degree bound ``K``.  The reasoning is a
binary search over the running sum of per-node virtual counts, which
it reconstructs from ``ceil(degree/K)`` without materialising it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.virtual import VirtualGraph
from repro.errors import TransformError
from repro.graph.csr import CSRGraph, NODE_DTYPE


class DynamicMapper:
    """Compute virtual↔physical mappings on demand, storing nothing.

    Equivalent in answers to :class:`~repro.core.virtual.VirtualGraph`
    with the default (non-coalesced) layout; the equivalence is
    checked by the test suite.  The only retained state is the
    physical graph reference and ``K`` — the per-query cost is an
    ``O(log |V|)`` search, the memory cost is zero, matching the
    paper's "trades off computation cost for better memory
    efficiency".
    """

    __slots__ = ("physical", "degree_bound")

    def __init__(self, physical: CSRGraph, degree_bound: int) -> None:
        if degree_bound < 1:
            raise TransformError(f"degree bound K must be >= 1, got {degree_bound}")
        self.physical = physical
        self.degree_bound = int(degree_bound)

    # ------------------------------------------------------------------
    # The reasoning runtime
    # ------------------------------------------------------------------
    def num_virtual_nodes(self) -> int:
        """Total virtual nodes — computed, not stored."""
        degrees = self.physical.out_degrees()
        k = self.degree_bound
        return int(((degrees + k - 1) // k).sum())

    def _virtual_prefix(self, physical_node: np.ndarray) -> np.ndarray:
        """Number of virtual nodes preceding each physical node.

        Reconstructed by prefix arithmetic over CSR offsets:
        ``sum(ceil(d_i / K)) = sum((offsets[i+1] - offsets[i] + K - 1) // K)``.
        The whole prefix is an O(|V|) cumsum; it is recomputed per
        call and immediately discarded (nothing cached), which is the
        design's compute-for-memory trade.
        """
        degrees = self.physical.out_degrees()
        k = self.degree_bound
        prefix = np.zeros(self.physical.num_nodes + 1, dtype=NODE_DTYPE)
        np.cumsum((degrees + k - 1) // k, out=prefix[1:])
        return prefix[physical_node]

    def resolve(self, virtual_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map virtual ids to ``(physical_id, edge_start, edge_count)``.

        The splitting logic: virtual node ``v'`` is the ``r``-th of its
        family, owning physical edge slots
        ``[offset + r*K, offset + min((r+1)*K, d))``.
        """
        vids = np.asarray(virtual_ids, dtype=NODE_DTYPE)
        degrees = self.physical.out_degrees()
        k = self.degree_bound
        prefix = np.zeros(self.physical.num_nodes + 1, dtype=NODE_DTYPE)
        np.cumsum((degrees + k - 1) // k, out=prefix[1:])
        total = int(prefix[-1])
        if len(vids) and (vids.min() < 0 or vids.max() >= total):
            raise TransformError(
                f"virtual id out of range [0, {total})"
            )
        physical = np.searchsorted(prefix, vids, side="right") - 1
        rank = vids - prefix[physical]
        starts = self.physical.offsets[physical] + rank * k
        counts = np.minimum(k, degrees[physical] - rank * k)
        return physical, starts, counts

    def physical_of(self, virtual_id: int) -> int:
        """The owning physical node of one virtual node."""
        physical, _, _ = self.resolve(np.asarray([virtual_id]))
        return int(physical[0])

    def edge_slots(self, virtual_id: int) -> np.ndarray:
        """Physical edge-array indices owned by one virtual node."""
        _, starts, counts = self.resolve(np.asarray([virtual_id]))
        return starts[0] + np.arange(counts[0], dtype=NODE_DTYPE)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def materialize(self) -> VirtualGraph:
        """Build the equivalent stored virtual node array.

        Provided for tests and for callers who decide the memory is
        worth it after all.
        """
        return VirtualGraph(self.physical, self.degree_bound, coalesced=False)

    def extra_memory_words(self) -> int:
        """Persistent extra memory of this design: none."""
        return 0
