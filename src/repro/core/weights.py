"""Dumb-weight policies for physically transformed graphs (§3.3).

A physical split transformation introduces new edges (``E_new`` in
Theorem 1).  For weighted analytics to stay correct, those edges must
contribute nothing to the metric being computed:

* additive path metrics (SSSP, BFS-as-unit-SSSP, BC distance phases)
  need weight **0** on new edges (Corollary 2);
* bottleneck path metrics (SSWP) need weight **+inf** (Corollary 3);
* connectivity analytics (CC) ignore weights entirely.
"""

from __future__ import annotations

import enum

import numpy as np


class DumbWeight(enum.Enum):
    """Weight assigned to transformation-introduced edges.

    Members
    -------
    ZERO:
        New edges cost nothing on a path sum — preserves pairwise
        distances (Corollary 2; SSSP, BFS, BC).
    INFINITY:
        New edges never constrain a path's bottleneck — preserves
        minimal edge weight along paths (Corollary 3; SSWP).
    NONE:
        The transformed graph stays unweighted (CC, plain reachability).
    """

    ZERO = "zero"
    INFINITY = "infinity"
    NONE = "none"

    @property
    def value_for_new_edges(self) -> float:
        """The numeric weight written onto ``E_new`` edges.

        Raises :class:`ValueError` for :attr:`NONE`, which produces
        unweighted graphs and therefore has no numeric value.
        """
        if self is DumbWeight.ZERO:
            return 0.0
        if self is DumbWeight.INFINITY:
            return float(np.inf)
        raise ValueError("DumbWeight.NONE does not assign numeric weights")

    @classmethod
    def for_algorithm(cls, algorithm: str) -> "DumbWeight":
        """The policy each paper analytic requires.

        ``algorithm`` is one of ``bfs``, ``sssp``, ``bc``, ``sswp``,
        ``cc``, ``pagerank`` (case-insensitive).
        """
        key = algorithm.lower()
        if key in ("bfs", "sssp", "bc"):
            return cls.ZERO
        if key == "sswp":
            return cls.INFINITY
        if key in ("cc", "pagerank", "pr"):
            return cls.NONE
        raise ValueError(f"unknown algorithm {algorithm!r}")
