"""Verifiers for the formal claims of §3 — Definition 2 through Corollary 4.

Each verifier takes an original graph and a
:class:`~repro.core.types.TransformResult` and checks one guarantee:

* :func:`check_split_transformation` — the Definition 2 contract:
  families are disjoint, original out-neighborhoods are covered, edges
  are distributed by the degree bound.
* :func:`verify_degree_bound` — the irregularity-reduction outcome.
* :func:`verify_path_preservation` — Theorem 1 / Corollary 1
  (reachability equivalence over original node ids).
* :func:`verify_distance_preservation` — Corollary 2 (dumb weight 0
  preserves pairwise distances).
* :func:`verify_widest_path_preservation` — Corollary 3 (dumb weight
  +inf preserves path bottlenecks).
* :func:`verify_in_degrees` — Corollary 4 (push-based transforms keep
  every original node's indegree).

The verifiers are used by the test suite (including hypothesis
property tests) and by ``examples/transform_playground.py``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.types import TransformResult
from repro.graph.csr import CSRGraph


def _sample_sources(graph: CSRGraph, num_sources: int, seed: Optional[int]):
    """Sampled verification sources: always includes the max-outdegree
    node (where split transformations actually act) plus random picks."""
    n = graph.num_nodes
    rng = np.random.default_rng(seed)
    sources = {int(np.argmax(graph.out_degrees()))}
    sources.update(int(s) for s in rng.integers(0, n, size=min(num_sources, n)))
    return sorted(sources)


def family_members(result: TransformResult) -> Dict[int, np.ndarray]:
    """Family membership map (root id -> member ids, root included)."""
    return result.families()


def verify_degree_bound(result: TransformResult, *, strict: bool = True) -> int:
    """Maximum outdegree of the transformed graph.

    With ``strict=True`` asserts it does not exceed the bound — true
    for UDT and ``T_circ`` (bound ``K + 1``); ``T_cliq`` and
    ``T_star`` legitimately exceed ``K`` (Table 1), so callers check
    those against their own formulas with ``strict=False``.
    """
    max_degree = result.graph.max_out_degree()
    if strict and max_degree > result.stats.degree_bound:
        raise AssertionError(
            f"degree bound violated: max degree {max_degree} > K={result.stats.degree_bound}"
        )
    return max_degree


def check_split_transformation(original: CSRGraph, result: TransformResult) -> None:
    """Assert the Definition 2 contract holds.

    Checks, for every split node ``v``:

    1. the union of the family's outgoing *original* edges equals
       ``N_v`` with multiplicity and weights (``N_B ⊇ N_v`` and
       nothing lost);
    2. family node sets are disjoint (families partition the new
       nodes);
    3. all incoming edges of ``v`` still arrive inside the family
       (at the root, in this implementation).

    Raises ``AssertionError`` with a diagnostic message on violation.
    """
    graph = result.graph
    n = result.num_original_nodes

    # (2) disjoint families: node_origin assigns each split node to
    # exactly one root by construction; verify the shape at least.
    if len(result.node_origin) != graph.num_nodes:
        raise AssertionError("node_origin length does not match transformed graph")
    if not np.array_equal(result.node_origin[:n], np.arange(n)):
        raise AssertionError("original node ids must map to themselves")

    # (1) original out-neighborhood coverage, per family.
    original_weights = original.weights
    mask = result.new_edge_mask
    sources = graph.edge_sources()
    roots = result.node_origin[sources]
    for root, members in result.families().items():
        # all original (non-new) edges emitted by this family
        fam_slots = np.flatnonzero((roots == root) & ~mask)
        fam_targets = np.sort(graph.targets[fam_slots])
        expected = np.sort(original.neighbors(root))
        if not np.array_equal(fam_targets, expected):
            raise AssertionError(
                f"family of node {root} does not cover its original neighbors"
            )
        if original_weights is not None and graph.weights is not None:
            got = np.sort(graph.weights[fam_slots])
            want = np.sort(original.edge_weights_of(root))
            if not np.allclose(got, want):
                raise AssertionError(
                    f"family of node {root} altered original edge weights"
                )

    # (3) incoming edges of split nodes still land on original ids.
    new_node_targets = graph.targets[~mask]
    internal = new_node_targets >= n
    if np.any(internal):
        raise AssertionError("an original edge points at a split node")


def _distances_over(graph: CSRGraph, source: int) -> np.ndarray:
    from repro.algorithms.reference import reference_sssp

    return reference_sssp(graph, source)


def verify_path_preservation(
    original: CSRGraph,
    result: TransformResult,
    *,
    num_sources: int = 4,
    seed: Optional[int] = 0,
) -> None:
    """Theorem 1 / Corollary 1: reachability is preserved.

    For sampled sources, the set of reachable *original* nodes must be
    identical before and after the transformation.
    """
    from repro.algorithms.reference import reference_bfs

    n = original.num_nodes
    if n == 0:
        return
    for src in _sample_sources(original, num_sources, seed):
        before = np.isfinite(reference_bfs(original, src))
        after = np.isfinite(reference_bfs(result.graph, src))[:n]
        if not np.array_equal(before, after):
            diff = np.flatnonzero(before != after)
            raise AssertionError(
                f"reachability from {src} changed for nodes {diff[:10].tolist()}"
            )


def verify_distance_preservation(
    original: CSRGraph,
    result: TransformResult,
    *,
    num_sources: int = 4,
    seed: Optional[int] = 0,
) -> None:
    """Corollary 2: with dumb weight 0, pairwise distances survive.

    Requires the transform to have been built with
    :attr:`repro.core.weights.DumbWeight.ZERO`.  Unweighted originals
    are compared as unit-weight SSSP (i.e. BFS hop counts), matching
    how the transform promotes them.
    """
    n = original.num_nodes
    if n == 0:
        return
    for src in _sample_sources(original, num_sources, seed):
        before = _distances_over(original, src)
        after = _distances_over(result.graph, src)[:n]
        if not np.allclose(before, after, equal_nan=True):
            diff = np.flatnonzero(~np.isclose(before, after))
            raise AssertionError(
                f"distances from {src} changed for nodes {diff[:10].tolist()}"
            )


def verify_widest_path_preservation(
    original: CSRGraph,
    result: TransformResult,
    *,
    num_sources: int = 4,
    seed: Optional[int] = 0,
) -> None:
    """Corollary 3: with dumb weight +inf, path bottlenecks survive."""
    from repro.algorithms.reference import reference_sswp

    n = original.num_nodes
    if n == 0:
        return
    for src in _sample_sources(original, num_sources, seed):
        before = reference_sswp(original, src)
        after = reference_sswp(result.graph, src)[:n]
        if not np.allclose(before, after, equal_nan=True):
            diff = np.flatnonzero(~np.isclose(before, after))
            raise AssertionError(
                f"path widths from {src} changed for nodes {diff[:10].tolist()}"
            )


def verify_in_degrees(original: CSRGraph, result: TransformResult) -> None:
    """Corollary 4 (push-based form): original indegrees are preserved.

    All incoming edges of a split node stay attached to the family
    root, so every original node's indegree — counting only edges from
    original, non-new sources... — must be unchanged.  New (family
    internal) edges are excluded via the edge mask.
    """
    n = result.num_original_nodes
    before = original.in_degrees()
    original_edge_targets = result.graph.targets[~result.new_edge_mask]
    after = np.bincount(original_edge_targets, minlength=result.graph.num_nodes)[:n]
    if not np.array_equal(before, after):
        diff = np.flatnonzero(before != after)
        raise AssertionError(
            f"indegrees changed for nodes {diff[:10].tolist()}"
        )
