"""The three reference split transformations of §3.1: clique, circular, star.

These realise Definition 2 with different family connection
topologies, illustrating the Table 1 trade-off between space cost,
irregularity reduction, and value-propagation speed:

============  ==========  ================  ===========
topology      space cost  irregularity red  value prop.
============  ==========  ================  ===========
``T_cliq``    high        low               fast (1 hop)
``T_circ``    low         high              slow (p-1 hops)
``T_star``    low         varies            fast (1 hop)
============  ==========  ================  ===========

Implementation notes
--------------------
* The paper leaves the assignment of the original node's *incoming*
  edges unspecified ("randomly assigned to the split nodes").  We keep
  them all at the family root — a valid member of the transformation
  class that preserves every Table 1 characteristic while keeping node
  ids stable (the root keeps the original id).
* The paper's Table 1 prints ``#new edges = ceil(d/K) - 1`` for the
  circular topology; a circular connection over ``p`` family members
  requires ``p`` edges to be strongly connected (with ``p - 1`` edges
  the last member could never propagate back), so we create the full
  cycle.  The ``max #hops = p - 1`` entry is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import TransformResult
from repro.core.udt import _FamilyEdges, _run_split
from repro.core.weights import DumbWeight
from repro.errors import TransformError


def _check_bound(degree_bound: int) -> None:
    if degree_bound < 1:
        raise TransformError(f"degree bound K must be >= 1, got {degree_bound}")


def _chunk_starts(degree: int, chunk: int) -> np.ndarray:
    """Start offsets of the ceil(degree/chunk) edge chunks."""
    return np.arange(0, degree, chunk)


def clique_transform(
    graph,
    degree_bound: int,
    *,
    dumb_weight: DumbWeight = DumbWeight.ZERO,
) -> TransformResult:
    """``T_cliq``: family members form a directed clique.

    A node of degree ``d`` becomes ``p = ceil(d/K)`` family members
    (root + ``p - 1`` new nodes), each owning one chunk of up to ``K``
    original edges plus edges to every other member: ``p(p - 1)`` new
    edges, family degree up to ``K + p - 1``, one hop to cover the
    family.
    """
    _check_bound(degree_bound)

    def build(root, nbr_ids, nbr_weights, k, next_id, dumb_value):
        fam = _FamilyEdges(next_id)
        d = len(nbr_ids)
        starts = _chunk_starts(d, k)
        members = [root] + [fam.new_node() for _ in range(len(starts) - 1)]
        for member, lo in zip(members, starts):
            for t, w in zip(nbr_ids[lo : lo + k], nbr_weights[lo : lo + k]):
                fam.add_edge(member, int(t), float(w), False)
        for a in members:
            for b in members:
                if a != b:
                    fam.add_edge(a, b, dumb_value, True)
        fam.hops = 1 if len(members) > 1 else 0
        return fam

    return _run_split(graph, degree_bound, dumb_weight, build)


def circular_transform(
    graph,
    degree_bound: int,
    *,
    dumb_weight: DumbWeight = DumbWeight.ZERO,
) -> TransformResult:
    """``T_circ``: family members form a directed cycle.

    Best irregularity reduction (family degree ≤ ``K + 1``) at the
    lowest space cost, but values need up to ``p - 1`` hops to travel
    around the family — the slow-convergence corner of the Table 1
    trade-off.
    """
    _check_bound(degree_bound)

    def build(root, nbr_ids, nbr_weights, k, next_id, dumb_value):
        fam = _FamilyEdges(next_id)
        d = len(nbr_ids)
        starts = _chunk_starts(d, k)
        members = [root] + [fam.new_node() for _ in range(len(starts) - 1)]
        for member, lo in zip(members, starts):
            for t, w in zip(nbr_ids[lo : lo + k], nbr_weights[lo : lo + k]):
                fam.add_edge(member, int(t), float(w), False)
        p = len(members)
        if p > 1:
            for i, member in enumerate(members):
                fam.add_edge(member, members[(i + 1) % p], dumb_value, True)
        fam.hops = max(0, p - 1)
        return fam

    return _run_split(graph, degree_bound, dumb_weight, build)


def star_transform(
    graph,
    degree_bound: int,
    *,
    dumb_weight: DumbWeight = DumbWeight.ZERO,
) -> TransformResult:
    """``T_star``: a hub fans out to ``ceil(d/K)`` split nodes.

    The root becomes the hub: it keeps all incoming edges, surrenders
    every original outgoing edge to the split nodes, and gains one
    edge per split node.  One hop covers the family, space cost is
    ``ceil(d/K)`` new nodes/edges, but the hub's own degree
    ``ceil(d/K)`` may still exceed ``K`` — the "hub node issue" that
    motivates UDT (Figure 6).
    """
    _check_bound(degree_bound)

    def build(root, nbr_ids, nbr_weights, k, next_id, dumb_value):
        fam = _FamilyEdges(next_id)
        d = len(nbr_ids)
        for lo in _chunk_starts(d, k):
            split = fam.new_node()
            fam.add_edge(root, split, dumb_value, True)
            for t, w in zip(nbr_ids[lo : lo + k], nbr_weights[lo : lo + k]):
                fam.add_edge(split, int(t), float(w), False)
        fam.hops = 1
        return fam

    return _run_split(graph, degree_bound, dumb_weight, build)
