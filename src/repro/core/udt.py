"""Uniform-Degree Tree (UDT) transformation — Algorithm 1 of the paper.

UDT splits every node whose outdegree exceeds the degree bound ``K``
into a tree of split nodes, each of degree exactly ``K`` (except
possibly the root), by repeatedly popping ``K`` pending children off a
queue, attaching them to a fresh node, and pushing that node back.
The construction guarantees (§3.2):

* **P1** — UDT is a split transformation (Definition 2);
* **P2** — a unique path connects the root (which keeps all incoming
  edges) to each original outgoing edge;
* **P3** — tree height grows only logarithmically, ``O(log_K d)``;
* at most **one residual node** (degree < K) per family.

Correctness for weighted analytics comes from *dumb weights* on the
tree edges (Corollaries 2–3): zero for additive path metrics, +inf
for bottleneck metrics.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from repro.core._pack import pack_with_mask
from repro.core.types import TransformResult, TransformStats
from repro.core.weights import DumbWeight
from repro.errors import TransformError
from repro.graph.csr import CSRGraph, NODE_DTYPE, WEIGHT_DTYPE


def udt_transform(
    graph: CSRGraph,
    degree_bound: int,
    *,
    dumb_weight: DumbWeight = DumbWeight.ZERO,
) -> TransformResult:
    """Apply UDT (Algorithm 1) to every high-degree node of ``graph``.

    Parameters
    ----------
    graph:
        Input graph.  May be weighted or unweighted.
    degree_bound:
        ``K >= 1``.  After the transformation every node's outdegree
        is at most ``K``.
    dumb_weight:
        Weight policy for tree-internal (new) edges.  With
        :attr:`DumbWeight.NONE` the output stays unweighted (only
        valid for connectivity-style analytics).  With ``ZERO`` or
        ``INFINITY`` an unweighted input is promoted to weights of 1.0
        on original edges, matching BFS-as-unit-SSSP semantics.

    Returns
    -------
    TransformResult
        Original node ids are preserved (family roots); split nodes
        are appended after them.

    Raises
    ------
    TransformError
        If ``degree_bound < 2``.  (With ``K = 1`` the Algorithm 1
        queue never shrinks — each new node consumes one unit and
        produces one — so UDT requires ``K >= 2``.)
    """
    if degree_bound < 2:
        raise TransformError(f"UDT requires degree bound K >= 2, got {degree_bound}")
    return _run_split(graph, degree_bound, dumb_weight, _udt_family)


# ---------------------------------------------------------------------------
# Family builders share a tiny unit vocabulary:
# a *unit* is (target_id, weight, is_new_edge, height).  Original
# out-edges start as (t, w, False, 0); a freshly created split node is
# pushed back as (new_id, dumb, True, h).  When a parent pops a unit it
# emits edge parent->target with the unit's weight/mask.
# ---------------------------------------------------------------------------

Unit = Tuple[int, float, bool, int]


def _udt_family(
    root: int,
    neighbor_ids: np.ndarray,
    neighbor_weights: np.ndarray,
    degree_bound: int,
    next_node_id: int,
    dumb_value: float,
) -> "_FamilyEdges":
    """Algorithm 1 for one high-degree node.

    Returns the family's edges and bookkeeping.  ``next_node_id`` is
    the id assigned to the first split node created here.
    """
    queue: "deque[Unit]" = deque(
        (int(t), float(w), False, 0)
        for t, w in zip(neighbor_ids, neighbor_weights)
    )
    fam = _FamilyEdges(next_node_id)
    k = degree_bound
    while len(queue) > k:
        new_node = fam.new_node()
        height = 0
        for _ in range(k):
            target, weight, is_new, h = queue.popleft()
            fam.add_edge(new_node, target, weight, is_new)
            height = max(height, h)
        queue.append((new_node, dumb_value, True, height + 1))
    height = 0
    while queue:
        target, weight, is_new, h = queue.popleft()
        fam.add_edge(root, target, weight, is_new)
        height = max(height, h)
    fam.hops = height
    return fam


class _FamilyEdges:
    """Mutable edge accumulator for one family under construction."""

    __slots__ = ("first_new_id", "num_new", "src", "dst", "wgt", "mask", "hops")

    def __init__(self, first_new_id: int) -> None:
        self.first_new_id = first_new_id
        self.num_new = 0
        self.src: List[int] = []
        self.dst: List[int] = []
        self.wgt: List[float] = []
        self.mask: List[bool] = []
        self.hops = 0

    def new_node(self) -> int:
        node = self.first_new_id + self.num_new
        self.num_new += 1
        return node

    def add_edge(self, src: int, dst: int, weight: float, is_new: bool) -> None:
        self.src.append(src)
        self.dst.append(dst)
        self.wgt.append(weight)
        self.mask.append(is_new)

    @property
    def num_new_edges(self) -> int:
        return sum(self.mask)


def _run_split(graph, degree_bound, dumb_weight, family_builder) -> TransformResult:
    """Shared driver: apply ``family_builder`` to each high-degree node.

    Used by UDT here and by the clique/circular/star transforms in
    :mod:`repro.core.splits` — they differ only in how a single
    family is wired.
    """
    n = graph.num_nodes
    degrees = graph.out_degrees()
    high = np.flatnonzero(degrees > degree_bound)

    weighted_out = dumb_weight is not DumbWeight.NONE or graph.is_weighted
    if graph.is_weighted:
        base_weights = graph.weights
    else:
        # Promote unweighted input: original edges weigh 1 (BFS hop).
        base_weights = np.ones(graph.num_edges, dtype=WEIGHT_DTYPE)
    if dumb_weight is DumbWeight.NONE:
        dumb_value = 0.0  # written only into weighted outputs (CC ignores)
    else:
        dumb_value = dumb_weight.value_for_new_edges

    # Edges of nodes that are NOT split survive verbatim.
    keep_mask = np.repeat(degrees <= degree_bound, degrees)
    src_parts = [graph.edge_sources()[keep_mask]]
    dst_parts = [graph.targets[keep_mask]]
    wgt_parts = [base_weights[keep_mask]]
    msk_parts = [np.zeros(int(keep_mask.sum()), dtype=bool)]

    next_id = n
    total_new_nodes = 0
    total_new_edges = 0
    max_hops = 0
    origin_tail: List[np.ndarray] = []

    for root in high:
        fam = family_builder(
            int(root),
            graph.neighbors(int(root)),
            base_weights[graph.offsets[root] : graph.offsets[root + 1]],
            degree_bound,
            next_id,
            dumb_value,
        )
        src_parts.append(np.asarray(fam.src, dtype=NODE_DTYPE))
        dst_parts.append(np.asarray(fam.dst, dtype=NODE_DTYPE))
        wgt_parts.append(np.asarray(fam.wgt, dtype=WEIGHT_DTYPE))
        msk_parts.append(np.asarray(fam.mask, dtype=bool))
        if fam.num_new:
            origin_tail.append(np.full(fam.num_new, root, dtype=NODE_DTYPE))
        next_id += fam.num_new
        total_new_nodes += fam.num_new
        total_new_edges += fam.num_new_edges
        max_hops = max(max_hops, fam.hops)

    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    wgt = np.concatenate(wgt_parts) if weighted_out else None
    msk = np.concatenate(msk_parts)
    new_graph, sorted_mask = pack_with_mask(src, dst, wgt, msk, next_id)

    node_origin = np.concatenate(
        [np.arange(n, dtype=NODE_DTYPE)] + origin_tail
    ) if origin_tail else np.arange(n, dtype=NODE_DTYPE)

    stats = TransformStats(
        degree_bound=degree_bound,
        num_families=len(high),
        new_nodes=total_new_nodes,
        new_edges=total_new_edges,
        max_degree_after=new_graph.max_out_degree(),
        max_family_hops=max_hops,
    )
    return TransformResult(
        graph=new_graph,
        node_origin=node_origin,
        new_edge_mask=sorted_mask,
        num_original_nodes=n,
        stats=stats,
    )
