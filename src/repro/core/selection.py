"""Degree-bound selection heuristics (§5, "Selection of K").

The paper: *"Degree bound K can be tuned based on graph algorithms
and graph characteristics... for virtual graph transformation, we
only observed marginal improvements by tuning K.  Hence, for
simplicity, we empirically choose K = 10... By contrast, for physical
graph transformation (UDT)... the best value of K primarily depends
on the degree distribution.  In practice, we use a simple heuristic
that pre-defines a mapping between K and the maximum degree of a
graph."*

These are that fixed constant and that mapping, calibrated against
this repository's K-sweep ablations
(``benchmarks/bench_ablations.py``): the physical optimum tracks
``d_max`` sub-linearly, doubling roughly every 4× of maximum degree.
"""

from __future__ import annotations

import math

from repro.graph.csr import CSRGraph

#: the paper's single global bound for virtual transformation (§5).
VIRTUAL_DEGREE_BOUND = 10

#: clamp range for the physical heuristic.
MIN_PHYSICAL_K = 8
MAX_PHYSICAL_K = 512
#: d_max at (and below) which the minimum bound applies.
BASE_DMAX = 1024


def choose_virtual_k(graph: CSRGraph) -> int:
    """K for Tigr-V / Tigr-V+: the paper's constant 10.

    Tuning buys only marginal change (the K-sweep ablation confirms a
    monotone, shallow curve), so no per-graph logic is warranted.
    """
    return VIRTUAL_DEGREE_BOUND


def choose_physical_k(graph: CSRGraph) -> int:
    """K for UDT, from the maximum outdegree.

    ``K = 8 · 2^floor(log4(d_max / 1024))`` clamped to [8, 512]: the
    bound doubles every 4× of ``d_max``, matching the interior optima
    the physical K-sweep finds on the stand-ins (and the paper's own
    per-dataset choices, which grow with d_max in Table 3).
    """
    d_max = graph.max_out_degree()
    if d_max <= BASE_DMAX:
        return MIN_PHYSICAL_K
    doublings = int(math.floor(math.log(d_max / BASE_DMAX, 4))) + 1
    return int(min(MAX_PHYSICAL_K, MIN_PHYSICAL_K * 2 ** doublings))
