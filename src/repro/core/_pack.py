"""Internal: pack COO edges plus parallel metadata into a CSR graph.

Like :func:`repro.graph.builder.from_arrays`, but also carries the
``new_edge_mask`` metadata through the stable source sort so transform
modules can report which CSR slots hold transformation-introduced
edges.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, NODE_DTYPE


def pack_with_mask(
    sources: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray],
    new_edge_mask: np.ndarray,
    num_nodes: int,
) -> Tuple[CSRGraph, np.ndarray]:
    """Stable-sort COO arrays by source and build ``(graph, mask)``."""
    sources = np.asarray(sources, dtype=NODE_DTYPE)
    targets = np.asarray(targets, dtype=NODE_DTYPE)
    order = np.argsort(sources, kind="stable")
    counts = np.bincount(sources, minlength=num_nodes)
    offsets = np.zeros(num_nodes + 1, dtype=NODE_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    graph = CSRGraph(
        offsets,
        targets[order],
        None if weights is None else np.asarray(weights)[order],
        validate=False,
    )
    return graph, np.asarray(new_edge_mask, dtype=bool)[order]
