"""Closed-form properties of split transformations (Table 1).

Given a high-degree node of degree ``d`` and the degree bound ``K``,
these formulas predict — without running the transformation — how many
nodes/edges each topology adds, the resulting family degree, and the
maximum number of hops a value needs to cross the family.  The
Table 1 benchmark checks measured transformations against them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TransformError


@dataclass(frozen=True)
class SplitProperties:
    """One row of Table 1, for a single ``(topology, d, K)`` triple."""

    topology: str
    degree: int
    degree_bound: int
    new_nodes: int
    new_edges: int
    new_degree: int
    max_hops: int

    #: qualitative columns of Table 1, keyed by topology.
    QUALITATIVE = {
        "cliq": {"space_cost": "high", "irregularity_reduction": "low", "value_propagation": "fast"},
        "circ": {"space_cost": "low", "irregularity_reduction": "high", "value_propagation": "slow"},
        "star": {"space_cost": "low", "irregularity_reduction": "varies", "value_propagation": "fast"},
        "udt": {"space_cost": "low", "irregularity_reduction": "high", "value_propagation": "fast"},
    }

    @property
    def qualitative(self) -> dict:
        """The qualitative space/irregularity/propagation labels."""
        return dict(self.QUALITATIVE[self.topology])


def predict_properties(topology: str, degree: int, degree_bound: int) -> SplitProperties:
    """Predict the Table 1 row for one topology.

    Parameters
    ----------
    topology:
        ``"cliq"``, ``"circ"``, ``"star"`` or ``"udt"``.
    degree:
        ``d``, the outdegree of the to-split node.  Must exceed
        ``degree_bound`` (otherwise the node would not be split).
    degree_bound:
        ``K >= 1``.

    Notes
    -----
    * ``circ``'s new-edge count is ``p = ceil(d/K)`` — the full cycle
      needed for strong connectivity — where the paper's table prints
      ``p - 1`` (see :mod:`repro.core.splits`).
    * ``star``'s family degree is ``max(K, ceil(d/K))``: the hub's
      outdegree is ``ceil(d/K)`` and split nodes hold up to ``K``
      original edges (the paper prints ``max(K + 1, ceil(d/K))``).
    * ``udt`` is not in Table 1 but its properties follow from
      Algorithm 1; they are included because the benchmarks verify
      them too.
    """
    d, k = int(degree), int(degree_bound)
    if k < 1:
        raise TransformError(f"degree bound K must be >= 1, got {k}")
    if d <= k:
        raise TransformError(f"degree {d} does not exceed bound {k}; no split occurs")
    p = math.ceil(d / k)  # family size for cliq/circ; split-node count for star

    if topology == "cliq":
        return SplitProperties(
            topology, d, k,
            new_nodes=p - 1,
            new_edges=(p - 1) * p,
            new_degree=k + p - 1,
            max_hops=1,
        )
    if topology == "circ":
        return SplitProperties(
            topology, d, k,
            new_nodes=p - 1,
            new_edges=p if p > 1 else 0,
            new_degree=k + 1,
            max_hops=p - 1,
        )
    if topology == "star":
        return SplitProperties(
            topology, d, k,
            new_nodes=p,
            new_edges=p,
            new_degree=max(k, p),
            max_hops=1,
        )
    if topology == "udt":
        new_nodes = udt_new_nodes(d, k)
        return SplitProperties(
            topology, d, k,
            new_nodes=new_nodes,
            new_edges=new_nodes,  # each split node has exactly one parent edge
            new_degree=k,
            max_hops=udt_tree_height(d, k),
        )
    raise TransformError(f"unknown topology {topology!r}")


def udt_new_nodes(degree: int, degree_bound: int) -> int:
    """Number of split nodes Algorithm 1 creates for one node.

    Each new node consumes ``K`` queue units and produces one, so the
    queue shrinks by ``K - 1`` per new node, from ``d`` down to at
    most ``K``: ``ceil((d - K) / (K - 1))`` new nodes (``K >= 2``).
    For ``K = 1`` the queue shrinks by... nothing — Algorithm 1 would
    not terminate, so ``K = 1`` with ``d > 1`` is rejected.
    """
    d, k = int(degree), int(degree_bound)
    if d <= k:
        return 0
    if k == 1:
        raise TransformError("UDT requires K >= 2 for nodes of degree > 1")
    return math.ceil((d - k) / (k - 1))


def udt_tree_height(degree: int, degree_bound: int) -> int:
    """Exact height of the uniform-degree tree Algorithm 1 builds.

    Simulates the queue length evolution (heights only), which is
    O(log_K d) iterations — property P3.
    """
    d, k = int(degree), int(degree_bound)
    if d <= k:
        return 0
    if k == 1:
        raise TransformError("UDT requires K >= 2 for nodes of degree > 1")
    # Height of a unit = number of NEW edges on the longest path from a
    # node that pops it down to an original edge: original-edge units
    # have height 0, a new node's height is 1 + max height it popped.
    # The queue holds (height, count) runs in FIFO order; pops take
    # from the front, exactly as Algorithm 1 does.
    pending = [(0, d)]
    remaining = d
    while remaining > k:
        need = k
        top = 0
        while need > 0:
            h, c = pending[0]
            take = min(c, need)
            need -= take
            top = max(top, h)
            if take == c:
                pending.pop(0)
            else:
                pending[0] = (h, c - take)
        new_h = top + 1
        if pending and pending[-1][0] == new_h:
            pending[-1] = (new_h, pending[-1][1] + 1)
        else:
            pending.append((new_h, 1))
        remaining -= k - 1
    # The family's max hops is the tallest unit the root attaches.
    return max(h for h, _ in pending)


def logarithmic_height_bound(degree: int, degree_bound: int) -> float:
    """The P3 bound: tree height is O(log_K d)."""
    d, k = int(degree), int(degree_bound)
    if d <= k or k < 2:
        return 0.0
    return math.log(max(d, 2)) / math.log(k) + 2.0


def diameter_increase_bound(
    diameter: int, num_edges: int, max_degree: int, degree_bound: int
) -> float:
    """§3.2's diameter claim: the increase is at most O(D·log_K(|E|/d)).

    Every hop of an original path can detour through at most one
    family tree of height ``O(log_K d_i)``; summing the worst case
    over a diameter-length path and bounding each ``d_i`` by the
    graph's maximum degree gives ``D * (1 + log_K d_max)`` — which is
    itself at most ``D * (1 + log_K |E|)``.  Returned as the absolute
    bound on the transformed diameter (the paper states the increment
    with ``|E|/d``; the ``d_max`` form used here is tighter and
    implies it).  The empirical check lives in the test suite.
    """
    D, k = int(diameter), int(degree_bound)
    if k < 2:
        raise TransformError("UDT requires K >= 2")
    d = max(2, min(int(max_degree), int(num_edges) if num_edges else 2))
    per_hop = 1.0 + max(0.0, math.log(d) / math.log(k))
    return D * per_hop + per_hop  # +1 family on the final hop's far side
