"""Shared result types for physical split transformations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class TransformStats:
    """Accounting of what a physical transformation did.

    These are the quantities Table 1 tabulates per high-degree node,
    aggregated over the whole graph, plus the space-ratio figures of
    Table 5.
    """

    #: degree bound K the transformation enforced.
    degree_bound: int
    #: number of high-degree nodes (families) that were split.
    num_families: int
    #: split nodes added (``#new nodes`` column of Table 1, summed).
    new_nodes: int
    #: edges added (``#new edges`` column of Table 1, summed).
    new_edges: int
    #: maximum outdegree after the transformation.
    max_degree_after: int
    #: maximum hop count introduced inside any single family
    #: (``max #hops`` column of Table 1 — tree height for UDT).
    max_family_hops: int

    def space_ratio(self, original: CSRGraph, transformed: CSRGraph) -> float:
        """Size of the transformed CSR relative to the original (Table 5).

        Counted in CSR storage words: one word per node offset entry
        plus one word per edge (weights track edges one-for-one and so
        cancel out of the ratio; the paper's Table 5 reports the same
        graph-size ratio).
        """
        before = (original.num_nodes + 1) + original.num_edges
        after = (transformed.num_nodes + 1) + transformed.num_edges
        return after / before


@dataclass(frozen=True)
class TransformResult:
    """A physically transformed graph plus its provenance metadata.

    Attributes
    ----------
    graph:
        The transformed graph G'.  Nodes ``0 .. n-1`` keep their
        original identities (they are the family roots that retain all
        incoming edges); split nodes occupy ids ``n ..``.
    node_origin:
        ``int64`` array of length ``graph.num_nodes`` mapping every
        node of G' to the original node whose family it belongs to.
        For ``v < n`` this is the identity.
    new_edge_mask:
        Boolean array over G' edges marking ``E_new`` (Theorem 1):
        edges introduced by the transformation.  Original edges —
        possibly relocated to a split node — are ``False`` and keep
        their original weights.
    num_original_nodes:
        ``n``, the node count of the input graph.
    stats:
        :class:`TransformStats` accounting.
    """

    graph: CSRGraph
    node_origin: np.ndarray
    new_edge_mask: np.ndarray
    num_original_nodes: int
    stats: TransformStats

    def read_values(self, values: np.ndarray) -> np.ndarray:
        """Project a value array over G' back onto original node ids.

        Family roots keep original ids, and every transformation in
        this library keeps incoming edges at the root, so the root's
        value is the original node's value — the projection is simply
        the first ``num_original_nodes`` entries.
        """
        return np.asarray(values)[: self.num_original_nodes]

    def families(self) -> Dict[int, np.ndarray]:
        """Map each split original node to its family member ids.

        Only originals that were actually split appear; the family
        array includes the root itself.
        """
        out: Dict[int, np.ndarray] = {}
        n = self.num_original_nodes
        split_members = np.arange(n, self.graph.num_nodes)
        if len(split_members) == 0:
            return out
        origins = self.node_origin[n:]
        for root in np.unique(origins):
            members = split_members[origins == root]
            out[int(root)] = np.concatenate(
                [np.asarray([root], dtype=np.int64), members]
            )
        return out
