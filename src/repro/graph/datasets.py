"""Synthetic stand-ins for the paper's six evaluation datasets.

The paper evaluates on Pokec, LiveJournal, Hollywood, Orkut, Sinaweibo
and Twitter2010 (Table 3) — real graphs of 31–530 M edges that are not
available offline and would not fit a laptop-scale pure-Python run.
Per the substitution rule, each dataset is replaced by a **seeded
synthetic power-law stand-in** scaled down ~1000× in edge count while
preserving the properties Tigr's results depend on:

* the relative size ordering of the six graphs,
* a power-law outdegree distribution with a controlled maximum degree
  ``d_max`` whose skew ratio (``d_max`` / mean degree) matches the
  original's regime,
* a small diameter (all six originals have diameter 5–15),
* uniformly random integer edge weights for SSSP/SSWP.

Each :class:`DatasetSpec` also carries the paper's degree bounds
``K_udt`` (physical) and ``K_v`` (virtual) from Table 3, rescaled for
``K_udt`` to track the stand-in's smaller ``d_max`` via the same
heuristic the paper describes in §5 ("the best K primarily depends on
the degree distribution ... pre-defines a mapping between K and the
maximum degree").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph
from repro.graph.generators import configuration_power_law, rmat


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic stand-in dataset.

    Attributes
    ----------
    name:
        Lower-case dataset key (``"pokec"`` ... ``"twitter"``).
    paper_nodes / paper_edges / paper_dmax / paper_diameter:
        The original graph's statistics from Table 3 (for reporting).
    num_nodes / target_edges / max_degree:
        Stand-in dimensions.
    exponent:
        Power-law exponent of the outdegree distribution.
    k_udt / k_v:
        Degree bounds used by the physical (UDT) and virtual
        transformations in the benchmark harness.
    generator:
        ``"config"`` (configuration model) or ``"rmat"``.
    """

    name: str
    paper_nodes: int
    paper_edges: int
    paper_dmax: int
    paper_diameter: int
    num_nodes: int
    target_edges: int
    max_degree: int
    exponent: float
    k_udt: int
    k_v: int
    generator: str = "config"

    @property
    def mean_degree(self) -> float:
        """Intended mean outdegree of the stand-in."""
        return self.target_edges / self.num_nodes


#: The six Table 3 datasets, ordered as in the paper.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="pokec",
            paper_nodes=1_600_000, paper_edges=31_000_000,
            paper_dmax=8_800, paper_diameter=11,
            num_nodes=4_000, target_edges=31_000, max_degree=550,
            exponent=2.25, k_udt=8, k_v=10,
        ),
        DatasetSpec(
            name="livejournal",
            paper_nodes=4_000_000, paper_edges=69_000_000,
            paper_dmax=15_000, paper_diameter=13,
            num_nodes=8_000, target_edges=69_000, max_degree=950,
            exponent=2.25, k_udt=8, k_v=10,
        ),
        DatasetSpec(
            name="hollywood",
            paper_nodes=1_100_000, paper_edges=114_000_000,
            paper_dmax=11_000, paper_diameter=8,
            num_nodes=2_200, target_edges=114_000, max_degree=700,
            exponent=1.9, k_udt=16, k_v=10,
        ),
        DatasetSpec(
            name="orkut",
            paper_nodes=3_100_000, paper_edges=234_000_000,
            paper_dmax=33_000, paper_diameter=7,
            num_nodes=6_200, target_edges=234_000, max_degree=2_000,
            exponent=1.95, k_udt=16, k_v=10,
        ),
        DatasetSpec(
            name="sinaweibo",
            paper_nodes=59_000_000, paper_edges=523_000_000,
            paper_dmax=278_000, paper_diameter=5,
            num_nodes=59_000, target_edges=523_000, max_degree=17_000,
            exponent=2.0, k_udt=32, k_v=10,
        ),
        DatasetSpec(
            name="twitter",
            paper_nodes=21_000_000, paper_edges=530_000_000,
            paper_dmax=698_000, paper_diameter=15,
            num_nodes=21_000, target_edges=530_000, max_degree=14_000,
            exponent=2.0, k_udt=32, k_v=10, generator="rmat",
        ),
    ]
}

#: Default seed so every benchmark run sees the same graphs.
DEFAULT_SEED = 20180324  # ASPLOS'18 started March 24, 2018

#: Integer weight range attached to every stand-in (SSSP/SSWP inputs).
WEIGHT_RANGE: Tuple[float, float] = (1.0, 64.0)


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    seed: Optional[int] = None,
    weighted: bool = True,
) -> CSRGraph:
    """Generate the stand-in graph for a Table 3 dataset.

    Parameters
    ----------
    name:
        One of :data:`DATASETS` (case-insensitive).
    scale:
        Multiplier on the stand-in's node and edge counts (e.g. 0.25
        for quick smoke benchmarks).  Maximum degree scales with the
        square root of ``scale`` so the skew regime is preserved.
    seed:
        Random seed; defaults to :data:`DEFAULT_SEED`.
    weighted:
        Attach uniform integer weights in :data:`WEIGHT_RANGE`.

    Raises
    ------
    DatasetError
        If ``name`` is unknown or ``scale`` is non-positive.
    """
    key = name.lower()
    if key not in DATASETS:
        known = ", ".join(sorted(DATASETS))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}")
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    spec = DATASETS[key]
    seed = DEFAULT_SEED if seed is None else seed
    num_nodes = max(16, int(round(spec.num_nodes * scale)))
    target_edges = max(num_nodes, int(round(spec.target_edges * scale)))
    max_degree = max(4, min(num_nodes - 1, int(round(spec.max_degree * scale ** 0.5))))
    weight_range = WEIGHT_RANGE if weighted else None

    if spec.generator == "rmat":
        graph = rmat(
            num_nodes,
            target_edges,
            seed=seed,
            weight_range=weight_range,
        )
    else:
        mean = target_edges / num_nodes
        # min_degree anchors the bulk of the distribution below the
        # mean; the rescale inside the generator lands the edge total.
        min_degree = max(1, int(round(mean / 3)))
        graph = configuration_power_law(
            num_nodes,
            exponent=spec.exponent,
            min_degree=min_degree,
            max_degree=max_degree,
            target_edges=target_edges,
            seed=seed,
            weight_range=weight_range,
        )
    return graph


def dataset_names() -> Tuple[str, ...]:
    """The six dataset keys in Table 3 order."""
    return tuple(DATASETS.keys())
