"""Graph substrate: CSR storage, builders, I/O, generators, statistics.

This subpackage is the physical-layer foundation of the Tigr
reproduction.  Everything above it (transformations, engines,
baselines) operates on :class:`~repro.graph.csr.CSRGraph`, an immutable
compressed-sparse-row representation backed by numpy arrays — the same
representation Figure 10 of the paper virtualises.
"""

from repro.graph.builder import (
    from_edge_list,
    from_arrays,
    to_undirected,
    relabel,
    remove_self_loops,
    deduplicate_edges,
)
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset
from repro.graph.generators import (
    barabasi_albert,
    configuration_power_law,
    erdos_renyi,
    grid_2d,
    regular_ring,
    rmat,
    star,
    path_graph,
    complete_graph,
    watts_strogatz,
)
from repro.graph.formats import load_metis, load_mtx, save_metis, save_mtx
from repro.graph.interop import from_networkx, from_scipy, to_networkx, to_scipy_csr
from repro.graph.io import load_edge_list, save_edge_list, load_npz, save_npz
from repro.graph.reorder import bfs_ordered, degree_sorted
from repro.graph.validate import ValidationReport, validation_report
from repro.graph.stats import DegreeStats, degree_stats, estimate_diameter, gini_coefficient
from repro.graph.subgraph import Subgraph, ego_network, induced_subgraph, traversal_subgraph

__all__ = [
    "CSRGraph",
    "from_edge_list",
    "from_arrays",
    "to_undirected",
    "relabel",
    "remove_self_loops",
    "deduplicate_edges",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "barabasi_albert",
    "configuration_power_law",
    "erdos_renyi",
    "grid_2d",
    "regular_ring",
    "rmat",
    "star",
    "path_graph",
    "complete_graph",
    "watts_strogatz",
    "load_edge_list",
    "save_edge_list",
    "load_npz",
    "save_npz",
    "load_mtx",
    "save_mtx",
    "load_metis",
    "save_metis",
    "to_networkx",
    "from_networkx",
    "to_scipy_csr",
    "from_scipy",
    "bfs_ordered",
    "degree_sorted",
    "ValidationReport",
    "validation_report",
    "DegreeStats",
    "degree_stats",
    "estimate_diameter",
    "gini_coefficient",
    "Subgraph",
    "induced_subgraph",
    "ego_network",
    "traversal_subgraph",
]
