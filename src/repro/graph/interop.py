"""Bridges to the scientific-Python ecosystem: NetworkX and SciPy.

Two jobs:

* **interop** — move graphs between this library's CSR and
  ``networkx.DiGraph`` / ``scipy.sparse`` matrices, so adopters can
  mix Tigr processing with the tooling they already use;
* **independent validation** — the test suite uses these bridges to
  check the engines against *third-party* implementations
  (``networkx`` analytics, ``scipy.sparse.csgraph``), not just this
  repository's own reference oracles.

Both libraries are optional at runtime: the imports live inside the
functions, so the core library keeps its numpy-only dependency.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph, NODE_DTYPE, WEIGHT_DTYPE


# ---------------------------------------------------------------------------
# NetworkX
# ---------------------------------------------------------------------------
def to_networkx(graph: CSRGraph):
    """Convert to a ``networkx.DiGraph`` (weights as ``weight`` attrs).

    Parallel edges collapse (NetworkX DiGraph is simple); the smallest
    weight survives, matching
    :func:`repro.graph.builder.deduplicate_edges`' path-analytics
    convention.
    """
    import networkx as nx

    out = nx.DiGraph()
    out.add_nodes_from(range(graph.num_nodes))
    src, dst, weights = graph.to_coo()
    if weights is None:
        out.add_edges_from(zip(src.tolist(), dst.tolist()))
    else:
        for s, d, w in zip(src.tolist(), dst.tolist(), weights.tolist()):
            if out.has_edge(s, d):
                out[s][d]["weight"] = min(out[s][d]["weight"], w)
            else:
                out.add_edge(s, d, weight=w)
    return out


def from_networkx(nx_graph, *, weight_attr: Optional[str] = "weight") -> CSRGraph:
    """Convert a NetworkX (Di)Graph with integer-labelled nodes.

    Undirected inputs expand to both edge directions.  Node labels
    must be integers ``0..n-1`` (relabel with
    ``networkx.convert_node_labels_to_integers`` first otherwise).
    ``weight_attr=None`` builds an unweighted graph.
    """
    import networkx as nx

    n = nx_graph.number_of_nodes()
    labels = sorted(nx_graph.nodes())
    if labels and (labels[0] != 0 or labels[-1] != n - 1):
        raise GraphError(
            "node labels must be 0..n-1; use "
            "networkx.convert_node_labels_to_integers first"
        )
    directed = nx_graph.is_directed()
    src, dst, wgt = [], [], []
    weighted = weight_attr is not None
    for u, v, data in nx_graph.edges(data=True):
        w = float(data.get(weight_attr, 1.0)) if weighted else 1.0
        src.append(u)
        dst.append(v)
        wgt.append(w)
        if not directed and u != v:
            src.append(v)
            dst.append(u)
            wgt.append(w)
    return from_arrays(
        np.asarray(src, dtype=NODE_DTYPE),
        np.asarray(dst, dtype=NODE_DTYPE),
        np.asarray(wgt, dtype=WEIGHT_DTYPE) if weighted else None,
        num_nodes=n,
    )


# ---------------------------------------------------------------------------
# SciPy sparse
# ---------------------------------------------------------------------------
def to_scipy_csr(graph: CSRGraph):
    """The adjacency matrix as ``scipy.sparse.csr_matrix``.

    Unweighted edges store 1.0.  The CSR arrays are shared where dtype
    permits (zero-copy offsets/indices views onto the same memory).
    """
    from scipy.sparse import csr_matrix

    data = graph.weights if graph.weights is not None else np.ones(graph.num_edges)
    return csr_matrix(
        (data, graph.targets, graph.offsets),
        shape=(graph.num_nodes, graph.num_nodes),
    )


def from_scipy(matrix, *, weighted: bool = True) -> CSRGraph:
    """Build a graph from any scipy sparse matrix (square)."""
    from scipy.sparse import coo_matrix

    coo = coo_matrix(matrix)
    if coo.shape[0] != coo.shape[1]:
        raise GraphError(f"adjacency matrix must be square, got {coo.shape}")
    return from_arrays(
        coo.row.astype(NODE_DTYPE),
        coo.col.astype(NODE_DTYPE),
        coo.data.astype(WEIGHT_DTYPE) if weighted else None,
        num_nodes=coo.shape[0],
    )
