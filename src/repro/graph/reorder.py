"""Node reordering strategies — the classic alternative to Tigr.

Before data transformation, the standard mitigations for GPU graph
irregularity were *orderings*: relabel nodes so that consecutive
thread ids get similar work (degree sorting) or nearby neighborhoods
(BFS/locality ordering).  These help warp efficiency but cannot fix
the fundamental problem — a 10,000-edge hub still serialises its warp
no matter where it sits.  The reordering ablation bench quantifies
exactly that gap against Tigr.

All functions return a *permutation* (new id per old node) suitable
for :func:`repro.graph.builder.relabel`, plus convenience wrappers
that apply it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.builder import relabel
from repro.graph.csr import CSRGraph, NODE_DTYPE


def degree_sort_order(graph: CSRGraph, *, descending: bool = True) -> np.ndarray:
    """Permutation placing nodes in (out)degree order.

    With ``descending=True`` hubs get the lowest ids, so warps are
    degree-homogeneous: hub warps are uniformly slow, leaf warps
    uniformly fast — intra-warp balance without structural change.
    """
    degrees = graph.out_degrees()
    keys = -degrees if descending else degrees
    # stable sort for determinism; position in sorted order = new id
    order = np.argsort(keys, kind="stable")
    permutation = np.empty(graph.num_nodes, dtype=NODE_DTYPE)
    permutation[order] = np.arange(graph.num_nodes, dtype=NODE_DTYPE)
    return permutation


def bfs_order(graph: CSRGraph, *, source: Optional[int] = None) -> np.ndarray:
    """Permutation in BFS discovery order from ``source``.

    Groups topologically nearby nodes under nearby ids (locality
    ordering).  Unreached nodes keep their relative order after all
    reached ones.  Defaults to the max-outdegree source.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=NODE_DTYPE)
    if source is None:
        source = int(np.argmax(graph.out_degrees()))
    visited = np.zeros(n, dtype=bool)
    order = []
    queue = [source]
    visited[source] = True
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        order.append(node)
        for nbr in graph.neighbors(node):
            nbr = int(nbr)
            if not visited[nbr]:
                visited[nbr] = True
                queue.append(nbr)
    order.extend(int(v) for v in np.flatnonzero(~visited))
    permutation = np.empty(n, dtype=NODE_DTYPE)
    permutation[np.asarray(order, dtype=NODE_DTYPE)] = np.arange(n, dtype=NODE_DTYPE)
    return permutation


def random_order(graph: CSRGraph, *, seed: Optional[int] = None) -> np.ndarray:
    """A uniformly random permutation — the de-optimised control."""
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_nodes).astype(NODE_DTYPE)


def apply_order(graph: CSRGraph, permutation: np.ndarray) -> CSRGraph:
    """Relabel the graph by a permutation (alias of ``relabel``)."""
    return relabel(graph, permutation)


def degree_sorted(graph: CSRGraph, *, descending: bool = True) -> CSRGraph:
    """The graph with nodes relabelled into degree order."""
    return relabel(graph, degree_sort_order(graph, descending=descending))


def bfs_ordered(graph: CSRGraph, *, source: Optional[int] = None) -> CSRGraph:
    """The graph with nodes relabelled into BFS discovery order."""
    return relabel(graph, bfs_order(graph, source=source))
