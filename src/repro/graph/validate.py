"""Public graph-validation and hygiene-checking API.

:class:`~repro.graph.csr.CSRGraph` validates structural invariants at
construction; this module answers the *semantic* questions an
analytics pipeline asks before trusting a graph: does it contain
self-loops or parallel edges, are its weights usable for a given
analytic, is it symmetric?  :func:`validation_report` bundles all of
them for diagnostics (the CLI's ``info`` output and test fixtures use
it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class ValidationReport:
    """Semantic health summary of a graph."""

    num_nodes: int
    num_edges: int
    num_self_loops: int
    num_parallel_edges: int
    num_isolated_nodes: int
    is_symmetric: bool
    is_weighted: bool
    has_negative_weights: bool
    has_nonfinite_weights: bool

    @property
    def is_simple(self) -> bool:
        """No self-loops, no parallel edges."""
        return self.num_self_loops == 0 and self.num_parallel_edges == 0

    def suitable_for(self, algorithm: str) -> bool:
        """Whether the graph satisfies an analytic's preconditions.

        SSSP needs non-negative finite weights; SSWP needs weights at
        all; the unweighted analytics accept anything.
        """
        key = algorithm.lower()
        if key == "sssp":
            return self.is_weighted and not self.has_negative_weights \
                and not self.has_nonfinite_weights
        if key == "sswp":
            return self.is_weighted and not self.has_nonfinite_weights
        if key in ("bfs", "cc", "bc", "pr", "pagerank"):
            return True
        raise KeyError(f"unknown algorithm {algorithm!r}")


def count_self_loops(graph: CSRGraph) -> int:
    """Edges whose source equals their destination."""
    src = graph.edge_sources()
    return int(np.sum(src == graph.targets))


def count_parallel_edges(graph: CSRGraph) -> int:
    """Edges in excess of one per ordered ``(src, dst)`` pair."""
    if graph.num_edges == 0:
        return 0
    src = graph.edge_sources()
    key = src * graph.num_nodes + graph.targets
    return int(graph.num_edges - len(np.unique(key)))


def count_isolated_nodes(graph: CSRGraph) -> int:
    """Nodes with neither outgoing nor incoming edges."""
    touched = np.zeros(graph.num_nodes, dtype=bool)
    touched[graph.edge_sources()] = True
    touched[graph.targets] = True
    return int(np.sum(~touched))


def is_symmetric(graph: CSRGraph) -> bool:
    """Whether every edge has its reverse (ignoring weights)."""
    src = graph.edge_sources()
    forward = set(zip(src.tolist(), graph.targets.tolist()))
    return all((d, s) in forward for s, d in forward)


def validation_report(graph: CSRGraph) -> ValidationReport:
    """Compute the full :class:`ValidationReport`."""
    weights = graph.weights
    return ValidationReport(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_self_loops=count_self_loops(graph),
        num_parallel_edges=count_parallel_edges(graph),
        num_isolated_nodes=count_isolated_nodes(graph),
        is_symmetric=is_symmetric(graph),
        is_weighted=graph.is_weighted,
        has_negative_weights=bool(weights is not None and len(weights)
                                  and weights.min() < 0),
        has_nonfinite_weights=bool(weights is not None and len(weights)
                                   and not np.isfinite(weights).all()),
    )
