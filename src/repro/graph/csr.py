"""Immutable compressed-sparse-row (CSR) graph.

The CSR layout is the one virtualised by Tigr (Figure 10 of the
paper): a ``node`` array of edge offsets, an ``edge`` array of
destination node ids, and an optional parallel ``weight`` array.  All
arrays are numpy arrays; the graph object never mutates them after
construction, which lets transformations and virtual overlays share
the underlying storage safely.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphError

#: dtype used for node ids and edge offsets throughout the library.
NODE_DTYPE = np.int64
#: dtype used for edge weights.
WEIGHT_DTYPE = np.float64


class CSRGraph:
    """A directed graph in compressed-sparse-row form.

    Parameters
    ----------
    offsets:
        ``int64`` array of length ``num_nodes + 1``; the outgoing edges
        of node ``v`` occupy ``targets[offsets[v]:offsets[v + 1]]``.
    targets:
        ``int64`` array of destination node ids, length ``num_edges``.
    weights:
        Optional ``float64`` array parallel to ``targets``.  ``None``
        for unweighted graphs.
    validate:
        When true (the default) the constructor checks structural
        invariants and raises :class:`~repro.errors.GraphError` on
        violation.  Internal callers that construct provably valid
        arrays pass ``False`` to skip the cost.

    Notes
    -----
    Undirected graphs are represented, as in the paper, as directed
    graphs with both edge directions present
    (see :func:`repro.graph.builder.to_undirected`).
    """

    __slots__ = ("_offsets", "_targets", "_weights", "_fingerprint")

    def __init__(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        weights: Optional[np.ndarray] = None,
        *,
        validate: bool = True,
    ) -> None:
        offsets = np.ascontiguousarray(offsets, dtype=NODE_DTYPE)
        targets = np.ascontiguousarray(targets, dtype=NODE_DTYPE)
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=WEIGHT_DTYPE)
        if validate:
            _validate_csr(offsets, targets, weights)
        self._offsets = offsets
        self._targets = targets
        self._weights = weights
        self._fingerprint: Optional[str] = None
        # Freeze the backing arrays: CSRGraph is an immutable value type.
        self._offsets.setflags(write=False)
        self._targets.setflags(write=False)
        if self._weights is not None:
            self._weights.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self._offsets) - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``|E|``."""
        return len(self._targets)

    @property
    def offsets(self) -> np.ndarray:
        """The ``node`` array: edge offsets, length ``num_nodes + 1``."""
        return self._offsets

    @property
    def targets(self) -> np.ndarray:
        """The ``edge`` array: destination ids, length ``num_edges``."""
        return self._targets

    @property
    def weights(self) -> Optional[np.ndarray]:
        """Edge weights parallel to :attr:`targets`, or ``None``."""
        return self._weights

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries an edge-weight array."""
        return self._weights is not None

    # ------------------------------------------------------------------
    # Degree queries
    # ------------------------------------------------------------------
    def out_degree(self, node: int) -> int:
        """Outdegree of a single node."""
        self._check_node(node)
        return int(self._offsets[node + 1] - self._offsets[node])

    def out_degrees(self) -> np.ndarray:
        """Array of all outdegrees (length ``num_nodes``)."""
        return np.diff(self._offsets)

    def in_degrees(self) -> np.ndarray:
        """Array of all indegrees (length ``num_nodes``)."""
        return np.bincount(self._targets, minlength=self.num_nodes).astype(NODE_DTYPE)

    def max_out_degree(self) -> int:
        """The maximum outdegree (``d_max`` in Table 3)."""
        if self.num_nodes == 0:
            return 0
        return int(self.out_degrees().max(initial=0))

    # ------------------------------------------------------------------
    # Neighborhood queries
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        """Destination ids of ``node``'s outgoing edges (a view)."""
        self._check_node(node)
        return self._targets[self._offsets[node] : self._offsets[node + 1]]

    def edge_weights_of(self, node: int) -> Optional[np.ndarray]:
        """Weights of ``node``'s outgoing edges (a view), or ``None``."""
        self._check_node(node)
        if self._weights is None:
            return None
        return self._weights[self._offsets[node] : self._offsets[node + 1]]

    def edge_range(self, node: int) -> Tuple[int, int]:
        """``(start, end)`` slice of ``node``'s edges in the edge array."""
        self._check_node(node)
        return int(self._offsets[node]), int(self._offsets[node + 1])

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether a directed edge ``src -> dst`` exists."""
        return bool(np.any(self.neighbors(src) == dst))

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield every directed edge as ``(src, dst)``."""
        sources = self.edge_sources()
        for src, dst in zip(sources, self._targets):
            yield int(src), int(dst)

    def edge_sources(self) -> np.ndarray:
        """Source id of every edge slot (the COO row array)."""
        return np.repeat(np.arange(self.num_nodes, dtype=NODE_DTYPE), self.out_degrees())

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """The transpose graph (every edge flipped).

        Pull-based engines propagate along incoming edges; they run on
        the reverse graph so the CSR neighbor lists enumerate in-edges.
        Edge weights follow their edges.
        """
        sources = self.edge_sources()
        order = np.argsort(self._targets, kind="stable")
        rev_targets = sources[order]
        rev_offsets = np.zeros(self.num_nodes + 1, dtype=NODE_DTYPE)
        np.cumsum(
            np.bincount(self._targets, minlength=self.num_nodes),
            out=rev_offsets[1:],
        )
        rev_weights = None if self._weights is None else self._weights[order]
        return CSRGraph(rev_offsets, rev_targets, rev_weights, validate=False)

    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """A copy of this graph carrying the given edge weights."""
        weights = np.asarray(weights, dtype=WEIGHT_DTYPE)
        if weights.shape != (self.num_edges,):
            raise GraphError(
                f"weight array has shape {weights.shape}, expected ({self.num_edges},)"
            )
        return CSRGraph(self._offsets, self._targets, weights, validate=False)

    def without_weights(self) -> "CSRGraph":
        """A copy of this graph with the weight array dropped."""
        return CSRGraph(self._offsets, self._targets, None, validate=False)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Coordinate form ``(sources, targets, weights)``."""
        return self.edge_sources(), self._targets.copy(), (
            None if self._weights is None else self._weights.copy()
        )

    # ------------------------------------------------------------------
    # Size accounting (used by the memory-footprint models)
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Bytes consumed by the CSR arrays (offsets + targets + weights)."""
        total = self._offsets.nbytes + self._targets.nbytes
        if self._weights is not None:
            total += self._weights.nbytes
        return total

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of the graph (hex SHA-256).

        Two graphs with identical offsets, targets and weights share a
        fingerprint across processes and sessions, which is what lets
        the serving layer (:mod:`repro.service`) key transform
        artifacts on graph *content* rather than object identity.
        The digest covers the array shapes, the raw CSR bytes, and
        whether a weight array is present; it is computed once and
        cached (the backing arrays are frozen at construction).
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(
                f"csr:v1:{self.num_nodes}:{self.num_edges}:"
                f"{int(self.is_weighted)}".encode("ascii")
            )
            digest.update(self._offsets.tobytes())
            digest.update(self._targets.tobytes())
            if self._weights is not None:
                digest.update(self._weights.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if self.num_nodes != other.num_nodes or self.num_edges != other.num_edges:
            return False
        if not np.array_equal(self._offsets, other._offsets):
            return False
        if not np.array_equal(self._targets, other._targets):
            return False
        if (self._weights is None) != (other._weights is None):
            return False
        if self._weights is not None and not np.array_equal(self._weights, other._weights):
            return False
        return True

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        kind = "weighted" if self.is_weighted else "unweighted"
        return (
            f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, {kind})"
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range [0, {self.num_nodes})")


def _validate_csr(
    offsets: np.ndarray, targets: np.ndarray, weights: Optional[np.ndarray]
) -> None:
    """Check the structural invariants of a CSR triple."""
    if offsets.ndim != 1 or len(offsets) < 1:
        raise GraphError("offsets must be a 1-D array of length >= 1")
    if offsets[0] != 0:
        raise GraphError(f"offsets[0] must be 0, got {offsets[0]}")
    if np.any(np.diff(offsets) < 0):
        raise GraphError("offsets must be non-decreasing")
    if offsets[-1] != len(targets):
        raise GraphError(
            f"offsets[-1] ({offsets[-1]}) must equal the number of edges ({len(targets)})"
        )
    num_nodes = len(offsets) - 1
    if len(targets) and (targets.min() < 0 or targets.max() >= num_nodes):
        raise GraphError(
            f"edge targets must lie in [0, {num_nodes}); "
            f"found range [{targets.min()}, {targets.max()}]"
        )
    if weights is not None and weights.shape != targets.shape:
        raise GraphError(
            f"weights shape {weights.shape} does not match targets shape {targets.shape}"
        )
