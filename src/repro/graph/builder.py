"""Constructing :class:`~repro.graph.csr.CSRGraph` from edge data.

These helpers accept Python iterables or numpy arrays in coordinate
(COO) form, clean them up (dedup, self-loop removal) and pack them
into CSR.  All functions are pure: they never mutate their inputs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph, NODE_DTYPE, WEIGHT_DTYPE

EdgeLike = Union[Tuple[int, int], Tuple[int, int, float], Sequence[float]]


def from_edge_list(
    edges: Iterable[EdgeLike],
    num_nodes: Optional[int] = None,
    *,
    weighted: Optional[bool] = None,
) -> CSRGraph:
    """Build a graph from an iterable of ``(src, dst)`` or ``(src, dst, w)``.

    Parameters
    ----------
    edges:
        Edge tuples.  A mix of 2-tuples and 3-tuples is rejected.
    num_nodes:
        Total node count.  Defaults to ``max endpoint + 1``.
    weighted:
        Force a weighted (3-tuple) or unweighted (2-tuple)
        interpretation.  By default it is inferred from the first edge.

    Returns
    -------
    CSRGraph
        Edges are sorted by source; the relative order of a node's
        edges follows their order in ``edges`` (stable).
    """
    edge_list = list(edges)
    if not edge_list:
        n = int(num_nodes or 0)
        offsets = np.zeros(n + 1, dtype=NODE_DTYPE)
        targets = np.zeros(0, dtype=NODE_DTYPE)
        w = np.zeros(0, dtype=WEIGHT_DTYPE) if weighted else None
        return CSRGraph(offsets, targets, w)

    arity = len(edge_list[0])
    if weighted is None:
        weighted = arity == 3
    expected = 3 if weighted else 2
    if any(len(e) != expected for e in edge_list):
        raise GraphError(
            f"all edges must have arity {expected} "
            f"({'weighted' if weighted else 'unweighted'} graph)"
        )

    arr = np.asarray(edge_list, dtype=np.float64)
    sources = arr[:, 0].astype(NODE_DTYPE)
    targets = arr[:, 1].astype(NODE_DTYPE)
    if np.any(arr[:, 0] != sources) or np.any(arr[:, 1] != targets):
        raise GraphError("edge endpoints must be integers")
    weights = arr[:, 2].astype(WEIGHT_DTYPE) if weighted else None
    return from_arrays(sources, targets, weights, num_nodes=num_nodes)


def from_arrays(
    sources: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
    *,
    num_nodes: Optional[int] = None,
) -> CSRGraph:
    """Build a graph from parallel COO arrays.

    Edges are stably sorted by source node; per-node edge order is the
    input order, which matters for the deterministic edge mapping of
    virtual transformations (Figure 10).
    """
    sources = np.asarray(sources, dtype=NODE_DTYPE)
    targets = np.asarray(targets, dtype=NODE_DTYPE)
    if sources.shape != targets.shape or sources.ndim != 1:
        raise GraphError("sources and targets must be 1-D arrays of equal length")
    if weights is not None:
        weights = np.asarray(weights, dtype=WEIGHT_DTYPE)
        if weights.shape != sources.shape:
            raise GraphError("weights must parallel the edge arrays")
    if len(sources):
        if sources.min() < 0 or targets.min() < 0:
            raise GraphError("edge endpoints must be non-negative")
        inferred = int(max(sources.max(), targets.max())) + 1
    else:
        inferred = 0
    n = int(num_nodes) if num_nodes is not None else inferred
    if n < inferred:
        raise GraphError(
            f"num_nodes={n} too small for endpoints up to {inferred - 1}"
        )

    order = np.argsort(sources, kind="stable")
    sorted_targets = targets[order]
    sorted_weights = None if weights is None else weights[order]
    counts = np.bincount(sources, minlength=n)
    offsets = np.zeros(n + 1, dtype=NODE_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    return CSRGraph(offsets, sorted_targets, sorted_weights, validate=False)


def to_undirected(graph: CSRGraph) -> CSRGraph:
    """Symmetrise: ensure every edge exists in both directions.

    The paper treats undirected graphs as directed graphs carrying both
    directions of each edge.  Duplicate (parallel) edges that result
    from symmetrising an already-bidirectional pair are collapsed.
    Weights of collapsed duplicates keep the minimum, the conventional
    choice for path analytics.
    """
    src, dst, w = graph.to_coo()
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    all_w = None if w is None else np.concatenate([w, w])
    merged = from_arrays(all_src, all_dst, all_w, num_nodes=graph.num_nodes)
    return deduplicate_edges(merged, keep="min")


def deduplicate_edges(graph: CSRGraph, *, keep: str = "first") -> CSRGraph:
    """Collapse parallel edges.

    Parameters
    ----------
    keep:
        For weighted graphs, which weight survives among duplicates:
        ``"first"`` (input order), ``"min"``, or ``"max"``.
    """
    if keep not in ("first", "min", "max"):
        raise GraphError(f"unknown keep policy: {keep!r}")
    src, dst, w = graph.to_coo()
    if not len(src):
        return graph
    key = src * graph.num_nodes + dst
    if w is None or keep == "first":
        _, index = np.unique(key, return_index=True)
        index.sort()
        return from_arrays(src[index], dst[index], None if w is None else w[index],
                           num_nodes=graph.num_nodes)
    order = np.argsort(key, kind="stable")
    sorted_key, sorted_w = key[order], w[order]
    group_start = np.concatenate([[True], sorted_key[1:] != sorted_key[:-1]])
    group_id = np.cumsum(group_start) - 1
    num_groups = group_id[-1] + 1
    fill = np.inf if keep == "min" else -np.inf
    best = np.full(num_groups, fill, dtype=WEIGHT_DTYPE)
    if keep == "min":
        np.minimum.at(best, group_id, sorted_w)
    else:
        np.maximum.at(best, group_id, sorted_w)
    rep_index = order[np.flatnonzero(group_start)]
    return from_arrays(src[rep_index], dst[rep_index], best, num_nodes=graph.num_nodes)


def remove_self_loops(graph: CSRGraph) -> CSRGraph:
    """Drop every edge whose source equals its destination."""
    src, dst, w = graph.to_coo()
    mask = src != dst
    return from_arrays(src[mask], dst[mask], None if w is None else w[mask],
                       num_nodes=graph.num_nodes)


def relabel(graph: CSRGraph, permutation: np.ndarray) -> CSRGraph:
    """Rename nodes: new id of node ``v`` is ``permutation[v]``.

    ``permutation`` must be a bijection over ``range(num_nodes)``.
    """
    perm = np.asarray(permutation, dtype=NODE_DTYPE)
    n = graph.num_nodes
    if perm.shape != (n,):
        raise GraphError(f"permutation must have shape ({n},)")
    seen = np.zeros(n, dtype=bool)
    if len(perm) and (perm.min() < 0 or perm.max() >= n):
        raise GraphError("permutation values out of range")
    seen[perm] = True
    if not seen.all():
        raise GraphError("permutation is not a bijection")
    src, dst, w = graph.to_coo()
    return from_arrays(perm[src], perm[dst], w, num_nodes=n)
