"""Subgraph extraction: induced subgraphs and ego networks.

Standard library plumbing for analytics pipelines — slice out the
region a traversal touched, or a node's k-hop neighborhood, as a
self-contained graph with an id mapping back to the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph, NODE_DTYPE
from repro.indexing import ranges_to_indices


@dataclass(frozen=True)
class Subgraph:
    """An induced subgraph plus its id mapping.

    ``nodes[i]`` is the original id of local node ``i``; values
    computed on :attr:`graph` are projected back with
    :meth:`lift_values`.
    """

    graph: CSRGraph
    nodes: np.ndarray

    def local_id(self, original: int) -> int:
        """Local id of an original node (raises if not included)."""
        hits = np.flatnonzero(self.nodes == original)
        if len(hits) == 0:
            raise GraphError(f"node {original} is not in the subgraph")
        return int(hits[0])

    def lift_values(
        self, values: np.ndarray, num_original_nodes: int, *, fill: float = np.nan
    ) -> np.ndarray:
        """Scatter local per-node values back to original ids."""
        out = np.full(num_original_nodes, fill, dtype=np.float64)
        out[self.nodes] = values
        return out


def induced_subgraph(graph: CSRGraph, nodes: np.ndarray) -> Subgraph:
    """The subgraph induced by ``nodes``: kept edges have both
    endpoints inside, relabelled to ``0..len(nodes)-1`` (sorted
    original order)."""
    nodes = np.unique(np.asarray(nodes, dtype=NODE_DTYPE))
    if len(nodes) and (nodes[0] < 0 or nodes[-1] >= graph.num_nodes):
        raise GraphError("subgraph nodes out of range")
    local = np.full(graph.num_nodes, -1, dtype=NODE_DTYPE)
    local[nodes] = np.arange(len(nodes), dtype=NODE_DTYPE)

    src, dst, weights = graph.to_coo()
    keep = (local[src] >= 0) & (local[dst] >= 0)
    sub = from_arrays(
        local[src[keep]], local[dst[keep]],
        None if weights is None else weights[keep],
        num_nodes=len(nodes),
    )
    return Subgraph(graph=sub, nodes=nodes)


def ego_network(
    graph: CSRGraph, center: int, radius: int = 1,
    *, undirected: bool = False,
) -> Subgraph:
    """The induced subgraph within ``radius`` hops of ``center``.

    With ``undirected=True`` hops may traverse edges in either
    direction (reachability over the symmetrised graph); otherwise
    only outgoing edges expand the ball.
    """
    if not 0 <= center < graph.num_nodes:
        raise GraphError(f"center {center} out of range")
    if radius < 0:
        raise GraphError("radius must be non-negative")
    frontier = np.asarray([center], dtype=NODE_DTYPE)
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[center] = True
    reverse = graph.reverse() if undirected else None
    for _ in range(radius):
        nbrs = _out_neighbors(graph, frontier)
        if undirected:
            nbrs = np.concatenate([nbrs, _out_neighbors(reverse, frontier)])
        fresh = np.unique(nbrs[~visited[nbrs]]) if len(nbrs) else nbrs
        if len(fresh) == 0:
            break
        visited[fresh] = True
        frontier = fresh
    return induced_subgraph(graph, np.flatnonzero(visited))


def traversal_subgraph(
    graph: CSRGraph, distances: np.ndarray
) -> Tuple[Subgraph, np.ndarray]:
    """The region a traversal reached, plus its distance array.

    ``distances`` is any engine result (``inf`` = unreached); returns
    the induced subgraph over the reached nodes and the corresponding
    local distance array.
    """
    distances = np.asarray(distances, dtype=np.float64)
    if distances.shape != (graph.num_nodes,):
        raise GraphError("distance array shape mismatch")
    reached = np.flatnonzero(np.isfinite(distances))
    sub = induced_subgraph(graph, reached)
    return sub, distances[sub.nodes]


def _out_neighbors(graph: CSRGraph, nodes: np.ndarray) -> np.ndarray:
    starts = graph.offsets[nodes]
    counts = graph.offsets[nodes + 1] - starts
    return graph.targets[ranges_to_indices(starts, counts)]
