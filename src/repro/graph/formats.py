"""Interop formats: Matrix Market (.mtx) and METIS.

The paper's datasets come from SNAP (edge lists, handled by
:mod:`repro.graph.io`) and NetworkRepository, which distributes
Matrix Market files; METIS is the lingua franca of the partitioning
world (§7.2 cites it).  Supporting both makes the library usable on
the actual public corpora.

Only the coordinate (sparse) Matrix Market variant is implemented —
``matrix coordinate real|pattern|integer general|symmetric`` — which
covers every graph file in the wild repositories.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph, NODE_DTYPE, WEIGHT_DTYPE

PathLike = Union[str, "os.PathLike[str]"]


# ---------------------------------------------------------------------------
# Matrix Market
# ---------------------------------------------------------------------------
def load_mtx(path: PathLike) -> CSRGraph:
    """Read a Matrix Market coordinate file as a directed graph.

    Rows become sources, columns destinations (1-indexed in the file,
    0-indexed in the graph).  ``pattern`` matrices load unweighted;
    ``real``/``integer`` load weighted.  ``symmetric`` files expand to
    both edge directions (diagonal entries once).
    """
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphError(f"{path}: missing MatrixMarket header")
        fields = header.strip().split()
        if len(fields) < 5 or fields[1] != "matrix" or fields[2] != "coordinate":
            raise GraphError(f"{path}: only 'matrix coordinate' files are supported")
        value_type, symmetry = fields[3], fields[4]
        if value_type not in ("real", "integer", "pattern"):
            raise GraphError(f"{path}: unsupported value type {value_type!r}")
        if symmetry not in ("general", "symmetric"):
            raise GraphError(f"{path}: unsupported symmetry {symmetry!r}")

        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        try:
            rows, cols, entries = (int(x) for x in line.split())
        except ValueError as exc:
            raise GraphError(f"{path}: bad size line {line!r}") from exc

        num_nodes = max(rows, cols)
        weighted = value_type != "pattern"
        src, dst, wgt = [], [], []
        read = 0
        for raw in handle:
            text = raw.strip()
            if not text or text.startswith("%"):
                continue
            parts = text.split()
            try:
                i, j = int(parts[0]) - 1, int(parts[1]) - 1
                w = float(parts[2]) if weighted and len(parts) > 2 else 1.0
            except (ValueError, IndexError) as exc:
                raise GraphError(f"{path}: bad entry line {text!r}") from exc
            if not (0 <= i < num_nodes and 0 <= j < num_nodes):
                raise GraphError(f"{path}: entry ({i + 1}, {j + 1}) out of bounds")
            read += 1
            src.append(i)
            dst.append(j)
            wgt.append(w)
            if symmetry == "symmetric" and i != j:
                src.append(j)
                dst.append(i)
                wgt.append(w)
        if read < entries:
            raise GraphError(
                f"{path}: size line declares {entries} entries, found {read}"
            )

    return from_arrays(
        np.asarray(src, dtype=NODE_DTYPE),
        np.asarray(dst, dtype=NODE_DTYPE),
        np.asarray(wgt, dtype=WEIGHT_DTYPE) if weighted else None,
        num_nodes=num_nodes,
    )


def save_mtx(graph: CSRGraph, path: PathLike, *, comment: Optional[str] = None) -> None:
    """Write a graph as a Matrix Market coordinate file (general)."""
    value_type = "real" if graph.is_weighted else "pattern"
    src, dst, wgt = graph.to_coo()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"%%MatrixMarket matrix coordinate {value_type} general\n")
        if comment:
            for line in comment.splitlines():
                handle.write(f"% {line}\n")
        handle.write(f"{graph.num_nodes} {graph.num_nodes} {graph.num_edges}\n")
        if graph.is_weighted:
            for s, d, w in zip(src, dst, wgt):
                handle.write(f"{s + 1} {d + 1} {w:.17g}\n")
        else:
            for s, d in zip(src, dst):
                handle.write(f"{s + 1} {d + 1}\n")


# ---------------------------------------------------------------------------
# METIS
# ---------------------------------------------------------------------------
def load_metis(path: PathLike) -> CSRGraph:
    """Read a METIS graph file (undirected adjacency lists).

    Header: ``<num_nodes> <num_edges> [fmt]`` with fmt 0 (plain) or 1
    (edge weights: each adjacency entry is ``neighbor weight``).
    METIS files are 1-indexed and list each undirected edge in both
    endpoints' lines, which maps directly onto this library's
    both-directions convention.
    """
    with open(path, "r", encoding="utf-8") as handle:
        # blank lines are meaningful (isolated nodes); only comments
        # and a possible trailing newline are skipped.
        lines = [
            line.strip() for line in handle
            if not line.lstrip().startswith("%")
        ]
    if not lines or not lines[0]:
        raise GraphError(f"{path}: empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphError(f"{path}: bad METIS header {lines[0]!r}")
    num_nodes = int(header[0])
    # tolerate surplus trailing blank lines, but a trailing blank that
    # IS node n's (empty) adjacency line must survive
    while len(lines) - 1 > num_nodes and not lines[-1]:
        lines.pop()
    fmt = header[2] if len(header) > 2 else "0"
    weighted = fmt.endswith("1")
    if fmt not in ("0", "1", "001"):
        raise GraphError(f"{path}: unsupported METIS fmt {fmt!r}")
    if len(lines) - 1 != num_nodes:
        raise GraphError(
            f"{path}: header declares {num_nodes} nodes, file has {len(lines) - 1} lines"
        )

    src, dst, wgt = [], [], []
    for node, line in enumerate(lines[1:]):
        parts = line.split()
        step = 2 if weighted else 1
        if weighted and len(parts) % 2:
            raise GraphError(f"{path}: node {node + 1} has a dangling weight")
        for k in range(0, len(parts), step):
            nbr = int(parts[k]) - 1
            if not 0 <= nbr < num_nodes:
                raise GraphError(f"{path}: neighbor {nbr + 1} out of range")
            src.append(node)
            dst.append(nbr)
            wgt.append(float(parts[k + 1]) if weighted else 1.0)

    return from_arrays(
        np.asarray(src, dtype=NODE_DTYPE),
        np.asarray(dst, dtype=NODE_DTYPE),
        np.asarray(wgt, dtype=WEIGHT_DTYPE) if weighted else None,
        num_nodes=num_nodes,
    )


def save_metis(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph in METIS format.

    The graph must be symmetric (METIS is undirected); use
    :func:`repro.graph.builder.to_undirected` first otherwise.
    Self-loops are dropped (METIS forbids them).
    """
    from repro.graph.validate import is_symmetric

    if not is_symmetric(graph):
        raise GraphError("METIS files are undirected; symmetrise the graph first")
    weighted = graph.is_weighted
    undirected_edges = graph.num_edges // 2
    with open(path, "w", encoding="utf-8") as handle:
        fmt = " 1" if weighted else ""
        handle.write(f"{graph.num_nodes} {undirected_edges}{fmt}\n")
        for node in range(graph.num_nodes):
            nbrs = graph.neighbors(node)
            weights = graph.edge_weights_of(node)
            parts = []
            for idx, nbr in enumerate(nbrs):
                if int(nbr) == node:
                    continue  # METIS forbids self-loops
                parts.append(str(int(nbr) + 1))
                if weighted:
                    parts.append(f"{weights[idx]:.17g}")
            handle.write(" ".join(parts) + "\n")
