"""Synthetic graph generators.

All generators are deterministic under a given ``seed`` and return
:class:`~repro.graph.csr.CSRGraph`.  The power-law family (RMAT,
Barabási–Albert, configuration model) produces the skewed degree
distributions that motivate Tigr; the regular family (grid, ring,
Erdős–Rényi) provides low-irregularity controls for ablations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import deduplicate_edges, from_arrays
from repro.graph.csr import CSRGraph, NODE_DTYPE, WEIGHT_DTYPE


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def _attach_weights(
    graph: CSRGraph,
    rng: np.random.Generator,
    weight_range: Optional[Tuple[float, float]],
) -> CSRGraph:
    if weight_range is None:
        return graph
    low, high = weight_range
    if not low <= high:
        raise GraphError(f"invalid weight range ({low}, {high})")
    weights = rng.uniform(low, high, size=graph.num_edges).astype(WEIGHT_DTYPE)
    return graph.with_weights(weights)


def rmat(
    num_nodes: int,
    num_edges: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
    weight_range: Optional[Tuple[float, float]] = None,
    dedup: bool = True,
) -> CSRGraph:
    """Recursive-MATrix (R-MAT) power-law graph generator.

    The classic Graph500-style generator: each edge picks one of four
    quadrants per recursion level with probabilities ``(a, b, c, d)``
    where ``d = 1 - a - b - c``.  The default parameters are the
    Graph500 values, which yield the heavy-tailed degree distributions
    typical of social/web graphs (Twitter-like skew).

    ``num_nodes`` is rounded up internally to a power of two for the
    recursion; surplus ids are relabelled away so the returned graph
    has exactly ``num_nodes`` nodes (isolated nodes may exist).
    """
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphError("RMAT probabilities must be non-negative and sum to <= 1")
    rng = _rng(seed)
    levels = max(1, int(np.ceil(np.log2(num_nodes))))

    src = np.zeros(num_edges, dtype=NODE_DTYPE)
    dst = np.zeros(num_edges, dtype=NODE_DTYPE)
    # Quadrant probabilities: P(right half), P(bottom half | half).
    p_right = b + d
    for level in range(levels):
        bit = NODE_DTYPE(1) << (levels - 1 - level)
        go_right = rng.random(num_edges) < p_right
        # conditional probability of going to the bottom half
        p_bottom_given = np.where(go_right, d / max(p_right, 1e-12),
                                  c / max(a + c, 1e-12))
        go_bottom = rng.random(num_edges) < p_bottom_given
        src += bit * go_bottom.astype(NODE_DTYPE)
        dst += bit * go_right.astype(NODE_DTYPE)

    # Fold out-of-range ids (from the power-of-two rounding) back in.
    src %= num_nodes
    dst %= num_nodes
    graph = from_arrays(src, dst, num_nodes=num_nodes)
    if dedup:
        graph = deduplicate_edges(graph)
    return _attach_weights(graph, rng, weight_range)


def barabasi_albert(
    num_nodes: int,
    attach_edges: int,
    *,
    seed: Optional[int] = None,
    weight_range: Optional[Tuple[float, float]] = None,
) -> CSRGraph:
    """Barabási–Albert preferential attachment (directed both ways).

    Every new node attaches to ``attach_edges`` existing nodes chosen
    proportionally to current degree, producing a power-law tail with
    exponent ~3.  Returned as a symmetric directed graph (both
    directions of each undirected edge), matching how the paper's
    social-network datasets are processed.
    """
    if attach_edges < 1:
        raise GraphError("attach_edges must be >= 1")
    if num_nodes <= attach_edges:
        raise GraphError("num_nodes must exceed attach_edges")
    rng = _rng(seed)

    # repeated-nodes list trick: sampling uniformly from it is
    # equivalent to degree-proportional sampling.
    repeated = list(range(attach_edges + 1)) * 2  # seed clique-ish core
    sources, targets = [], []
    for new in range(attach_edges + 1, num_nodes):
        chosen = set()
        while len(chosen) < attach_edges:
            pick = repeated[rng.integers(0, len(repeated))]
            chosen.add(pick)
        for peer in chosen:
            sources.append(new)
            targets.append(peer)
            repeated.append(new)
            repeated.append(peer)

    src = np.asarray(sources, dtype=NODE_DTYPE)
    dst = np.asarray(targets, dtype=NODE_DTYPE)
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    graph = deduplicate_edges(from_arrays(all_src, all_dst, num_nodes=num_nodes))
    return _attach_weights(graph, rng, weight_range)


def configuration_power_law(
    num_nodes: int,
    *,
    exponent: float = 2.1,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    target_edges: Optional[int] = None,
    seed: Optional[int] = None,
    weight_range: Optional[Tuple[float, float]] = None,
) -> CSRGraph:
    """Directed configuration model with power-law outdegrees.

    Outdegrees are drawn from a discrete power law
    ``P(k) ~ k^-exponent`` on ``[min_degree, max_degree]``; edge
    destinations are uniform.  This gives direct control over the
    degree-distribution skew (the quantity Tigr targets), including
    the maximum degree ``d_max`` reported in Table 3.

    When ``target_edges`` is given, the sampled degree sequence is
    rescaled (shape-preservingly) so the total edge count lands near
    the target before dedup/self-loop cleanup.
    """
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    if exponent <= 1.0:
        raise GraphError("power-law exponent must exceed 1")
    if min_degree < 0:
        raise GraphError("min_degree must be non-negative")
    rng = _rng(seed)
    hi = max_degree if max_degree is not None else max(min_degree + 1, num_nodes - 1)
    hi = min(hi, max(1, num_nodes - 1))
    lo = max(min_degree, 0)
    if lo > hi:
        raise GraphError(f"min_degree {lo} exceeds max_degree {hi}")

    ks = np.arange(max(lo, 1), hi + 1, dtype=np.float64)
    pmf = ks ** (-exponent)
    pmf /= pmf.sum()
    degrees = rng.choice(ks.astype(NODE_DTYPE), size=num_nodes, p=pmf)
    if lo == 0:
        # allow some isolated-at-source nodes
        degrees[rng.random(num_nodes) < 0.05] = 0
    # Force at least one node to hit the ceiling so d_max is controlled.
    hub = int(rng.integers(0, num_nodes))
    degrees[hub] = hi

    if target_edges is not None and degrees.sum() > 0:
        factor = target_edges / float(degrees.sum())
        degrees = np.maximum(
            min(1, lo), np.round(degrees * factor)
        ).astype(NODE_DTYPE)
        degrees = np.minimum(degrees, hi)
        degrees[hub] = hi  # keep d_max pinned after rescaling

    total = int(degrees.sum())
    src = np.repeat(np.arange(num_nodes, dtype=NODE_DTYPE), degrees)
    dst = rng.integers(0, num_nodes, size=total, dtype=NODE_DTYPE)
    graph = deduplicate_edges(remove_self(src, dst, num_nodes))
    return _attach_weights(graph, rng, weight_range)


def remove_self(src: np.ndarray, dst: np.ndarray, num_nodes: int) -> CSRGraph:
    """Pack COO arrays into CSR, dropping self-loops."""
    mask = src != dst
    return from_arrays(src[mask], dst[mask], num_nodes=num_nodes)


def erdos_renyi(
    num_nodes: int,
    num_edges: int,
    *,
    seed: Optional[int] = None,
    weight_range: Optional[Tuple[float, float]] = None,
) -> CSRGraph:
    """Uniform random directed graph (G(n, m) model) — a regular control."""
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    rng = _rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges, dtype=NODE_DTYPE)
    dst = rng.integers(0, num_nodes, size=num_edges, dtype=NODE_DTYPE)
    graph = deduplicate_edges(remove_self(src, dst, num_nodes))
    return _attach_weights(graph, rng, weight_range)


def grid_2d(
    rows: int,
    cols: int,
    *,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: Optional[int] = None,
) -> CSRGraph:
    """2-D lattice with 4-neighborhood, both edge directions.

    Every interior node has degree exactly 4 — the perfectly regular
    extreme, useful as a no-benefit control for the transformations.
    """
    if rows <= 0 or cols <= 0:
        raise GraphError("rows and cols must be positive")
    idx = np.arange(rows * cols, dtype=NODE_DTYPE).reshape(rows, cols)
    pairs = []
    pairs.append((idx[:, :-1].ravel(), idx[:, 1:].ravel()))   # right
    pairs.append((idx[:-1, :].ravel(), idx[1:, :].ravel()))   # down
    src = np.concatenate([p[0] for p in pairs] + [p[1] for p in pairs])
    dst = np.concatenate([p[1] for p in pairs] + [p[0] for p in pairs])
    graph = from_arrays(src, dst, num_nodes=rows * cols)
    return _attach_weights(graph, _rng(seed), weight_range)


def regular_ring(
    num_nodes: int,
    degree: int,
    *,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Ring lattice: node ``i`` points to its next ``degree`` successors."""
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    if not 0 <= degree < num_nodes:
        raise GraphError("degree must lie in [0, num_nodes)")
    base = np.arange(num_nodes, dtype=NODE_DTYPE)
    src = np.repeat(base, degree)
    shifts = np.tile(np.arange(1, degree + 1, dtype=NODE_DTYPE), num_nodes)
    dst = (src + shifts) % num_nodes
    graph = from_arrays(src, dst, num_nodes=num_nodes)
    return _attach_weights(graph, _rng(seed), weight_range)


def star(
    num_leaves: int,
    *,
    bidirectional: bool = False,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Star graph: node 0 points at every leaf.

    The most extreme single-hub irregularity — the canonical unit test
    for split transformations (one family, many split nodes).
    """
    if num_leaves < 0:
        raise GraphError("num_leaves must be non-negative")
    hub = np.zeros(num_leaves, dtype=NODE_DTYPE)
    leaves = np.arange(1, num_leaves + 1, dtype=NODE_DTYPE)
    if bidirectional:
        src = np.concatenate([hub, leaves])
        dst = np.concatenate([leaves, hub])
    else:
        src, dst = hub, leaves
    graph = from_arrays(src, dst, num_nodes=num_leaves + 1)
    return _attach_weights(graph, _rng(seed), weight_range)


def path_graph(
    num_nodes: int,
    *,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Directed path ``0 -> 1 -> ... -> n-1`` (maximum-diameter control)."""
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    src = np.arange(num_nodes - 1, dtype=NODE_DTYPE)
    dst = src + 1
    graph = from_arrays(src, dst, num_nodes=num_nodes)
    return _attach_weights(graph, _rng(seed), weight_range)


def watts_strogatz(
    num_nodes: int,
    degree: int,
    rewire_probability: float,
    *,
    seed: Optional[int] = None,
    weight_range: Optional[Tuple[float, float]] = None,
) -> CSRGraph:
    """Watts–Strogatz small-world graph (symmetric directed form).

    Starts from a ring lattice where each node connects to its
    ``degree`` nearest successors and rewires each edge's far endpoint
    with the given probability.  Degree stays near-uniform (unlike the
    power-law family) while the diameter collapses — a control that
    separates "small diameter" effects from "degree skew" effects in
    the benchmarks.
    """
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError("rewire probability must be in [0, 1]")
    if num_nodes <= degree:
        raise GraphError("num_nodes must exceed degree")
    rng = _rng(seed)
    base = np.arange(num_nodes, dtype=NODE_DTYPE)
    src = np.repeat(base, degree)
    shifts = np.tile(np.arange(1, degree + 1, dtype=NODE_DTYPE), num_nodes)
    dst = (src + shifts) % num_nodes
    rewire = rng.random(len(dst)) < rewire_probability
    dst = dst.copy()
    dst[rewire] = rng.integers(0, num_nodes, size=int(rewire.sum()), dtype=NODE_DTYPE)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    graph = deduplicate_edges(from_arrays(all_src, all_dst, num_nodes=num_nodes))
    return _attach_weights(graph, rng, weight_range)


def complete_graph(
    num_nodes: int,
    *,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Complete directed graph (every ordered pair, no self-loops)."""
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    ids = np.arange(num_nodes, dtype=NODE_DTYPE)
    src = np.repeat(ids, num_nodes)
    dst = np.tile(ids, num_nodes)
    mask = src != dst
    graph = from_arrays(src[mask], dst[mask], num_nodes=num_nodes)
    return _attach_weights(graph, _rng(seed), weight_range)
