"""Degree and irregularity statistics.

Tigr's whole premise is that the *shape* of the degree distribution —
not the graph's size — determines GPU efficiency.  This module
quantifies that shape: coefficient of variation and Gini coefficient
of the outdegrees, power-law tail fractions (the ">90% of nodes below
degree 20" profile of §2.3), and a BFS-based diameter estimate used to
populate Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.indexing import ranges_to_indices as _ranges_to_indices_impl


@dataclass(frozen=True)
class DegreeStats:
    """Summary statistics of a graph's outdegree distribution."""

    num_nodes: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    std_degree: float
    #: std / mean — 0 for perfectly regular graphs, large for power laws.
    coefficient_of_variation: float
    #: Gini coefficient of the degree distribution in [0, 1).
    gini: float
    #: fraction of nodes whose degree is < 20 (the §2.3 profile).
    frac_degree_below_20: float
    #: fraction of nodes whose degree is >= 1000 (the §2.3 tail).
    frac_degree_at_least_1000: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view, convenient for table formatting."""
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "median_degree": self.median_degree,
            "std_degree": self.std_degree,
            "coefficient_of_variation": self.coefficient_of_variation,
            "gini": self.gini,
            "frac_degree_below_20": self.frac_degree_below_20,
            "frac_degree_at_least_1000": self.frac_degree_at_least_1000,
        }


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample.

    0 means perfect equality (regular graph); values approaching 1
    mean a tiny fraction of nodes holds nearly all edges (extreme
    power law).  Returns 0.0 for empty or all-zero input.
    """
    arr = np.sort(np.asarray(values, dtype=np.float64))
    n = len(arr)
    if n == 0:
        return 0.0
    total = arr.sum()
    if total == 0:
        return 0.0
    # Standard rank formula: G = (2*sum(i*x_i)/(n*sum(x)) - (n+1)/n)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * np.dot(ranks, arr) / (n * total) - (n + 1.0) / n)


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Compute :class:`DegreeStats` for a graph's outdegrees."""
    degrees = graph.out_degrees().astype(np.float64)
    n = graph.num_nodes
    if n == 0:
        return DegreeStats(0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    mean = float(degrees.mean())
    std = float(degrees.std())
    cv = std / mean if mean > 0 else 0.0
    return DegreeStats(
        num_nodes=n,
        num_edges=graph.num_edges,
        min_degree=int(degrees.min()),
        max_degree=int(degrees.max()),
        mean_degree=mean,
        median_degree=float(np.median(degrees)),
        std_degree=std,
        coefficient_of_variation=cv,
        gini=gini_coefficient(degrees),
        frac_degree_below_20=float(np.mean(degrees < 20)),
        frac_degree_at_least_1000=float(np.mean(degrees >= 1000)),
    )


def degree_histogram(graph: CSRGraph, bins: Optional[Sequence[int]] = None) -> Dict[str, int]:
    """Histogram of outdegrees over the given bin edges.

    Default bins follow the paper's §2.3 narrative:
    ``[0, 20, 100, 1000, inf)``.
    """
    degrees = graph.out_degrees()
    edges = list(bins) if bins is not None else [0, 20, 100, 1000]
    edges = sorted(set(int(e) for e in edges))
    result: Dict[str, int] = {}
    for lo, hi in zip(edges, edges[1:] + [None]):
        if hi is None:
            label = f"[{lo}, inf)"
            count = int(np.sum(degrees >= lo))
        else:
            label = f"[{lo}, {hi})"
            count = int(np.sum((degrees >= lo) & (degrees < hi)))
        result[label] = count
    return result


def bfs_eccentricity(graph: CSRGraph, source: int) -> int:
    """Largest finite hop distance from ``source`` (BFS depth)."""
    n = graph.num_nodes
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    depth = 0
    offsets, targets = graph.offsets, graph.targets
    while len(frontier):
        # gather all neighbors of the frontier
        starts = offsets[frontier]
        ends = offsets[frontier + 1]
        counts = ends - starts
        if counts.sum() == 0:
            break
        idx = _ranges_to_indices(starts, counts)
        nbrs = targets[idx]
        fresh = np.unique(nbrs[dist[nbrs] < 0])
        if len(fresh) == 0:
            break
        depth += 1
        dist[fresh] = depth
        frontier = fresh
    return int(dist.max())


def estimate_diameter(
    graph: CSRGraph, *, num_sources: int = 8, seed: Optional[int] = None
) -> int:
    """Lower-bound diameter estimate via multi-source BFS sampling.

    Runs BFS from ``num_sources`` pseudo-random sources (always
    including the highest-outdegree node, which tends to sit near the
    graph core) and returns the maximum eccentricity observed.  For the
    small synthetic stand-ins this matches the true diameter closely
    and is how the Table 3 ``d`` column is produced.
    """
    n = graph.num_nodes
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    sources = set(int(s) for s in rng.integers(0, n, size=min(num_sources, n)))
    sources.add(int(np.argmax(graph.out_degrees())))
    best = 0
    for src in sources:
        best = max(best, bfs_eccentricity(graph, src))
    return best


def _ranges_to_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Expand parallel ``(start, count)`` pairs into one index array.

    Thin alias of :func:`repro.indexing.ranges_to_indices`, kept so
    BFS internals read naturally.
    """
    return _ranges_to_indices_impl(starts, counts)
