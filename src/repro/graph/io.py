"""Graph I/O: plain edge-list text files and numpy ``.npz`` archives.

The text format matches the SNAP convention used by the paper's
datasets: one edge per line, whitespace-separated endpoints, optional
third weight column, ``#``-prefixed comment lines.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph, NODE_DTYPE, WEIGHT_DTYPE

PathLike = Union[str, "os.PathLike[str]"]


def load_edge_list(path: PathLike, *, num_nodes: Optional[int] = None) -> CSRGraph:
    """Read a SNAP-style edge-list text file.

    Lines beginning with ``#`` or ``%`` are comments.  Each data line
    holds ``src dst`` or ``src dst weight``.  Mixing the two arities in
    one file is an error.
    """
    sources, targets, weights = [], [], []
    arity = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(f"{path}:{lineno}: expected 2 or 3 columns, got {len(parts)}")
            if arity is None:
                arity = len(parts)
            elif len(parts) != arity:
                raise GraphError(f"{path}:{lineno}: inconsistent column count")
            try:
                sources.append(int(parts[0]))
                targets.append(int(parts[1]))
                if arity == 3:
                    weights.append(float(parts[2]))
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: {exc}") from exc
    src = np.asarray(sources, dtype=NODE_DTYPE)
    dst = np.asarray(targets, dtype=NODE_DTYPE)
    w = np.asarray(weights, dtype=WEIGHT_DTYPE) if arity == 3 else None
    return from_arrays(src, dst, w, num_nodes=num_nodes)


def save_edge_list(graph: CSRGraph, path: PathLike, *, header: Optional[str] = None) -> None:
    """Write a graph as a SNAP-style edge-list text file."""
    src, dst, w = graph.to_coo()
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        if w is None:
            for s, d in zip(src, dst):
                handle.write(f"{s} {d}\n")
        else:
            for s, d, weight in zip(src, dst, w):
                handle.write(f"{s} {d} {weight:g}\n")


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Serialise a graph to a compressed numpy archive."""
    payload = {"offsets": graph.offsets, "targets": graph.targets}
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(path, **payload)


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph previously saved with :func:`save_npz`."""
    with np.load(path) as archive:
        offsets = archive["offsets"]
        targets = archive["targets"]
        weights = archive["weights"] if "weights" in archive.files else None
        return CSRGraph(offsets, targets, weights)
