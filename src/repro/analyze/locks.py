"""Lock-discipline lint for classes with ``threading`` locks.

The serving layer (PR 1) introduced shared mutable state guarded by
``with self._lock:`` blocks across the catalog, executor, metrics, and
batching.  The invariant this checker enforces is *consistency*: an
attribute that is ever mutated under one of the class's locks is part
of that lock's protected state, so every other mutation (error), every
read-modify-write (error), and every bare read (warning) of it must
also hold the lock.

``__init__`` is exempt — construction happens before the object is
shared, which is also why the guarded set is *learned* from the
post-construction methods rather than from ``__init__``'s wholesale
attribute initialization.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from repro.analyze.astutils import (
    MUTATING_METHODS,
    SourceFile,
    call_name,
    iter_class_functions,
    self_attribute_name,
)
from repro.analyze.report import Finding

#: constructors whose result marks an attribute as a lock.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


def check_locks(context) -> List[Finding]:
    findings: List[Finding] = []
    for source in context.sources:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(_check_class(source, node))
    return findings


@dataclass(frozen=True)
class _Access:
    """One attribute touch: where, what, and how."""

    attr: str
    line: int
    kind: str  # "write" | "rmw" | "read"
    guarded: bool
    method: str


def _check_class(source: SourceFile, cls: ast.ClassDef) -> List[Finding]:
    lock_attrs = _lock_attributes(cls)
    if not lock_attrs:
        return []

    accesses: List[_Access] = []
    for method_name, func in iter_class_functions(cls):
        if method_name == "__init__":
            continue
        accesses.extend(_collect_accesses(func, method_name, lock_attrs))

    guarded: Set[str] = {
        access.attr
        for access in accesses
        if access.guarded and access.kind in ("write", "rmw")
    }
    if not guarded:
        return []

    findings = []
    for access in accesses:
        if access.guarded or access.attr not in guarded:
            continue
        if access.kind == "write":
            findings.append(Finding.make(
                "LOCK001", source.path, access.line,
                f"{cls.name}.{access.method}: attribute "
                f"`self.{access.attr}` is mutated without holding the "
                f"lock that guards it elsewhere",
            ))
        elif access.kind == "rmw":
            findings.append(Finding.make(
                "LOCK002", source.path, access.line,
                f"{cls.name}.{access.method}: read-modify-write of "
                f"lock-guarded attribute `self.{access.attr}` outside "
                f"the lock (lost-update race)",
            ))
        else:
            findings.append(Finding.make(
                "LOCK003", source.path, access.line,
                f"{cls.name}.{access.method}: reads lock-guarded "
                f"attribute `self.{access.attr}` without the lock",
            ))
    return findings


def _lock_attributes(cls: ast.ClassDef) -> Set[str]:
    """Attributes assigned a ``threading.Lock()``-style object."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        factory = call_name(node.value).rsplit(".", 1)[-1]
        if factory not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = self_attribute_name(target)
            # `self._lock = Lock()` guards; a lock stored *inside* a
            # container (`self._building[key] = Lock()`) is a value,
            # not a guard attribute.
            if attr is not None and isinstance(target, ast.Attribute):
                locks.add(attr)
    return locks


def _collect_accesses(
    func: ast.AST, method: str, lock_attrs: Set[str]
) -> List[_Access]:
    accesses: List[_Access] = []
    for child in ast.iter_child_nodes(func):
        for node, guarded in _walk_with_guard(child, lock_attrs, False):
            accesses.extend(
                _Access(attr, getattr(node, "lineno", 0), kind, guarded, method)
                for attr, kind in _accesses_of(node)
            )
    return accesses


def _walk_with_guard(
    node: ast.AST, lock_attrs: Set[str], guarded: bool
) -> Iterator[Tuple[ast.AST, bool]]:
    """Yield ``node`` and its descendants with lock-held state.

    ``with self.<lock>:`` raises the guard for the body (including
    nested ``with`` statements — a lock acquired around a per-key
    build lock still guards the inner block).
    """
    if isinstance(node, ast.With):
        holds = guarded or any(
            self_attribute_name(item.context_expr) in lock_attrs
            for item in node.items
        )
        for item in node.items:
            yield from _walk_with_guard(item.context_expr, lock_attrs, guarded)
        for stmt in node.body:
            yield from _walk_with_guard(stmt, lock_attrs, holds)
        return
    yield node, guarded
    for child in ast.iter_child_nodes(node):
        yield from _walk_with_guard(child, lock_attrs, guarded)


def _accesses_of(node: ast.AST) -> List[Tuple[str, str]]:
    """(attr, kind) pairs contributed by one AST node (non-recursive)."""
    out: List[Tuple[str, str]] = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            attr = _written_attr(target)
            if attr is not None:
                out.append((attr, "write"))
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        attr = _written_attr(node.target)
        if attr is not None:
            out.append((attr, "write"))
    elif isinstance(node, ast.AugAssign):
        attr = _written_attr(node.target)
        if attr is not None:
            out.append((attr, "rmw"))
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attr = self_attribute_name(target)
            if attr is not None:
                out.append((attr, "write"))
    elif isinstance(node, ast.Call):
        attr = _mutating_receiver(node)
        if attr is not None:
            out.append((attr, "write"))
    elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            out.append((node.attr, "read"))
    return out


def _written_attr(target: ast.AST) -> Optional[str]:
    """Self-attribute written by an assignment target, if any."""
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        return self_attribute_name(target)
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            attr = _written_attr(element)
            if attr is not None:
                return attr
    return None


def _mutating_receiver(call: ast.Call) -> Optional[str]:
    """`self.X` when the call is `self.X....mutator(...)`."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
        return self_attribute_name(func.value)
    return None
