"""Project-wide call graph over the analyzer's parsed sources.

Built once per run (lazily, on the shared :class:`AnalysisContext`)
and consumed by every rule pass that needs more than single-function
syntax — today the concurrency pack, tomorrow anything that reasons
about reachability.

The graph is purely syntactic, like the rest of :mod:`repro.analyze`:
nothing is imported from the scanned files.  Resolution is therefore
best-effort and deliberately conservative — an edge is recorded only
when the target is unambiguous:

* module-level functions and classes, resolved through each module's
  import table (including ``import x as y`` aliases and relative
  imports);
* ``self.method()`` through the enclosing class (and scanned bases);
* attribute and parameter *types*: ``self._queue = queue.Queue(...)``
  or ``service: AnalyticsService`` let later calls through those names
  resolve to methods (internal) or to normalized external targets
  such as ``queue.Queue.put`` — string annotations and
  ``Optional[...]`` wrappers are unwrapped;
* nested ``def``s, with lexical scoping for closed-over bindings.

Anything else — ``getattr``, callables held in containers, lambda
bodies (deferred execution) — produces *no* edge, so downstream rules
err toward silence rather than noise.

Async-ness propagates over resolved edges: :meth:`CallGraph.
async_call_paths` walks breadth-first from every ``async def`` through
*sync* callees, answering "does this function run on the event loop's
thread?" with the shortest witness chain.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analyze.astutils import SourceFile, dotted_name, module_name_for

#: typing wrappers whose subscript is transparent for type inference.
_TRANSPARENT_WRAPPERS = {"Optional", "Final", "ClassVar", "Annotated"}

#: subscripted typing containers that hide their element type.
_OPAQUE_CONTAINERS = {
    "List", "Dict", "Set", "FrozenSet", "Tuple", "Sequence", "Iterable",
    "Iterator", "Mapping", "MutableMapping", "Callable", "Union",
    "Awaitable", "Coroutine", "Generator", "AsyncIterator", "Type",
    "list", "dict", "set", "frozenset", "tuple", "type",
}


@dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str                      #: dotted target as written in source
    line: int
    col: int
    node: ast.Call
    resolved: Optional[str] = None  #: qualname of a scanned function
    external: Optional[str] = None  #: normalized external target
    awaited: bool = False           #: directly under an ``await``
    discarded: bool = False         #: bare expression statement

    @property
    def target(self) -> Optional[str]:
        return self.resolved or self.external


@dataclass
class FunctionInfo:
    """One scanned ``def`` / ``async def`` (module, method, or nested)."""

    qualname: str
    module: str
    name: str
    path: str
    node: ast.AST
    is_async: bool
    line: int
    cls: Optional[str] = None       #: owning class qualname
    parent: Optional[str] = None    #: enclosing function qualname
    calls: List[CallSite] = field(default_factory=list)
    scope: Optional["_Scope"] = None


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    #: ``self.X`` attribute name -> type token (class qualname for
    #: scanned classes, dotted constructor name for external ones).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    name: str
    path: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, str] = field(default_factory=dict)


class _Scope:
    """Lexical scope chain: module -> (class) -> function -> nested."""

    def __init__(
        self,
        module: ModuleInfo,
        cls: Optional[str] = None,
        parent: Optional["_Scope"] = None,
    ) -> None:
        self.module = module
        self.cls = cls
        self.parent = parent
        self.types: Dict[str, str] = {}       # name -> type token
        self.local_funcs: Dict[str, str] = {}  # nested def -> qualname

    def lookup_type(self, name: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.types:
                return scope.types[name]
            scope = scope.parent
        return None

    def lookup_func(self, name: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.local_funcs:
                return scope.local_funcs[name]
            scope = scope.parent
        return None


def iter_own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body, *excluding* nested def/lambda bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class CallGraph:
    """Resolved intra-package call edges over a set of sources."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._module_of_path: Dict[str, ModuleInfo] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, sources: Sequence[SourceFile]) -> "CallGraph":
        graph = cls()
        entries: List[Tuple[SourceFile, ModuleInfo]] = []
        for source in sources:
            module = graph._register_module(source)
            entries.append((source, module))
        for source, module in entries:
            graph._collect_attr_types(module)
        for source, module in entries:
            graph._resolve_module(source, module)
        return graph

    def _register_module(self, source: SourceFile) -> ModuleInfo:
        name = module_name_for(source.path)
        if name in self.modules:  # stem collision between loose files
            name = f"{name}@{len(self.modules)}"
        module = ModuleInfo(name=name, path=source.path)
        self.modules[name] = module
        self._module_of_path[source.path] = module
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    parts = name.split(".")
                    anchor = parts[: -node.level] if node.level <= len(parts) else []
                    base = ".".join(anchor + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        for node in source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(node, name, module, source, cls=None,
                                        parent=None)
            elif isinstance(node, ast.ClassDef):
                self._register_class(node, module, source)
        return module

    def _register_class(
        self, node: ast.ClassDef, module: ModuleInfo, source: SourceFile
    ) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            module=module.name,
            name=node.name,
            node=node,
            bases=[dotted_name(b) for b in node.bases],
        )
        self.classes[qualname] = info
        module.classes[node.name] = qualname
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._register_function(
                    child, f"{qualname}", module, source, cls=qualname,
                    parent=None,
                )
                info.methods[child.name] = fn.qualname

    def _register_function(
        self,
        node: ast.AST,
        prefix: str,
        module: ModuleInfo,
        source: SourceFile,
        cls: Optional[str],
        parent: Optional[str],
    ) -> FunctionInfo:
        qualname = f"{prefix}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            module=module.name,
            name=node.name,
            path=source.path,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            line=node.lineno,
            cls=cls,
            parent=parent,
        )
        self.functions[qualname] = info
        if parent is None and cls is None:
            module.functions[node.name] = qualname
        for stmt in node.body:
            self._register_nested(stmt, qualname, module, source, cls)
        return info

    def _register_nested(
        self,
        stmt: ast.AST,
        prefix: str,
        module: ModuleInfo,
        source: SourceFile,
        cls: Optional[str],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested_prefix = f"{prefix}.<locals>"
            qualname = f"{nested_prefix}.{stmt.name}"
            if qualname not in self.functions:
                info = FunctionInfo(
                    qualname=qualname,
                    module=module.name,
                    name=stmt.name,
                    path=source.path,
                    node=stmt,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    line=stmt.lineno,
                    cls=cls,
                    parent=prefix,
                )
                self.functions[qualname] = info
            for sub in stmt.body:
                self._register_nested(sub, qualname, module, source, cls)
            return
        for child in ast.iter_child_nodes(stmt):
            self._register_nested(child, prefix, module, source, cls)

    # -- type tokens ----------------------------------------------------
    def _expand(self, module: ModuleInfo, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def annotation_token(
        self, node: Optional[ast.AST], module: ModuleInfo
    ) -> Optional[str]:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value.split("[")[0].strip().strip("'\"")
            if not text or not all(
                part.isidentifier() for part in text.split(".")
            ):
                return None
            return self._finish_annotation(text, module)
        if isinstance(node, ast.Subscript):
            head = dotted_name(node.value).rsplit(".", 1)[-1]
            if head in _TRANSPARENT_WRAPPERS:
                inner = node.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return self.annotation_token(inner, module)
            if head in _OPAQUE_CONTAINERS:
                return None
            return self.annotation_token(node.value, module)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            left = self.annotation_token(node.left, module)
            if left is not None:
                return left
            return self.annotation_token(node.right, module)
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = dotted_name(node)
            if "?" in dotted:
                return None
            return self._finish_annotation(dotted, module)
        return None

    def _finish_annotation(
        self, dotted: str, module: ModuleInfo
    ) -> Optional[str]:
        tail = dotted.rsplit(".", 1)[-1]
        if tail in _TRANSPARENT_WRAPPERS or tail in ("Any", "None", "object"):
            return None
        if tail in _OPAQUE_CONTAINERS:
            return None
        if dotted in module.classes:
            return module.classes[dotted]
        expanded = self._expand(module, dotted)
        if expanded in self.classes:
            return expanded
        # an imported-but-unscanned class keeps its qualified name as an
        # external token (``queue.Queue``, ``asyncio.AbstractEventLoop``)
        return expanded

    def type_of(self, node: ast.AST, scope: _Scope) -> Optional[str]:
        """Best-effort type token of an expression in ``scope``."""
        if isinstance(node, ast.Name):
            if node.id == "self" and scope.cls:
                return scope.cls
            return scope.lookup_type(node.id)
        if isinstance(node, ast.Attribute):
            base = self.type_of(node.value, scope)
            if base and base in self.classes:
                owner = self._class_with_attr(base, node.attr)
                if owner is not None:
                    return owner.attr_types[node.attr]
            return None
        if isinstance(node, ast.Call):
            return self._call_type_token(node, scope)
        return None

    def _class_with_attr(
        self, cls_qual: str, attr: str
    ) -> Optional[ClassInfo]:
        for info in self._mro(cls_qual):
            if attr in info.attr_types:
                return info
        return None

    def _mro(self, cls_qual: str) -> Iterator[ClassInfo]:
        seen = set()
        stack = [cls_qual]
        while stack:
            qual = stack.pop(0)
            if qual in seen or qual not in self.classes:
                continue
            seen.add(qual)
            info = self.classes[qual]
            yield info
            module = self.modules.get(info.module)
            for base in info.bases:
                if module is None:
                    continue
                expanded = self._expand(module, base)
                if expanded in self.classes:
                    stack.append(expanded)
                elif base in module.classes:
                    stack.append(module.classes[base])

    def _call_type_token(
        self, call: ast.Call, scope: _Scope
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            module = scope.module
            if name in module.classes:
                return module.classes[name]
            expanded = module.imports.get(name)
            if expanded is not None:
                if expanded in self.classes:
                    return expanded
                if expanded.rsplit(".", 1)[-1] not in _OPAQUE_CONTAINERS:
                    return expanded
            return None
        if isinstance(func, ast.Attribute):
            dotted = dotted_name(func)
            head = dotted.split(".")[0]
            if (
                "?" not in dotted
                and "(" not in dotted
                and head in scope.module.imports
            ):
                expanded = self._expand(scope.module, dotted)
                if expanded in self.classes:
                    return expanded
                return expanded
            receiver = self.type_of(func.value, scope)
            if receiver is not None and receiver not in self.classes:
                return f"{receiver}.{func.attr}"
        return None

    # -- resolution -----------------------------------------------------
    def _collect_attr_types(self, module: ModuleInfo) -> None:
        for cls_name, cls_qual in module.classes.items():
            info = self.classes[cls_qual]
            scope = _Scope(module, cls=cls_qual)
            for method_qual in info.methods.values():
                method = self.functions[method_qual]
                params = self._param_tokens(method.node, module)
                for node in iter_own_nodes(method.node):
                    target: Optional[ast.AST] = None
                    value: Optional[ast.AST] = None
                    annotation: Optional[ast.AST] = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                        annotation = node.annotation
                    if (
                        not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"
                    ):
                        continue
                    attr = target.attr
                    if attr in info.attr_types:
                        continue
                    token = self.annotation_token(annotation, module)
                    if token is None and isinstance(value, ast.Call):
                        token = self._call_type_token(value, scope)
                    if token is None and isinstance(value, ast.Name):
                        token = params.get(value.id)
                    if token is not None:
                        info.attr_types[attr] = token

    def _param_tokens(
        self, func: ast.AST, module: ModuleInfo
    ) -> Dict[str, str]:
        tokens: Dict[str, str] = {}
        args = func.args
        for arg in (
            list(getattr(args, "posonlyargs", []))
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            token = self.annotation_token(arg.annotation, module)
            if token is not None:
                tokens[arg.arg] = token
        return tokens

    def _resolve_module(
        self, source: SourceFile, module: ModuleInfo
    ) -> None:
        module_scope = _Scope(module)
        for node in source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.name}.{node.name}"
                self._resolve_function(qualname, module_scope)
            elif isinstance(node, ast.ClassDef):
                cls_qual = module.classes.get(node.name)
                if cls_qual is None:
                    continue
                cls_scope = _Scope(module, cls=cls_qual, parent=module_scope)
                for method_qual in self.classes[cls_qual].methods.values():
                    self._resolve_function(method_qual, cls_scope)

    def _resolve_function(self, qualname: str, parent_scope: _Scope) -> None:
        info = self.functions.get(qualname)
        if info is None:
            return
        scope = _Scope(parent_scope.module, cls=info.cls, parent=parent_scope)
        info.scope = scope
        scope.types.update(self._param_tokens(info.node, scope.module))

        nested: List[ast.AST] = []
        for stmt in info.node.body:
            for child in ast.walk(stmt):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    owner = self._nearest_registered(qualname, child)
                    if owner == qualname:
                        nested.append(child)
        for child in nested:
            scope.local_funcs[child.name] = (
                f"{qualname}.<locals>.{child.name}"
            )

        self._collect_bindings(info, scope)
        self._collect_calls(info, scope)
        for child in nested:
            self._resolve_function(
                f"{qualname}.<locals>.{child.name}", scope
            )

    def _nearest_registered(self, qualname: str, node: ast.AST) -> str:
        # a def directly in this function's body belongs to it; defs
        # nested deeper belong to an inner function and are resolved in
        # that function's pass
        direct = f"{qualname}.<locals>.{getattr(node, 'name', '')}"
        if direct in self.functions:
            owner = self.functions[direct]
            if owner.parent == qualname:
                return qualname
        return ""

    def _collect_bindings(self, info: FunctionInfo, scope: _Scope) -> None:
        for node in iter_own_nodes(info.node):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            annotation: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                annotation = node.annotation
            elif isinstance(node, ast.withitem) and node.optional_vars:
                target, value = node.optional_vars, node.context_expr
            if not isinstance(target, ast.Name):
                continue
            token = self.annotation_token(annotation, scope.module)
            if token is None and value is not None:
                token = self.type_of(value, scope)
            if token is not None:
                scope.types[target.id] = token

    def _collect_calls(self, info: FunctionInfo, scope: _Scope) -> None:
        parents: Dict[int, ast.AST] = {}
        stack: List[ast.AST] = list(ast.iter_child_nodes(info.node))
        for child in stack:
            parents[id(child)] = info.node
        order: List[ast.AST] = []
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            order.append(node)
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
                stack.append(child)
        for node in order:
            if not isinstance(node, ast.Call):
                continue
            resolved, external = self._resolve_call(node, scope)
            parent = parents.get(id(node))
            info.calls.append(
                CallSite(
                    name=dotted_name(node.func),
                    line=node.lineno,
                    col=node.col_offset,
                    node=node,
                    resolved=resolved,
                    external=external,
                    awaited=isinstance(parent, ast.Await),
                    discarded=isinstance(parent, ast.Expr),
                )
            )
        info.calls.sort(key=lambda site: (site.line, site.col))

    def _lookup_qualified(self, qualified: str) -> Optional[str]:
        if qualified in self.functions:
            return qualified
        prefix, _, method = qualified.rpartition(".")
        if prefix in self.classes:
            return self._lookup_method(prefix, method)
        return None

    def _lookup_method(self, cls_qual: str, name: str) -> Optional[str]:
        for info in self._mro(cls_qual):
            if name in info.methods:
                return info.methods[name]
        return None

    def _resolve_call(
        self, call: ast.Call, scope: _Scope
    ) -> Tuple[Optional[str], Optional[str]]:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            local = scope.lookup_func(name)
            if local is not None:
                return local, None
            module = scope.module
            if name in module.functions:
                return module.functions[name], None
            if name in module.classes:
                return self._lookup_method(module.classes[name], "__init__"), None
            expanded = module.imports.get(name)
            if expanded is not None:
                internal = self._lookup_qualified(expanded)
                if internal is not None:
                    return internal, None
                if expanded in self.classes:
                    return self._lookup_method(expanded, "__init__"), None
                return None, expanded
            if scope.lookup_type(name) is not None:
                return None, None  # calling a typed local value
            return None, name  # builtin or unknown bare name
        if isinstance(func, ast.Attribute):
            dotted = dotted_name(func)
            head = dotted.split(".")[0]
            if (
                "?" not in dotted
                and "(" not in dotted
                and head in scope.module.imports
                and scope.lookup_type(head) is None
            ):
                expanded = self._expand(scope.module, dotted)
                internal = self._lookup_qualified(expanded)
                if internal is not None:
                    return internal, None
                prefix = expanded.rsplit(".", 1)[0]
                if prefix in self.classes:
                    return None, None  # unknown method on a scanned class
                return None, expanded
            receiver = self.type_of(func.value, scope)
            if receiver is not None:
                if receiver in self.classes:
                    method = self._lookup_method(receiver, func.attr)
                    if method is not None:
                        return method, None
                    return None, None
                return None, f"{receiver}.{func.attr}"
        return None, None

    # -- queries --------------------------------------------------------
    def async_call_paths(self) -> Dict[str, Tuple[str, ...]]:
        """Sync function qualname -> shortest call chain from an
        ``async def`` (the first element is the async root)."""
        paths: Dict[str, Tuple[str, ...]] = {}
        roots = sorted(
            qual for qual, fn in self.functions.items() if fn.is_async
        )
        queue: deque = deque((root, (root,)) for root in roots)
        seen = set(roots)
        while queue:
            qual, path = queue.popleft()
            for site in self.functions[qual].calls:
                target = site.resolved
                if target is None or target not in self.functions:
                    continue
                callee = self.functions[target]
                if callee.is_async or target in seen:
                    continue
                seen.add(target)
                paths[target] = path + (target,)
                queue.append((target, path + (target,)))
        return paths
