"""Split-safety verification of vertex programs (Theorems 1 and 3).

The checker discovers every ``PushProgram`` / ``PullProgram`` subclass
in the scanned sources and, for each one, statically derives the facts
the paper's correctness argument rests on:

* **Theorem 3 algebra** — the declared ``reduce`` must be one of
  ``ReduceOp.MIN/MAX/ADD``, the associative+commutative reductions for
  which scatter order (and virtual-split pull folding) is irrelevant;
* **path-metric class** — the ``relax`` body is classified as
  *additive* (``src + w``), *widest-path* (``min(src, w)``), or
  *propagation* (``src``), which by Theorem 1 fixes the dumb weight a
  physical transform must place on introduced edges (0 / +inf / none);
* **table cross-check** — both derivations are diffed against the
  structured expectations exported by
  :mod:`repro.core.applicability`; drift in either direction (a
  program the table does not know, a table entry with no program, or a
  disagreeing relax/reduce/dumb-weight triple) is an error.

The derivation is purely syntactic — nothing is imported from the
scanned files — so seeded-violation fixtures and broken working trees
are analyzable.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analyze.astutils import (
    SourceFile,
    base_names,
    call_name,
    class_constant,
    iter_class_functions,
)
from repro.analyze.report import Finding
from repro.core.applicability import (
    COMPOSED_ANALYSES,
    PROGRAM_EXPECTATIONS,
    RELAX_CLASS_DUMB_WEIGHT,
    REQUIREMENTS,
)

#: base-class names that mark a vertex program.
_PROGRAM_BASES = {"PushProgram", "PullProgram"}

#: the Theorem 3 algebra: associative + commutative reductions.
_COMMUTATIVE_REDUCES = {"MIN", "MAX", "ADD"}

#: idempotent reductions — the lane-safety criterion (SPLIT006): the
#: union frontier re-relaxes quiescent lanes, and only an idempotent
#: fold absorbs the duplicates.
_IDEMPOTENT_REDUCES = {"MIN", "MAX"}


class ProgramFacts:
    """Statically derived facts about one program class."""

    def __init__(self, source: SourceFile, cls: ast.ClassDef) -> None:
        self.source = source
        self.cls = cls
        self.name = _string_constant(class_constant(cls, "name"))
        self.reduce_member = _reduce_member(class_constant(cls, "reduce"))
        self.reduce_line = _node_line(class_constant(cls, "reduce"), cls)
        self.relax = _find_method(cls, "relax")
        self.relax_class = (
            classify_relax(self.relax) if self.relax is not None else None
        )
        #: literal ``lane_safe = True/False`` override, if declared.
        self.lane_safe_override = _bool_constant(
            class_constant(cls, "lane_safe")
        )

    @property
    def lane_safe_derived(self) -> Optional[bool]:
        """Lane safety the class's own source implies: a literal
        override wins, else idempotence of the declared reduction."""
        if self.lane_safe_override is not None:
            return self.lane_safe_override
        if self.reduce_member is None:
            return None
        return self.reduce_member in _IDEMPOTENT_REDUCES


def check_programs(context) -> List[Finding]:
    """Run the split-safety family over the scanned sources."""
    findings: List[Finding] = []
    programs: List[ProgramFacts] = []
    for source in context.sources:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and (
                set(base_names(node)) & _PROGRAM_BASES
            ):
                programs.append(ProgramFacts(source, node))

    seen_names: Set[str] = set()
    for facts in programs:
        findings.extend(_check_one(facts))
        if facts.name:
            seen_names.add(facts.name)

    # Reverse drift: only meaningful when the scan actually covered
    # vertex-program definitions (a partial-path run over, say, the
    # service layer must not demand the programs module be present).
    if programs:
        findings.extend(_check_table_coverage(seen_names, programs))
    return findings


# ----------------------------------------------------------------------
# Per-program checks
# ----------------------------------------------------------------------
def _check_one(facts: ProgramFacts) -> List[Finding]:
    findings: List[Finding] = []
    path = facts.source.path
    cls_line = facts.cls.lineno
    label = facts.name or facts.cls.name

    # Theorem 3: the declared reduction's algebra.
    if facts.reduce_member is None:
        findings.append(Finding.make(
            "SPLIT001", path, facts.reduce_line or cls_line,
            f"{label}: reduce is not a ReduceOp member; Theorem 3 "
            f"requires an associative+commutative reduction",
        ))
    elif facts.reduce_member not in _COMMUTATIVE_REDUCES:
        findings.append(Finding.make(
            "SPLIT001", path, facts.reduce_line or cls_line,
            f"{label}: ReduceOp.{facts.reduce_member} is not in the "
            f"associative+commutative set "
            f"{{{', '.join(sorted(_COMMUTATIVE_REDUCES))}}} (Theorem 3)",
        ))

    relax_line = facts.relax.lineno if facts.relax is not None else cls_line
    if facts.relax is not None and facts.relax_class is None:
        findings.append(Finding.make(
            "SPLIT002", path, relax_line,
            f"{label}: relax body matches no known path-metric class "
            f"(additive / widest_path / propagation); Theorem 1 dumb "
            f"weight cannot be verified",
        ))

    # Table cross-check.
    if facts.name is None:
        findings.append(Finding.make(
            "SPLIT004", path, cls_line,
            f"{facts.cls.name}: program declares no literal `name`; it "
            f"cannot be matched against the §3.3 applicability table",
        ))
        return findings
    expectation = PROGRAM_EXPECTATIONS.get(facts.name)
    if expectation is None:
        findings.append(Finding.make(
            "SPLIT004", path, cls_line,
            f"{label}: no ProgramExpectation in "
            f"repro.core.applicability.PROGRAM_EXPECTATIONS — add one "
            f"(or the program serves an analytic splitting cannot "
            f"preserve)",
        ))
        return findings

    requirement = REQUIREMENTS.get(expectation.analysis)
    if requirement is not None and not requirement.split_safe:
        findings.append(Finding.make(
            "SPLIT004", path, cls_line,
            f"{label}: backs analysis {expectation.analysis!r}, which "
            f"the §3.3 table marks split-unsafe "
            f"({requirement.justification})",
        ))

    if (
        facts.reduce_member is not None
        and facts.reduce_member.lower() != expectation.reduce_op
    ):
        findings.append(Finding.make(
            "SPLIT005", path, facts.reduce_line or cls_line,
            f"{label}: declares ReduceOp.{facts.reduce_member} but the "
            f"applicability table expects "
            f"ReduceOp.{expectation.reduce_op.upper()}",
        ))

    derived_lane_safe = facts.lane_safe_derived
    if (
        derived_lane_safe is not None
        and derived_lane_safe != expectation.lane_safe_resolved
    ):
        findings.append(Finding.make(
            "SPLIT006", path, facts.reduce_line or cls_line,
            f"{label}: code implies lane_safe={derived_lane_safe} "
            f"(reduce {facts.reduce_member or 'override'}) but the "
            f"applicability table certifies "
            f"lane_safe={expectation.lane_safe_resolved} — "
            f"multi-source batching would "
            f"{'double-count' if derived_lane_safe is False else 'be needlessly refused'}",
        ))

    if facts.relax_class is not None:
        if facts.relax_class != expectation.relax_class:
            findings.append(Finding.make(
                "SPLIT002", path, relax_line,
                f"{label}: relax classifies as {facts.relax_class!r} "
                f"but the applicability table expects "
                f"{expectation.relax_class!r}",
            ))
        inferred = RELAX_CLASS_DUMB_WEIGHT[facts.relax_class]
        if inferred is not expectation.dumb_weight:
            findings.append(Finding.make(
                "SPLIT003", path, relax_line,
                f"{label}: Theorem 1 implies dumb weight "
                f"{inferred.value!r} for a {facts.relax_class} relax, "
                f"but the table declares "
                f"{expectation.dumb_weight.value!r}",
            ))
    return findings


def _check_table_coverage(
    seen_names: Set[str], programs: List[ProgramFacts]
) -> List[Finding]:
    """Table-side drift: expectations/analyses with no backing program."""
    findings: List[Finding] = []
    # Anchor table-side findings on the file that defined the most
    # programs — the place the missing definition belongs.
    anchor = max(
        (facts.source.path for facts in programs),
        key=lambda p: sum(f.source.path == p for f in programs),
    )
    for name, expectation in sorted(PROGRAM_EXPECTATIONS.items()):
        if name not in seen_names:
            findings.append(Finding.make(
                "SPLIT004", anchor, 1,
                f"applicability table expects a program named {name!r} "
                f"(analysis {expectation.analysis!r}) but the scan "
                f"found none",
            ))
    covered = {
        PROGRAM_EXPECTATIONS[name].analysis
        for name in seen_names
        if name in PROGRAM_EXPECTATIONS
    }
    for analysis, requirement in sorted(REQUIREMENTS.items()):
        if not requirement.split_safe:
            continue
        if analysis in covered:
            continue
        parts = COMPOSED_ANALYSES.get(analysis)
        if parts is not None and all(
            PROGRAM_EXPECTATIONS[p].analysis in covered for p in parts
        ):
            continue
        findings.append(Finding.make(
            "SPLIT004", anchor, 1,
            f"split-safe analysis {analysis!r} has neither a backing "
            f"program nor a composition in COMPOSED_ANALYSES",
        ))
    return findings


# ----------------------------------------------------------------------
# Relax-body classification
# ----------------------------------------------------------------------
def classify_relax(func: ast.FunctionDef) -> Optional[str]:
    """Classify a relax body by its returned expressions.

    Every return must agree on one class; a mixed or unrecognized body
    is unclassifiable (``None``).  Parameter names are taken from the
    signature, so renamed arguments still classify.
    """
    params = [arg.arg for arg in func.args.args if arg.arg != "self"]
    if len(params) < 2:
        return None
    src_param, weights_param = params[0], params[1]
    classes: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        cls = _classify_return(node.value, src_param, weights_param)
        if cls is None:
            return None
        classes.add(cls)
    if len(classes) != 1:
        return None
    return classes.pop()


def _classify_return(
    node: ast.AST, src_param: str, weights_param: str
) -> Optional[str]:
    def is_src(expr: ast.AST) -> bool:
        return isinstance(expr, ast.Name) and expr.id == src_param

    def is_weightish(expr: ast.AST) -> bool:
        # The second relax operand: the per-edge weight array or a
        # constant standing in for unit weights (BFS's `+ 1.0`).
        return (
            (isinstance(expr, ast.Name) and expr.id == weights_param)
            or isinstance(expr, ast.Constant)
        )

    # additive: src + w  /  w + src  (Corollary 2, dumb weight 0).
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        operands = (node.left, node.right)
        if any(is_src(op) for op in operands) and any(
            is_weightish(op) for op in operands
        ):
            return "additive"
        return None
    # widest_path: np.minimum(src, w)  (Corollary 3, dumb weight +inf).
    if isinstance(node, ast.Call):
        name = call_name(node)
        tail = name.rsplit(".", 1)[-1]
        if tail in ("minimum", "fmin") and len(node.args) == 2:
            if any(is_src(op) for op in node.args) and any(
                is_weightish(op) for op in node.args
            ):
                return "widest_path"
            return None
        # propagation: src.copy()  (weight-oblivious).
        if (
            tail == "copy"
            and isinstance(node.func, ast.Attribute)
            and is_src(node.func.value)
        ):
            return "propagation"
        return None
    # propagation: bare `return src`.
    if is_src(node):
        return "propagation"
    return None


# ----------------------------------------------------------------------
# Small extractors
# ----------------------------------------------------------------------
def _string_constant(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _bool_constant(node: Optional[ast.AST]) -> Optional[bool]:
    if isinstance(node, ast.Constant) and isinstance(node.value, bool):
        return node.value
    return None


def _reduce_member(node: Optional[ast.AST]) -> Optional[str]:
    """The ``X`` of a ``reduce = ReduceOp.X`` class attribute."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "ReduceOp"
    ):
        return node.attr
    return None


def _node_line(node: Optional[ast.AST], fallback: ast.AST) -> int:
    return getattr(node, "lineno", fallback.lineno)


def _find_method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for method_name, func in iter_class_functions(cls):
        if method_name == name and isinstance(func, ast.FunctionDef):
            return func
    return None
