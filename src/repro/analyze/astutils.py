"""Shared AST machinery for the static checkers.

Everything here is plain :mod:`ast` — no imports of the analyzed code,
so the checkers can run over fixture files with seeded violations (or
over a broken working tree) without executing anything.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: directories never worth scanning.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


@dataclass
class SourceFile:
    """One parsed Python source file."""

    path: str
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def load(cls, path: str) -> Optional["SourceFile"]:
        """Parse ``path``; returns ``None`` for unreadable/unparsable files."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            tree = ast.parse(text, filename=path)
        except (OSError, SyntaxError, ValueError):
            return None
        return cls(path=path, text=text, tree=tree, lines=text.splitlines())


def iter_python_files(root: str) -> Iterator[str]:
    """Yield ``.py`` paths under ``root`` (or ``root`` itself if a file)."""
    if os.path.isfile(root):
        if root.endswith(".py"):
            yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in sorted(dirnames)
            if d not in _SKIP_DIRS and not d.endswith(".egg-info")
        ]
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


#: process-wide parse cache keyed by realpath; entries are invalidated
#: by (mtime_ns, size) so a rewritten file re-parses.  Every rule pass
#: in a run — and every run in a long-lived process — shares one tree
#: per file.
_PARSE_CACHE: Dict[str, Tuple[Tuple[int, int], SourceFile]] = {}


def load_sources(paths: Sequence[str]) -> List[SourceFile]:
    """Load every parsable Python file under the given roots, deduplicated."""
    seen = set()
    sources: List[SourceFile] = []
    for root in paths:
        for path in iter_python_files(root):
            real = os.path.realpath(path)
            if real in seen:
                continue
            seen.add(real)
            try:
                stat = os.stat(real)
                stamp = (stat.st_mtime_ns, stat.st_size)
            except OSError:
                continue
            cached = _PARSE_CACHE.get(real)
            if cached is not None and cached[0] == stamp:
                sources.append(cached[1])
                continue
            source = SourceFile.load(path)
            if source is not None:
                _PARSE_CACHE[real] = (stamp, source)
                sources.append(source)
    return sources


def module_name_for(path: str) -> str:
    """Dotted module name inferred from ``__init__.py`` files on disk.

    Walks up from ``path`` while each parent directory is a package;
    files outside any package (fixtures, scripts) get their bare stem.
    """
    path = os.path.abspath(path)
    stem = os.path.splitext(os.path.basename(path))[0]
    parts: List[str] = [] if stem == "__init__" else [stem]
    parent = os.path.dirname(path)
    while os.path.isfile(os.path.join(parent, "__init__.py")):
        parts.append(os.path.basename(parent))
        parent = os.path.dirname(parent)
    if not parts:
        parts = [os.path.basename(os.path.dirname(path)) or stem]
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Attribute helpers
# ----------------------------------------------------------------------
def self_attribute_name(node: ast.AST) -> Optional[str]:
    """The ``X`` in a ``self.X``-rooted expression, else ``None``.

    Peels subscripts and nested attributes: ``self.stats.hits`` and
    ``self._entries[key]`` both report the first-level attribute
    (``stats`` / ``_entries``), which is the unit the lock checker
    reasons about.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


def call_name(node: ast.Call) -> str:
    """Dotted name of a call target (``np.minimum``, ``int``, ``x.copy``)."""
    return dotted_name(node.func)


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append(dotted_name(node.func) + "()")
    else:
        parts.append("?")
    return ".".join(reversed(parts))


#: method names that mutate their receiver in place.
MUTATING_METHODS = {
    "append", "appendleft", "extend", "insert", "remove", "pop",
    "popleft", "popitem", "clear", "update", "setdefault", "add",
    "discard", "move_to_end", "sort", "reverse",
}


def iter_class_functions(
    cls: ast.ClassDef,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """The class's directly defined (sync) methods."""
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node


def class_constant(cls: ast.ClassDef, name: str) -> Optional[ast.AST]:
    """The value expression of a class-level ``name = ...`` assignment."""
    for node in cls.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == name
                and node.value is not None
            ):
                return node.value
    return None


def base_names(cls: ast.ClassDef) -> List[str]:
    """Base-class names, with module qualifiers stripped."""
    names = []
    for base in cls.bases:
        name = dotted_name(base)
        names.append(name.rsplit(".", 1)[-1])
    return names


# ----------------------------------------------------------------------
# Scalar / array classification (light local dataflow)
# ----------------------------------------------------------------------
#: numpy constructors/ops that produce arrays.
_ARRAY_PRODUCERS = {
    "array", "asarray", "ascontiguousarray", "arange", "linspace",
    "zeros", "zeros_like", "ones", "ones_like", "full", "full_like",
    "empty", "empty_like", "where", "nonzero", "flatnonzero", "unique",
    "concatenate", "hstack", "vstack", "stack", "repeat", "tile",
    "argsort", "searchsorted", "cumsum", "bincount", "minimum",
    "maximum", "add", "fmin", "fmax", "sort", "argwhere", "indices",
    "copy", "astype", "ravel", "flatten", "take", "compress",
}
#: calls that produce scalars.
_SCALAR_PRODUCERS = {"int", "len", "float", "round", "abs", "min", "max", "sum"}

#: attribute names conventionally holding per-edge / per-node arrays in
#: this codebase (CSR fields and friends).
_ARRAY_ATTRS = {"targets", "offsets", "weights", "sources", "src", "dst"}

SCALAR, ARRAY, MASK, UNKNOWN = "scalar", "array", "mask", "unknown"


class _BindingCollector(ast.NodeVisitor):
    """Record, per local name, the kinds of values bound to it."""

    def __init__(self) -> None:
        self.bindings: Dict[str, set] = {}

    def _bind(self, target: ast.AST, kind: str) -> None:
        if isinstance(target, ast.Name):
            self.bindings.setdefault(target.id, set()).add(kind)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                # Tuple unpacking of an array yields its elements;
                # conservatively mark them unknown.
                self._bind(element, UNKNOWN if kind == ARRAY else kind)

    def visit_Assign(self, node: ast.Assign) -> None:
        kind = classify_expr(node.value, self.bindings)
        for target in node.targets:
            self._bind(target, kind)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind(node.target, classify_expr(node.value, self.bindings))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        # Iterating yields one element per step: scalars for the 1-D
        # arrays this codebase loops over.  (2-D row iteration is the
        # rare exception; treating it as scalar under-reports, which
        # is the conservative direction for a linter.)
        self._bind(node.target, SCALAR)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._bind(node.target, SCALAR)
        self.generic_visit(node)


def local_bindings(func: ast.AST) -> Dict[str, set]:
    """Name -> kinds bound in ``func`` (module- or function-level)."""
    collector = _BindingCollector()
    collector.visit(func)
    return collector.bindings


def classify_expr(node: ast.AST, bindings: Dict[str, set]) -> str:
    """Classify an expression as SCALAR / ARRAY / MASK / UNKNOWN.

    Used to decide whether a subscript index can contain repeated
    entries: only integer *arrays* can; scalars, slices, and boolean
    masks cannot.
    """
    if isinstance(node, ast.Constant):
        return SCALAR
    if isinstance(node, ast.UnaryOp):
        return classify_expr(node.operand, bindings)
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        # Elementwise comparisons build boolean masks; mask indexing
        # selects each position at most once.
        return MASK
    if isinstance(node, ast.Call):
        name = call_name(node)
        tail = name.rsplit(".", 1)[-1]
        if tail in _SCALAR_PRODUCERS and "." not in name:
            return SCALAR
        if name.startswith(("np.", "numpy.")) and tail in _ARRAY_PRODUCERS:
            return ARRAY
        if tail in ("copy", "astype", "ravel", "flatten") and isinstance(
            node.func, ast.Attribute
        ):
            return classify_expr(node.func.value, bindings)
        return UNKNOWN
    if isinstance(node, ast.Name):
        kinds = bindings.get(node.id)
        if not kinds:
            return UNKNOWN
        if ARRAY in kinds:
            return ARRAY
        if kinds == {SCALAR}:
            return SCALAR
        if kinds == {MASK}:
            return MASK
        return UNKNOWN
    if isinstance(node, ast.Attribute):
        if node.attr in _ARRAY_ATTRS:
            return ARRAY
        return UNKNOWN
    if isinstance(node, ast.Subscript):
        index_kind = classify_expr(node.slice, bindings)
        if isinstance(node.slice, ast.Slice) or index_kind in (ARRAY, MASK):
            return ARRAY
        return UNKNOWN
    if isinstance(node, ast.Slice):
        return SCALAR  # handled structurally by callers
    if isinstance(node, ast.Tuple):
        kinds = {classify_expr(element, bindings) for element in node.elts}
        if ARRAY in kinds:
            return ARRAY
        return SCALAR if kinds <= {SCALAR} else UNKNOWN
    if isinstance(node, ast.BinOp):
        left = classify_expr(node.left, bindings)
        right = classify_expr(node.right, bindings)
        if ARRAY in (left, right):
            return ARRAY
        if left == right == SCALAR:
            return SCALAR
        return UNKNOWN
    return UNKNOWN


def index_may_repeat(index: ast.AST, bindings: Dict[str, set]) -> bool:
    """Whether a subscript index can address one slot twice.

    True only for (possible) integer arrays.  Scalars address one
    slot; slices and boolean masks address each slot at most once, so
    buffered writes through them are safe.
    """
    if isinstance(index, ast.Slice):
        return False
    if isinstance(index, ast.Tuple):
        return any(
            index_may_repeat(element, bindings)
            for element in index.elts
            if not isinstance(element, ast.Slice)
        )
    return classify_expr(index, bindings) == ARRAY
