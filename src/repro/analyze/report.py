"""Findings, the rule catalog, suppression, and rendering.

Every checker in :mod:`repro.analyze` reports through the same
:class:`Finding` shape so the CLI can interleave results from all
families, sort them by location, and emit either a human listing or a
machine-readable JSON document (the ``--json`` contract the CI gate
consumes).

Rules are registered in :data:`RULES`; the id namespaces mirror the
three checker families:

* ``SPLIT*`` — split-safety verification of vertex programs against
  the §3.3 applicability table (Theorems 1 and 3);
* ``LOCK*``  — lock discipline over classes with ``threading`` locks;
* ``SCAT*``  — buffered numpy scatter writes that silently drop
  duplicate-index folds.

Suppression is per line: a trailing ``# analyze: ignore`` comment
silences every rule on that line, ``# analyze: ignore[SCAT001]`` (a
comma-separated id list) silences only the named ones.
"""

from __future__ import annotations

import fnmatch
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: severity levels, in increasing order of badness.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Rule:
    """One registered rule: id, severity, and its paper anchor."""

    rule_id: str
    severity: str
    title: str
    #: which theorem/corollary or engineering invariant backs the rule.
    rationale: str


#: the rule catalog (docs/static-analysis.md documents each entry).
RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in [
        Rule(
            "SPLIT001",
            "error",
            "reduction is not associative+commutative",
            "Theorem 3 requires an associative, commutative, monotone "
            "reduction for virtual-split pull correctness; only "
            "ReduceOp.MIN/MAX/ADD qualify.",
        ),
        Rule(
            "SPLIT002",
            "error",
            "relax body does not match its declared path-metric class",
            "Theorem 1 assigns a dumb weight per path-metric class; an "
            "unclassifiable or misclassified relax body cannot be "
            "verified against it.",
        ),
        Rule(
            "SPLIT003",
            "error",
            "dumb weight inferred from relax disagrees with the table",
            "Theorem 1: additive metrics need dumb weight 0, widest-path "
            "metrics need +inf; the applicability table must agree with "
            "the code.",
        ),
        Rule(
            "SPLIT004",
            "error",
            "program/applicability-table drift",
            "Every PushProgram must be backed by a §3.3 applicability "
            "entry and vice versa; a split-unsafe analytic must not "
            "have a split-engine program.",
        ),
        Rule(
            "SPLIT005",
            "error",
            "declared ReduceOp differs from the applicability expectation",
            "The (relax, reduce) pair is what Theorems 1+3 certify; "
            "editing one side silently invalidates the proof.",
        ),
        Rule(
            "SPLIT006",
            "error",
            "lane-safety drift between the program and the table",
            "Lane-parallel (multi-source) execution relaxes the union "
            "frontier for every lane; that is sound only for idempotent "
            "reductions (MIN/MAX). The applicability table certifies "
            "lane_safe per program, and it must match what the declared "
            "ReduceOp implies — a reduce edit silently flipping lane "
            "safety corrupts batched traversals.",
        ),
        Rule(
            "LOCK001",
            "error",
            "lock-guarded attribute mutated outside the lock",
            "An attribute written under `with self._lock:` anywhere must "
            "be written under it everywhere, or concurrent workers race.",
        ),
        Rule(
            "LOCK002",
            "error",
            "lock-guarded attribute read-modify-written outside the lock",
            "`x += 1` on a guarded attribute is a lost-update race even "
            "when single writes would be atomic.",
        ),
        Rule(
            "LOCK003",
            "warning",
            "lock-guarded attribute read outside the lock",
            "Unlocked reads of guarded state observe torn multi-field "
            "invariants; usually benign for single counters, flagged "
            "for review.",
        ),
        Rule(
            "SCAT001",
            "error",
            "buffered in-place scatter with a possibly-repeating index",
            "`values[idx] op= x` buffers: duplicate indices fold once, "
            "not per occurrence. Use the sanctioned ufunc.at path "
            "(ReduceOp.scatter).",
        ),
        Rule(
            "SCAT002",
            "error",
            "buffered ufunc written back into an indexed target",
            "`values[idx] = np.minimum(values[idx], c)` (or `out=` into "
            "a fancy-indexed view) drops duplicate-index folds exactly "
            "like an augmented assignment.",
        ),
        Rule(
            "ASYNC001",
            "error",
            "blocking call transitively reachable from an async def",
            "The HTTP tier is one event loop; any `time.sleep`, blocking "
            "`queue.Queue` op, lock acquire, file/socket I/O, or "
            "subprocess wait on a call path from an `async def` stalls "
            "every in-flight request. Reachability is computed over the "
            "project call graph, so the blocking call is flagged even "
            "when it hides several sync frames deep.",
        ),
        Rule(
            "ASYNC002",
            "error",
            "threading lock held across an await",
            "An `await` inside `with <threading lock>:` parks the "
            "coroutine while the lock stays held; a dispatcher thread "
            "that needs the lock then deadlocks against the loop. Hold "
            "thread locks only across straight-line sync code, or use "
            "asyncio.Lock.",
        ),
        Rule(
            "ASYNC003",
            "error",
            "coroutine call never awaited",
            "Calling an `async def` returns a coroutine object; as a "
            "bare expression statement the work silently never runs "
            "(Python only warns at GC time). Await it, or wrap it in "
            "asyncio.create_task.",
        ),
        Rule(
            "ASYNC004",
            "error",
            "asyncio loop/future API touched from thread-side code",
            "Event loops, futures, asyncio.Queue and asyncio.Event are "
            "not thread-safe; dispatcher threads must marshal through "
            "`loop.call_soon_threadsafe(...)` — the contract the "
            "QueryTicket bridge is built on.",
        ),
        Rule(
            "ASYNC005",
            "error",
            "async route handler without typed-error mapping",
            "Every module that registers async handlers in a route "
            "table must map the protocol taxonomy (`BadRequest`, "
            "`TigrError`) through `error_response`, or failures surface "
            "as dropped connections instead of typed wire errors.",
        ),
        Rule(
            "LOCK004",
            "error",
            "guarded service state mutated outside its owning class",
            "ServiceMetrics and the catalog guard every mutation with "
            "their own lock; code that reaches into their attributes "
            "from outside bypasses that lock and races the dispatcher "
            "threads. Call the owning class's methods instead.",
        ),
        Rule(
            "KERN001",
            "error",
            "kernel backend without a certified parity fixture",
            "A kernel backend replaces the engines' relax/reduce inner "
            "loops, so a wrong one corrupts every analytic at once. "
            "Every backend class must carry a KernelBackendExpectation "
            "in repro.core.applicability.KERNEL_BACKEND_EXPECTATIONS "
            "naming the test module that proves it bitwise-equal to "
            "the numpy baseline.",
        ),
    ]
}


@dataclass(frozen=True)
class Finding:
    """One reported violation, anchored to a file and line."""

    rule_id: str
    path: str
    line: int
    message: str
    #: severity copied from the rule at construction (kept on the
    #: finding so JSON consumers need no catalog).
    severity: str = ""
    col: int = 0

    @staticmethod
    def make(rule_id: str, path: str, line: int, message: str, col: int = 0) -> "Finding":
        return Finding(
            rule_id=rule_id,
            path=path,
            line=line,
            message=message,
            severity=RULES[rule_id].severity,
            col=col,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.severity}[{self.rule_id}] "
            f"{self.message}"
        )


_SUPPRESS_RE = re.compile(r"#\s*analyze:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")


def suppressed_rules(source_line: str) -> Optional[Tuple[str, ...]]:
    """Parse a line's suppression pragma.

    Returns ``None`` when the line has no pragma, ``()`` for a blanket
    ``# analyze: ignore``, or the tuple of named rule ids.
    """
    match = _SUPPRESS_RE.search(source_line)
    if match is None:
        return None
    if match.group(1) is None:
        return ()
    return tuple(part.strip() for part in match.group(1).split(",") if part.strip())


def is_suppressed(finding: Finding, source_lines: List[str]) -> bool:
    """Whether the source line the finding anchors to silences it."""
    if not 1 <= finding.line <= len(source_lines):
        return False
    rules = suppressed_rules(source_lines[finding.line - 1])
    if rules is None:
        return False
    return rules == () or finding.rule_id in rules


def expand_rule_selectors(
    selectors: Optional[Iterable[str]],
) -> Optional[set]:
    """Expand ``--rule`` selectors into a set of known rule ids.

    Each selector may be a comma-separated list; items may be exact
    ids (``ASYNC001``) or ``fnmatch`` patterns (``ASYNC*``,
    ``LOCK00?``).  Raises :class:`ValueError` for an unknown id or a
    pattern matching nothing.  ``None`` passes through (no filter).
    """
    if selectors is None:
        return None
    ids: set = set()
    for raw in selectors:
        for part in str(raw).split(","):
            part = part.strip()
            if not part:
                continue
            if any(ch in part for ch in "*?["):
                matched = {
                    rule_id
                    for rule_id in RULES
                    if fnmatch.fnmatchcase(rule_id, part)
                }
                if not matched:
                    raise ValueError(
                        f"unknown rule pattern {part!r}: matches no "
                        f"registered rule"
                    )
                ids |= matched
            elif part in RULES:
                ids.add(part)
            else:
                raise ValueError(f"unknown rule id(s): {part}")
    return ids


#: pinned schema for ``--format sarif`` (SARIF 2.1.0).
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


@dataclass
class Report:
    """The full outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: findings dropped by per-line pragmas (counted for visibility).
    suppressed: int = 0
    #: wall-clock seconds for the whole run.
    elapsed_s: float = 0.0
    #: per-phase wall-clock seconds (parse, callgraph, each checker).
    timings: Dict[str, float] = field(default_factory=dict)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def sort(self) -> None:
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule_id] = out.get(finding.rule_id, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "files_scanned": self.files_scanned,
                "suppressed": self.suppressed,
                "counts": self.counts(),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "elapsed_s": round(self.elapsed_s, 6),
                "timings": {
                    phase: round(seconds, 6)
                    for phase, seconds in sorted(self.timings.items())
                },
                "findings": [f.as_dict() for f in self.findings],
            },
            indent=2,
        )

    def to_sarif(self) -> str:
        """Render as a SARIF 2.1.0 log (one run, one result per finding)."""
        rule_ids = sorted(RULES)
        rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
        results = []
        for finding in self.findings:
            uri = os.path.relpath(finding.path).replace(os.sep, "/")
            results.append(
                {
                    "ruleId": finding.rule_id,
                    "ruleIndex": rule_index[finding.rule_id],
                    "level": finding.severity,
                    "message": {"text": finding.message},
                    "locations": [
                        {
                            "physicalLocation": {
                                "artifactLocation": {"uri": uri},
                                "region": {
                                    "startLine": finding.line,
                                    "startColumn": max(1, finding.col + 1),
                                },
                            }
                        }
                    ],
                }
            )
        import repro

        log = {
            "$schema": SARIF_SCHEMA,
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-analyze",
                            "version": repro.__version__,
                            "rules": [
                                {
                                    "id": rule_id,
                                    "name": rule_id,
                                    "shortDescription": {
                                        "text": RULES[rule_id].title
                                    },
                                    "fullDescription": {
                                        "text": RULES[rule_id].rationale
                                    },
                                    "defaultConfiguration": {
                                        "level": RULES[rule_id].severity
                                    },
                                }
                                for rule_id in rule_ids
                            ],
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(log, indent=2)

    def to_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        wall = (
            f"; wall {self.elapsed_s * 1000.0:.0f}ms"
            if self.elapsed_s
            else ""
        )
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s) "
            f"in {self.files_scanned} file(s)"
            + (f"; {self.suppressed} suppressed" if self.suppressed else "")
            + wall
        )
        return "\n".join(lines)
