"""Buffered numpy scatter-write lint.

The engines model GPU atomics with *unbuffered* ``ufunc.at`` calls
(:meth:`repro.engine.program.ReduceOp.scatter`): when the destination
index array contains a node twice, both candidates fold.  The buffered
spellings look identical and silently do not::

    values[index] += candidates          # each duplicate folds ONCE
    values[index] = np.minimum(values[index], candidates)   # same bug
    np.minimum(values[index], c, out=values[index])         # same bug

numpy evaluates the gather once, applies the op, and writes back — the
classic lost-fold race that Theorem 3's associativity argument exists
to make irrelevant *provided the fold actually happens*.

The checker flags these three shapes whenever the subscript index is
classified as a (possibly repeating) integer array by the light local
dataflow in :mod:`repro.analyze.astutils`.  Scalar indices, slices,
and boolean masks cannot repeat and are never flagged, which keeps the
ordinary ``for u in range(n): counts[u] += 1`` reference code quiet.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from repro.analyze.astutils import (
    SourceFile,
    call_name,
    index_may_repeat,
    local_bindings,
)
from repro.analyze.report import Finding

#: ufuncs whose buffered application into an indexed target loses folds.
_FOLD_UFUNCS = {"minimum", "maximum", "fmin", "fmax", "add"}


def check_scatter(context) -> List[Finding]:
    findings: List[Finding] = []
    for source in context.sources:
        for scope in _scopes(source.tree):
            bindings = local_bindings(scope)
            for node in _scope_statements(scope):
                findings.extend(_check_node(source, node, bindings))
    return findings


def _scopes(tree: ast.Module):
    """The module plus every function, each analyzed with its own bindings."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_statements(scope: ast.AST):
    """Nodes belonging to ``scope`` but not to a nested function."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _check_node(
    source: SourceFile, node: ast.AST, bindings: Dict[str, set]
) -> List[Finding]:
    findings: List[Finding] = []
    # values[index] op= candidates
    if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Subscript):
        if index_may_repeat(node.target.slice, bindings):
            findings.append(Finding.make(
                "SCAT001", source.path, node.lineno,
                "augmented assignment into an array-indexed target "
                "buffers duplicate indices (each folds once); use the "
                "unbuffered ufunc.at path (ReduceOp.scatter)",
            ))
        return findings
    # values[index] = np.minimum(values[index], candidates)
    if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
        ufunc = _fold_ufunc(node.value)
        if ufunc is not None:
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and index_may_repeat(target.slice, bindings)
                    and _subscript_in_args(target, node.value)
                ):
                    findings.append(Finding.make(
                        "SCAT002", source.path, node.lineno,
                        f"np.{ufunc} gathered and written back through "
                        f"an array index drops duplicate-index folds; "
                        f"use np.{ufunc}.at(values, index, candidates)",
                    ))
        return findings
    # np.minimum(..., out=values[index])
    if isinstance(node, ast.Call):
        ufunc = _fold_ufunc(node)
        if ufunc is None:
            return findings
        for keyword in node.keywords:
            if (
                keyword.arg == "out"
                and isinstance(keyword.value, ast.Subscript)
                and index_may_repeat(keyword.value.slice, bindings)
            ):
                findings.append(Finding.make(
                    "SCAT002", source.path, node.lineno,
                    f"np.{ufunc} with out= aimed at an array-indexed "
                    f"view writes a buffered temporary; duplicate "
                    f"indices fold once — use np.{ufunc}.at",
                ))
    return findings


def _fold_ufunc(call: ast.Call) -> "str | None":
    name = call_name(call)
    if not name.startswith(("np.", "numpy.")):
        return None
    tail = name.rsplit(".", 1)[-1]
    return tail if tail in _FOLD_UFUNCS else None


def _subscript_in_args(target: ast.Subscript, call: ast.Call) -> bool:
    """Whether the written subscript is also gathered as an argument."""
    rendered = ast.dump(target)
    # ast.dump includes ctx; normalize Store vs Load.
    rendered = rendered.replace("ctx=Store()", "ctx=Load()")
    for arg in call.args:
        if ast.dump(arg).replace("ctx=Store()", "ctx=Load()") == rendered:
            return True
    return False
