"""Kernel-backend certification check (rule KERN001).

A kernel backend (:mod:`repro.engine.kernels`) substitutes compiled
code for the engines' relax/reduce inner loops — the one place where a
bug silently corrupts *every* analytic at once.  The project's safety
story for that risk is bitwise parity: each backend must be proven
equal to the numpy baseline by a dedicated parity test module, and
that proof obligation is recorded in
:data:`repro.core.applicability.KERNEL_BACKEND_EXPECTATIONS`.

This checker closes the loop statically, in the same style as the
vertex-program checks (:mod:`repro.analyze.programs`):

* every class subclassing ``KernelBackend`` (or the base class itself,
  which *is* the numpy backend) must declare a literal ``name``;
* that name must appear in ``KERNEL_BACKEND_EXPECTATIONS``;
* the matching expectation must declare a non-empty parity fixture.

Nothing is imported from the scanned sources — discovery is purely
syntactic, so seeded-violation fixtures are analyzable.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analyze.astutils import SourceFile, base_names, class_constant
from repro.analyze.report import Finding
from repro.core.applicability import KERNEL_BACKEND_EXPECTATIONS

#: base-class names that mark a kernel backend implementation.
_BACKEND_BASES = {"KernelBackend"}


def _is_backend_class(node: ast.ClassDef) -> bool:
    """A backend is a subclass of ``KernelBackend`` — or the base
    class itself, which doubles as the numpy baseline backend."""
    if set(base_names(node)) & _BACKEND_BASES:
        return True
    return node.name in _BACKEND_BASES


def _string_constant(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def check_kernels(context) -> List[Finding]:
    """Run the kernel-backend certification check over the scan."""
    findings: List[Finding] = []
    backends: List[tuple] = []  # (source, cls, name)
    for source in context.sources:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and _is_backend_class(node):
                name = _string_constant(class_constant(node, "name"))
                backends.append((source, node, name))
                findings.extend(_check_one(source, node, name))

    # Table-side drift — only when the scan actually covered backend
    # definitions (a partial-path run over the service layer must not
    # demand the kernels module be present).
    if backends:
        findings.extend(_check_table_coverage(backends))
    return findings


def _check_one(
    source: SourceFile, cls: ast.ClassDef, name: Optional[str]
) -> List[Finding]:
    path = source.path
    if name is None:
        return [Finding.make(
            "KERN001", path, cls.lineno,
            f"{cls.name}: kernel backend declares no literal `name`; it "
            f"cannot be matched against KERNEL_BACKEND_EXPECTATIONS and "
            f"its parity with the numpy baseline is uncertified",
        )]
    expectation = KERNEL_BACKEND_EXPECTATIONS.get(name)
    if expectation is None:
        return [Finding.make(
            "KERN001", path, cls.lineno,
            f"{cls.name}: backend {name!r} has no "
            f"KernelBackendExpectation in "
            f"repro.core.applicability.KERNEL_BACKEND_EXPECTATIONS — "
            f"register it with the parity fixture that proves it "
            f"bitwise-equal to the numpy baseline",
        )]
    if not expectation.parity_fixture:
        return [Finding.make(
            "KERN001", path, cls.lineno,
            f"{cls.name}: backend {name!r} is registered without a "
            f"parity fixture; an unproven backend must not replace the "
            f"engines' inner loops",
        )]
    return []


def _check_table_coverage(backends: List[tuple]) -> List[Finding]:
    """Expectations with no backing class are dead certifications."""
    findings: List[Finding] = []
    seen: Set[str] = {name for _, _, name in backends if name}
    # Anchor table-side findings on the file that defined the most
    # backends — the place the missing definition belongs.
    anchor = max(
        (source.path for source, _, _ in backends),
        key=lambda p: sum(source.path == p for source, _, _ in backends),
    )
    for name, expectation in sorted(KERNEL_BACKEND_EXPECTATIONS.items()):
        if name not in seen:
            findings.append(Finding.make(
                "KERN001", anchor, 1,
                f"KERNEL_BACKEND_EXPECTATIONS certifies a backend named "
                f"{name!r} (fixture {expectation.parity_fixture!r}) but "
                f"the scan found no class declaring it",
            ))
    return findings
