"""Concurrency rules for the asyncio/thread seam (ASYNC001-005, LOCK004).

PR 6 put an asyncio HTTP front door on top of the threaded executor;
these rules machine-check the invariants that seam lives by (see
docs/http-api.md, "Concurrency invariants"):

* the event loop's thread never blocks (ASYNC001) and never sleeps
  holding a ``threading`` lock across an ``await`` (ASYNC002);
* coroutines are awaited, not dropped (ASYNC003);
* thread-side code touches loop-affine objects (loop, futures,
  ``asyncio.Queue``/``Event``) only through
  ``call_soon_threadsafe`` (ASYNC004);
* every async route handler's module maps typed errors through
  :func:`repro.service.api.protocol.error_response` (ASYNC005);
* :class:`ServiceMetrics` / catalog internals are mutated only by
  their own lock-guarded methods (LOCK004).

All reachability/typing questions are answered by the shared
:class:`repro.analyze.callgraph.CallGraph` — blocking calls are
flagged *transitively*: a ``queue.Queue.put`` three sync frames below
an ``async def`` anchors a finding at the blocking line, naming the
async entry point and the witness chain.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analyze.astutils import MUTATING_METHODS, SourceFile, dotted_name
from repro.analyze.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    iter_own_nodes,
)
from repro.analyze.report import Finding

#: normalized external call targets that block the calling thread.
#: Keys match the call graph's type-expanded names (``self._queue`` of
#: type ``queue.Queue`` calling ``.put`` yields ``queue.Queue.put``).
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "sleeps the calling thread",
    "queue.Queue.put": "can block on a full queue",
    "queue.Queue.get": "can block on an empty queue",
    "queue.Queue.join": "waits for queue drain",
    "queue.SimpleQueue.put": "can block on a full queue",
    "queue.SimpleQueue.get": "can block on an empty queue",
    "threading.Lock.acquire": "waits on a thread lock",
    "threading.RLock.acquire": "waits on a thread lock",
    "threading.Condition.acquire": "waits on a thread lock",
    "threading.Condition.wait": "waits on a condition",
    "threading.Semaphore.acquire": "waits on a semaphore",
    "threading.BoundedSemaphore.acquire": "waits on a semaphore",
    "threading.Event.wait": "waits on a thread event",
    "threading.Thread.join": "joins a thread",
    "subprocess.run": "waits on a child process",
    "subprocess.call": "waits on a child process",
    "subprocess.check_call": "waits on a child process",
    "subprocess.check_output": "waits on a child process",
    "subprocess.Popen.wait": "waits on a child process",
    "subprocess.Popen.communicate": "waits on a child process",
    "os.system": "waits on a shell",
    "os.waitpid": "waits on a child process",
    "socket.create_connection": "synchronous network I/O",
    "urllib.request.urlopen": "synchronous network I/O",
    "open": "synchronous file I/O",
    "input": "waits on stdin",
}

#: ``threading`` lock-ish constructors (ASYNC002 context managers).
_THREAD_LOCK_TYPES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
}

#: receiver-type canonicalization for loop-affine objects.  The call
#: graph types ``loop = asyncio.get_running_loop()`` as the factory's
#: dotted name and ``fut = loop.create_future()`` as a ``.create_future``
#: suffix, so both spellings land in a small canonical space.
_LOOP_TYPES = {
    "asyncio.get_running_loop", "asyncio.get_event_loop",
    "asyncio.new_event_loop", "asyncio.AbstractEventLoop",
    "asyncio.base_events.BaseEventLoop", "asyncio.events.AbstractEventLoop",
}

#: (canonical receiver, method) pairs only the loop's thread may call.
_LOOP_AFFINE: Set[Tuple[str, str]] = {
    ("loop", "call_soon"), ("loop", "call_later"), ("loop", "call_at"),
    ("loop", "stop"), ("loop", "create_task"),
    ("future", "set_result"), ("future", "set_exception"),
    ("future", "cancel"),
    ("queue", "put_nowait"), ("queue", "get_nowait"),
    ("event", "set"), ("event", "clear"),
}

#: thread-safe scheduling APIs — using one exempts both the call and
#: the callback it schedules.
_THREADSAFE_APIS = {"call_soon_threadsafe", "run_coroutine_threadsafe"}

#: exception names (tails) that count as the service's typed taxonomy.
_TAXONOMY_NAMES = {"TigrError", "ServiceError", "BadRequest", "Exception"}

#: route-table names whose dict values register handlers.
_ROUTE_TABLE_NAMES = {"_routes", "routes", "ROUTES", "_ROUTES"}

#: classes whose internal state is lock-guarded (LOCK004): every
#: mutation must go through their own methods.
_GUARDED_CLASSES = {"ServiceMetrics", "GraphCatalog"}


def check_concurrency(context) -> List[Finding]:
    """Run ASYNC001-005 and LOCK004 over the shared analysis context."""
    graph = context.callgraph
    findings: List[Finding] = []
    findings.extend(_check_blocking(graph))
    findings.extend(_check_lock_across_await(graph))
    findings.extend(_check_unawaited(graph))
    findings.extend(_check_threadside_loop_apis(graph))
    findings.extend(_check_handler_error_mapping(context.sources, graph))
    findings.extend(_check_guarded_mutations(graph))
    return findings


# ----------------------------------------------------------------------
# ASYNC001 — blocking call reachable from an async def
# ----------------------------------------------------------------------
def _blocking_target(site: CallSite) -> Optional[str]:
    target = site.external
    if target is not None and target in BLOCKING_CALLS:
        return target
    return None


def _short(qualname: str) -> str:
    """Human chain label: ``pkg.mod.Cls.meth`` -> ``Cls.meth``."""
    parts = [p for p in qualname.split(".") if p != "<locals>"]
    return ".".join(parts[-2:]) if len(parts) >= 2 else qualname


def _check_blocking(graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    reach = graph.async_call_paths()
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if fn.is_async:
            chain: Optional[Tuple[str, ...]] = (qualname,)
        elif qualname in reach:
            chain = reach[qualname]
        else:
            continue
        for site in fn.calls:
            target = _blocking_target(site)
            if target is None:
                continue
            reason = BLOCKING_CALLS[target]
            if len(chain) == 1:
                message = (
                    f"blocking call `{target}` ({reason}) inside "
                    f"`async def {fn.name}` stalls the event loop; await "
                    f"an async equivalent or move it to run_in_executor"
                )
            else:
                witness = " -> ".join(_short(q) for q in chain)
                message = (
                    f"blocking call `{target}` ({reason}) is reachable "
                    f"from `async def {_short(chain[0])}` via {witness}; "
                    f"it can stall the event loop"
                )
            findings.append(
                Finding.make("ASYNC001", fn.path, site.line, message)
            )
    return findings


# ----------------------------------------------------------------------
# ASYNC002 — threading lock held across an await
# ----------------------------------------------------------------------
def _check_lock_across_await(graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if not fn.is_async or fn.scope is None:
            continue
        for node in iter_own_nodes(fn.node):
            if not isinstance(node, ast.With):
                continue
            lock_name = _threading_lock_item(node, fn, graph)
            if lock_name is None:
                continue
            if any(
                isinstance(sub, ast.Await)
                for stmt in node.body
                for sub in _own_walk(stmt)
            ):
                findings.append(
                    Finding.make(
                        "ASYNC002", fn.path, node.lineno,
                        f"threading lock `{lock_name}` held across an "
                        f"`await` in `async def {fn.name}`: the loop can "
                        f"deadlock against the thread that needs the lock; "
                        f"release before awaiting or use asyncio.Lock",
                    )
                )
    return findings


def _own_walk(node: ast.AST) -> Iterator[ast.AST]:
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _threading_lock_item(
    node: ast.With, fn: FunctionInfo, graph: CallGraph
) -> Optional[str]:
    for item in node.items:
        token = graph.type_of(item.context_expr, fn.scope)
        if token in _THREAD_LOCK_TYPES:
            return dotted_name(item.context_expr)
    return None


# ----------------------------------------------------------------------
# ASYNC003 — coroutine call never awaited
# ----------------------------------------------------------------------
def _check_unawaited(graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        for site in fn.calls:
            if site.resolved is None or site.awaited or not site.discarded:
                continue
            callee = graph.functions.get(site.resolved)
            if callee is None or not callee.is_async:
                continue
            findings.append(
                Finding.make(
                    "ASYNC003", fn.path, site.line,
                    f"`{site.name}(...)` creates a coroutine for "
                    f"`async def {callee.name}` but never awaits it — "
                    f"the call is a no-op; await it or create a task",
                )
            )
    return findings


# ----------------------------------------------------------------------
# ASYNC004 — loop/future APIs touched from thread-side code
# ----------------------------------------------------------------------
def _canonical_receiver(receiver: str) -> Optional[str]:
    if receiver in _LOOP_TYPES:
        return "loop"
    if receiver == "asyncio.Future" or receiver.endswith(".create_future"):
        return "future"
    if receiver == "asyncio.Queue":
        return "queue"
    if receiver == "asyncio.Event":
        return "event"
    return None


def _scheduled_callback_names(graph: CallGraph) -> Dict[str, Set[str]]:
    """Module -> names passed to a thread-safe scheduling API."""
    scheduled: Dict[str, Set[str]] = {}
    for fn in graph.functions.values():
        for site in fn.calls:
            tail = site.name.rsplit(".", 1)[-1]
            if tail not in _THREADSAFE_APIS:
                continue
            for arg in site.node.args[:1]:
                if isinstance(arg, ast.Name):
                    scheduled.setdefault(fn.module, set()).add(arg.id)
                elif isinstance(arg, ast.Attribute):
                    scheduled.setdefault(fn.module, set()).add(arg.attr)
    return scheduled


def _thread_target_names(graph: CallGraph) -> Dict[str, Set[str]]:
    """Module -> names handed to another thread as callbacks."""
    targets: Dict[str, Set[str]] = {}
    for fn in graph.functions.values():
        for site in fn.calls:
            tail = site.name.rsplit(".", 1)[-1]
            names: List[ast.AST] = []
            if tail == "add_done_callback":
                names.extend(site.node.args[:1])
            elif tail == "Thread":
                for kw in site.node.keywords:
                    if kw.arg == "target":
                        names.append(kw.value)
            elif tail == "run_in_executor":
                names.extend(site.node.args[1:2])
            for arg in names:
                if isinstance(arg, ast.Name):
                    targets.setdefault(fn.module, set()).add(arg.id)
                elif isinstance(arg, ast.Attribute):
                    targets.setdefault(fn.module, set()).add(arg.attr)
    return targets


def _has_async_ancestor(fn: FunctionInfo, graph: CallGraph) -> bool:
    current = fn
    while current.parent is not None:
        parent = graph.functions.get(current.parent)
        if parent is None:
            return False
        if parent.is_async:
            return True
        current = parent
    return False


def _check_threadside_loop_apis(graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    scheduled = _scheduled_callback_names(graph)
    thread_targets = _thread_target_names(graph)
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if fn.is_async:
            continue
        if fn.name in scheduled.get(fn.module, set()):
            continue  # runs on the loop via call_soon_threadsafe
        is_thread_side = (
            not _has_async_ancestor(fn, graph)
            or fn.name in thread_targets.get(fn.module, set())
        )
        if not is_thread_side:
            continue  # sync helper living inside an async def
        for site in fn.calls:
            if site.external is None or "." not in site.external:
                continue
            receiver, method = site.external.rsplit(".", 1)
            if method in _THREADSAFE_APIS:
                continue
            canon = _canonical_receiver(receiver)
            if canon is None or (canon, method) not in _LOOP_AFFINE:
                continue
            findings.append(
                Finding.make(
                    "ASYNC004", fn.path, site.line,
                    f"`{site.name}(...)` touches a loop-affine asyncio "
                    f"object from thread-side `{fn.name}`; asyncio "
                    f"primitives are not thread-safe — marshal through "
                    f"`loop.call_soon_threadsafe(...)`",
                )
            )
    return findings


# ----------------------------------------------------------------------
# ASYNC005 — async route handler without typed-error mapping
# ----------------------------------------------------------------------
def _module_has_error_mapping(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        names = _exception_names(node.type)
        if not names & _TAXONOMY_NAMES:
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and dotted_name(sub.func).rsplit(".", 1)[-1]
                == "error_response"
            ):
                return True
    return False


def _exception_names(node: Optional[ast.AST]) -> Set[str]:
    if node is None:
        return {"Exception"}  # bare except catches the taxonomy too
    if isinstance(node, ast.Tuple):
        names: Set[str] = set()
        for element in node.elts:
            names |= _exception_names(element)
        return names
    name = dotted_name(node)
    return {name.rsplit(".", 1)[-1]} if "?" not in name else set()


def _registered_handlers(tree: ast.Module) -> Set[str]:
    handlers: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Dict
        ):
            continue
        for target in node.targets:
            tail = (
                target.attr
                if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else None
            )
            if tail not in _ROUTE_TABLE_NAMES:
                continue
            for value in node.value.values:
                if isinstance(value, ast.Attribute):
                    handlers.add(value.attr)
                elif isinstance(value, ast.Name):
                    handlers.add(value.id)
    return handlers


def _check_handler_error_mapping(
    sources: List[SourceFile], graph: CallGraph
) -> List[Finding]:
    findings: List[Finding] = []
    for source in sources:
        handlers = _registered_handlers(source.tree)
        if not handlers:
            continue
        if _module_has_error_mapping(source.tree):
            continue
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.AsyncFunctionDef)
                and node.name in handlers
            ):
                findings.append(
                    Finding.make(
                        "ASYNC005", source.path, node.lineno,
                        f"async route handler `{node.name}` is registered "
                        f"in a module with no typed-error mapping: add an "
                        f"`except (BadRequest, TigrError)` that returns "
                        f"`error_response(exc)` so failures reach clients "
                        f"as protocol errors, not dropped connections",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# LOCK004 — guarded-state mutation outside its class
# ----------------------------------------------------------------------
def _guarded_owner(
    expr: ast.AST, fn: FunctionInfo, graph: CallGraph
) -> Optional[str]:
    """Class tail if ``expr`` reaches into ServiceMetrics/catalog state."""
    node = expr
    while True:
        if isinstance(node, (ast.Name, ast.Attribute)):
            if not (isinstance(node, ast.Name) and node.id == "self"):
                token = (
                    graph.type_of(node, fn.scope)
                    if fn.scope is not None
                    else None
                )
                if token is not None:
                    tail = token.rsplit(".", 1)[-1]
                    if tail in _GUARDED_CLASSES:
                        return tail
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
            continue
        return None


def _mutated_objects(node: ast.AST) -> Iterator[ast.AST]:
    """Objects whose state a statement mutates (attr/item/owner)."""
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AugAssign):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    elif (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in MUTATING_METHODS
    ):
        yield node.func.value
        return
    for target in targets:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            yield target.value


def _check_guarded_mutations(graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        for node in iter_own_nodes(fn.node):
            for owner in _mutated_objects(node):
                tail = _guarded_owner(owner, fn, graph)
                if tail is None:
                    continue
                findings.append(
                    Finding.make(
                        "LOCK004", fn.path, node.lineno,
                        f"`{dotted_name(owner)}` ({tail}) state is "
                        f"mutated outside its lock-guarded methods; "
                        f"call the owning class's methods instead of "
                        f"reaching into its state",
                    )
                )
    return findings
