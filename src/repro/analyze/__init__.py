"""Static analysis over the repo's own sources (``repro analyze``).

Four checker families, each enforcing an invariant the paper states
in prose and the code previously only promised in docstrings:

* :mod:`repro.analyze.programs` — every vertex program's (relax,
  reduce) pair is verified against Theorem 1 (dumb weights per
  path-metric class) and Theorem 3 (associative+commutative
  reduction), and diffed against the §3.3 applicability table in
  :mod:`repro.core.applicability`;
* :mod:`repro.analyze.locks` — attributes mutated under a class's
  ``threading`` lock must be locked everywhere (the serving layer's
  concurrency contract);
* :mod:`repro.analyze.scatter` — buffered numpy writes through
  possibly-repeating index arrays (the lost-fold race ``ufunc.at``
  exists to avoid) are rejected outside the sanctioned
  :meth:`~repro.engine.program.ReduceOp.scatter` path;
* :mod:`repro.analyze.concurrency` — the asyncio/thread seam
  (ASYNC001-005, LOCK004), checked over the project-wide call graph
  in :mod:`repro.analyze.callgraph`: blocking calls transitively
  reachable from ``async def``s, thread locks held across ``await``,
  dropped coroutines, thread-side touches of loop-affine objects,
  unmapped handler errors, and guarded-state mutation.

All passes share one :class:`~repro.analyze.runner.AnalysisContext`
(one parse per file, one lazily built call graph).  See
``docs/static-analysis.md`` for the rule catalog and the per-line
suppression syntax.
"""

from repro.analyze.callgraph import CallGraph
from repro.analyze.report import RULES, Finding, Report, Rule
from repro.analyze.runner import (
    AnalysisContext,
    analyze_paths,
    default_root,
    main,
)

__all__ = [
    "RULES",
    "AnalysisContext",
    "CallGraph",
    "Finding",
    "Report",
    "Rule",
    "analyze_paths",
    "default_root",
    "main",
]
