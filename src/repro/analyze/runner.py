"""Analyzer entry points: path collection, checker dispatch, CLI.

``analyze_paths`` is the library API (the tests call it directly);
``main`` backs ``python -m repro analyze`` and the CI gate::

    python -m repro analyze                 # human listing, repo tree
    python -m repro analyze --format json   # machine-readable findings
    python -m repro analyze --format sarif  # GitHub code-scanning log
    python -m repro analyze --strict        # exit 1 on error findings
    python -m repro analyze --rule 'ASYNC*,LOCK004'  # selector globs
    python -m repro analyze path/ other.py  # explicit roots

Every rule pass shares one :class:`AnalysisContext`: files are parsed
once (with a cross-run cache in :mod:`astutils`), and the project
call graph is built lazily the first time a checker asks for it.
Per-phase wall time lands in the report's ``timings``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import repro
from repro.analyze.astutils import SourceFile, load_sources
from repro.analyze.callgraph import CallGraph
from repro.analyze.concurrency import check_concurrency
from repro.analyze.kernels import check_kernels
from repro.analyze.locks import check_locks
from repro.analyze.programs import check_programs
from repro.analyze.report import Report, expand_rule_selectors, is_suppressed
from repro.analyze.scatter import check_scatter


@dataclass
class AnalysisContext:
    """Per-run state shared by every rule pass.

    ``sources`` holds each file parsed exactly once; ``callgraph`` is
    built on first access and reused by every pass that needs it, with
    its build time recorded under ``timings['callgraph_s']``.
    """

    sources: List[SourceFile]
    timings: Dict[str, float] = field(default_factory=dict)
    _graph: Optional[CallGraph] = None

    @property
    def callgraph(self) -> CallGraph:
        if self._graph is None:
            started = time.perf_counter()
            self._graph = CallGraph.build(self.sources)
            self.timings["callgraph_s"] = time.perf_counter() - started
        return self._graph


#: checker families in reporting order.
CHECKERS = (
    check_programs, check_kernels, check_locks, check_scatter,
    check_concurrency,
)


def default_root() -> str:
    """The installed ``repro`` package tree (the repo's own sources)."""
    return os.path.dirname(os.path.abspath(repro.__file__))


def analyze_paths(
    paths: Optional[Sequence[str]] = None,
    *,
    rules: Optional[Sequence[str]] = None,
    honor_suppressions: bool = True,
) -> Report:
    """Run every checker over ``paths`` (default: the repro package).

    ``rules`` restricts reporting: each entry may be an exact rule id,
    a comma-separated list, or an ``fnmatch`` pattern (``ASYNC*``).
    ``honor_suppressions=False`` reports even pragma-silenced findings
    (used by the analyzer's own tests).
    """
    started = time.perf_counter()
    selected = expand_rule_selectors(rules)
    parse_started = time.perf_counter()
    sources = load_sources(list(paths) if paths else [default_root()])
    context = AnalysisContext(sources=sources)
    context.timings["parse_s"] = time.perf_counter() - parse_started
    report = Report(files_scanned=len(sources))
    by_path = {source.path: source for source in sources}
    for checker in CHECKERS:
        checker_started = time.perf_counter()
        findings = checker(context)
        context.timings[f"{checker.__name__}_s"] = (
            time.perf_counter() - checker_started
        )
        for finding in findings:
            if selected is not None and finding.rule_id not in selected:
                continue
            source = by_path.get(finding.path)
            if (
                honor_suppressions
                and source is not None
                and is_suppressed(finding, source.lines)
            ):
                report.suppressed += 1
                continue
            report.findings.append(finding)
    report.sort()
    report.timings = dict(context.timings)
    report.elapsed_s = time.perf_counter() - started
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description=(
            "Static split-safety verifier (Theorems 1/3 vs the §3.3 "
            "applicability table) plus lock-discipline, numpy "
            "scatter-race, and asyncio concurrency lint."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to scan (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (sarif targets GitHub code scanning)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when any error-severity finding remains",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help=(
            "only report matching rules: exact ids, comma-separated "
            "lists, or glob patterns like 'ASYNC*' (repeatable)"
        ),
    )
    parser.add_argument(
        "--no-suppress", action="store_true",
        help="report findings even on '# analyze: ignore' lines",
    )
    return parser


def run(args: argparse.Namespace) -> int:
    try:
        report = analyze_paths(
            args.paths or None,
            rules=args.rule,
            honor_suppressions=not args.no_suppress,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fmt = "json" if args.json else getattr(args, "format", "text")
    if fmt == "json":
        print(report.to_json())
    elif fmt == "sarif":
        print(report.to_sarif())
    else:
        print(report.to_text())
    if args.strict and report.errors:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
