"""Analyzer entry points: path collection, checker dispatch, CLI.

``analyze_paths`` is the library API (the tests call it directly);
``main`` backs ``python -m repro analyze`` and the CI gate::

    python -m repro analyze                 # human listing, repo tree
    python -m repro analyze --json          # machine-readable findings
    python -m repro analyze --strict        # exit 1 on error findings
    python -m repro analyze path/ other.py  # explicit roots
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

import repro
from repro.analyze.astutils import load_sources
from repro.analyze.locks import check_locks
from repro.analyze.programs import check_programs
from repro.analyze.report import RULES, Report, is_suppressed
from repro.analyze.scatter import check_scatter

#: checker families in reporting order.
CHECKERS = (check_programs, check_locks, check_scatter)


def default_root() -> str:
    """The installed ``repro`` package tree (the repo's own sources)."""
    return os.path.dirname(os.path.abspath(repro.__file__))


def analyze_paths(
    paths: Optional[Sequence[str]] = None,
    *,
    rules: Optional[Sequence[str]] = None,
    honor_suppressions: bool = True,
) -> Report:
    """Run every checker over ``paths`` (default: the repro package).

    ``rules`` restricts reporting to the given rule ids;
    ``honor_suppressions=False`` reports even pragma-silenced findings
    (used by the analyzer's own tests).
    """
    if rules is not None:
        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    sources = load_sources(list(paths) if paths else [default_root()])
    report = Report(files_scanned=len(sources))
    by_path = {source.path: source for source in sources}
    for checker in CHECKERS:
        for finding in checker(sources):
            if rules is not None and finding.rule_id not in rules:
                continue
            source = by_path.get(finding.path)
            if (
                honor_suppressions
                and source is not None
                and is_suppressed(finding, source.lines)
            ):
                report.suppressed += 1
                continue
            report.findings.append(finding)
    report.sort()
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description=(
            "Static split-safety verifier (Theorems 1/3 vs the §3.3 "
            "applicability table) plus lock-discipline and numpy "
            "scatter-race lint."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to scan (default: the repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when any error-severity finding remains",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help="only report the given rule id (repeatable)",
    )
    parser.add_argument(
        "--no-suppress", action="store_true",
        help="report findings even on '# analyze: ignore' lines",
    )
    return parser


def run(args: argparse.Namespace) -> int:
    try:
        report = analyze_paths(
            args.paths or None,
            rules=args.rule,
            honor_suppressions=not args.no_suppress,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.to_json() if args.json else report.to_text())
    if args.strict and report.errors:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
