"""Cache economics: pre-warm cold starts, GDSF vs LRU eviction.

Not a paper table — this experiment prices the serving layer's cache
economics (:mod:`repro.service.economics`) the way §6.5 prices the
transformations.  Three phases:

``cold-start`` / ``prewarmed``
    The ``bfs-heavy`` golden trace replayed against a fresh service,
    without and with trace-mined pre-warming.  The p95 that matters
    is the *cold-start* one: with prewarm the transform builds happen
    before traffic lands, so the first requests stop paying them.
    ``extras["prewarm_p95_ratio"]`` is prewarmed p95 / cold p95.

``parity``
    The same prewarmed replay across every (policy × backend) pair,
    diffing every recorded digest — eviction economics must never
    change answers.

``policy:mixed-cost`` / ``policy:uniform-recency``
    Synthetic eviction duels with controlled build costs.  The mixed
    workload (one expensive hot artifact + cheap one-shot scans) is
    where GDSF earns its keep; the uniform-recency workload (equal
    costs, sliding locality window) is LRU's home turf and is
    reported honestly — GDSF is allowed to lose there, and the
    ``when LRU is still right`` section of docs/cache-economics.md
    points at these rows.

The golden trace pins its own graph recipes (fingerprint-verified),
so ``scale`` only shrinks the synthetic policy duels.
"""

from __future__ import annotations

import os
import random
import time

from repro.bench.report import ExperimentReport
from repro.errors import TigrError
from repro.service import (
    AnalyticsService,
    ArtifactKey,
    GraphCatalog,
    Prewarmer,
    forecast_trace,
    load_trace,
    replay_trace,
    resolve_trace_graphs,
)

#: the golden trace this experiment replays (see tests/traces/).
DEFAULT_TRACE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))),
    "tests", "traces", "bfs-heavy.jsonl",
)


class _SimArtifact:
    """Synthetic artifact with a dialled-in build cost and size.

    The eviction duel needs artifacts whose ``build_seconds`` and
    ``nbytes()`` are exact inputs, not measurements — the catalog's
    ``seconds_building`` then *is* the simulated rebuild bill.
    """

    def __init__(self, build_seconds: float, size: int) -> None:
        self.build_seconds = float(build_seconds)
        self._size = int(size)

    def nbytes(self) -> int:
        return self._size


def _sim_key(tag: str) -> ArtifactKey:
    return ArtifactKey(
        graph_fingerprint=f"{tag:0>64s}", kind="virtual+", degree_bound=8
    )


def _replay_once(
    trace, graphs, *, policy: str, backend: str, workers: int,
    prewarm: bool, spill_dir=None,
):
    """One fresh-service replay; returns (report, p95_s, catalog, service_summary)."""
    catalog = GraphCatalog(
        policy=policy,
        spill_dir=spill_dir,
        write_through=spill_dir is not None,
    )
    with AnalyticsService(catalog, workers=workers, backend=backend) as service:
        if prewarm:
            plan = forecast_trace(trace)
            Prewarmer(service, plan, graphs=graphs).run_inline()
        start = time.perf_counter()
        report = replay_trace(trace, service=service, graphs=graphs)
        elapsed = time.perf_counter() - start
        p95 = service.metrics.stage_percentile("total", 0.95)
        hit_rate = service.metrics.cache_hit_rate
    return report, p95, elapsed, hit_rate, catalog


def _policy_duel(report: ExperimentReport, scale: float) -> None:
    """Synthetic eviction duels: identical streams, both policies."""
    steps = max(16, int(160 * scale))
    rng = random.Random(2018)
    size = 50_000
    hot = _sim_key("hot")
    cheap = [_sim_key(f"cheap{i}") for i in range(16)]
    uniform = [_sim_key(f"uni{i}") for i in range(12)]

    # mixed-cost: one 5 s hot artifact re-read every 8th request, with
    # 50 ms one-shot scans between — each scan burst is longer than the
    # 4-entry tier, so pure recency flushes the hot artifact every
    # cycle while cost-aware eviction sacrifices the scans instead.
    mixed = []
    for step in range(steps):
        mixed.append((hot, 5.0) if step % 8 == 0
                     else (rng.choice(cheap), 0.05))
    # uniform-recency: equal costs, sliding window of locality
    recency = []
    for step in range(steps):
        window = uniform[(step // 6) % 8:][:4] or uniform[:4]
        recency.append((rng.choice(window), 0.1))

    duels = {"mixed-cost": mixed, "uniform-recency": recency}
    building = {}
    for workload, stream in duels.items():
        for policy in ("lru", "gdsf"):
            catalog = GraphCatalog(max_entries=4, policy=policy)
            for key, cost in stream:
                catalog.get_for_key(
                    key, lambda cost=cost: _SimArtifact(cost, size)
                )
            stats = catalog.stats
            building[(workload, policy)] = stats.seconds_building
            report.add_row(
                phase=f"policy:{workload}",
                policy=policy,
                backend="-",
                queries=len(stream),
                rebuild_s=round(stats.seconds_building, 3),
                hit_rate=round(stats.hit_rate, 3),
                evictions=stats.evictions,
            )
    report.extras["gdsf_mixed_rebuild_ratio"] = (
        building[("mixed-cost", "gdsf")]
        / max(building[("mixed-cost", "lru")], 1e-12)
    )
    report.extras["gdsf_recency_rebuild_ratio"] = (
        building[("uniform-recency", "gdsf")]
        / max(building[("uniform-recency", "lru")], 1e-12)
    )


def cache_policy(
    scale: float = 1.0,
    *,
    trace_path: str = DEFAULT_TRACE,
    workers: int = 2,
) -> ExperimentReport:
    """Cold-start collapse under prewarm + eviction-policy economics."""
    report = ExperimentReport(
        "Cache policy economics",
        f"bfs-heavy golden trace, prewarm on/off, lru vs gdsf "
        f"({workers} workers)",
    )
    if not os.path.exists(trace_path):
        raise TigrError(
            f"golden trace {trace_path!r} not found; pass trace_path="
        )
    trace = load_trace(trace_path)
    graphs = resolve_trace_graphs(trace)

    # -- cold start vs prewarmed (threads, gdsf) -----------------------
    p95s = {}
    for prewarm in (False, True):
        phase = "prewarmed" if prewarm else "cold-start"
        replay, p95, elapsed, hit_rate, catalog = _replay_once(
            trace, graphs, policy="gdsf", backend="threads",
            workers=workers, prewarm=prewarm,
        )
        p95s[phase] = p95
        report.add_row(
            phase=phase,
            policy="gdsf",
            backend="threads",
            queries=replay.requests_submitted,
            p95_ms=round(p95 * 1e3, 3),
            seconds=round(elapsed, 4),
            hit_rate=round(hit_rate, 3),
            prewarm_built=catalog.stats.prewarm_built,
            prewarm_hits=catalog.stats.prewarm_hits,
            digests_ok=replay.ok,
        )
    report.extras["prewarm_p95_ratio"] = (
        p95s["prewarmed"] / max(p95s["cold-start"], 1e-12)
    )

    # -- digest parity across every (policy × backend) pair ------------
    parity_clean = True
    for policy in ("lru", "gdsf"):
        for backend in ("threads", "processes"):
            replay, p95, elapsed, hit_rate, catalog = _replay_once(
                trace, graphs, policy=policy, backend=backend,
                workers=workers, prewarm=True,
            )
            parity_clean = parity_clean and replay.ok
            report.add_row(
                phase="parity",
                policy=policy,
                backend=backend,
                queries=replay.requests_submitted,
                p95_ms=round(p95 * 1e3, 3),
                digests_checked=replay.digests_checked,
                digests_matched=(
                    replay.digests_checked - len(replay.mismatches)
                ),
                digests_ok=replay.ok,
            )
    report.extras["parity_clean"] = parity_clean

    # -- synthetic eviction duels --------------------------------------
    _policy_duel(report, scale)
    return report
