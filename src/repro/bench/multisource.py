"""Lane-parallel multi-source traversal vs the per-source loop.

Not a paper table — this experiment justifies the lane engine the way
Table 8 justifies the transformations: a batch of S sources on one
graph shares every edge gather, so one lane-parallel pass carrying S
lanes must beat S scalar passes by a wide margin.  The experiment
times both modes of :func:`repro.algorithms.multi_source
.multi_source_distances` on one R-MAT stand-in and checks the two
distance matrices are **bitwise identical** — the speedup is only
interesting if the answers are exactly the scalar answers.

Rows sweep (algorithm, source-count); BFS additionally exercises the
bit-packed visited-mask fast path, SSSP the generic float lanes.  A
third timed mode, ``auto``, lets the measured cost model
(:mod:`repro.engine.costmodel`) pick — the experiment checks the pick
is never more than a few percent slower than the best fixed mode.
"""

from __future__ import annotations

import time
from typing import Sequence, Tuple

import numpy as np

from repro.algorithms.multi_source import (
    multi_source_distances,
    resolve_multisource_mode,
)
from repro.bench.report import ExperimentReport
from repro.engine.push import EngineOptions
from repro.graph.generators import rmat

#: source counts swept per algorithm; 16 is the acceptance point.
DEFAULT_SOURCE_COUNTS = (4, 16, 64)


def _time_modes(
    graph, sources, *, weighted: bool, options: EngineOptions,
    modes: Sequence[str], repeats: int = 5,
) -> Tuple[dict, dict]:
    """Best-of-``repeats`` wall time per mode (the runs are
    deterministic, so the minimum is the least-noisy estimate of the
    actual cost).  The modes are *interleaved* round-robin so cache
    and allocator state drifts hit every mode equally — timing the
    same mode back-to-back systematically flatters whichever runs
    last."""
    rows = {}
    best = {mode: float("inf") for mode in modes}
    for _ in range(repeats):
        for mode in modes:
            start = time.perf_counter()
            rows[mode] = multi_source_distances(
                graph, sources, weighted=weighted, options=options, mode=mode
            )
            best[mode] = min(best[mode], time.perf_counter() - start)
    return rows, best


def multisource_lanes(
    scale: float = 1.0,
    *,
    num_nodes: int = 30_000,
    edge_factor: int = 32,
    source_counts: Sequence[int] = DEFAULT_SOURCE_COUNTS,
    seed: int = 11,
) -> ExperimentReport:
    """Looped vs lane-parallel multi-source distances on an R-MAT graph.

    Per (algorithm, S) row: wall time of S scalar passes (``loop``),
    wall time of the lane engine (``lanes``), the batch speedup, and
    the *per-lane* speedup (batch speedup is the headline; per-lane
    shows each extra source rides almost free) — all with the numpy
    kernels pinned, isolating the lane engine itself.  Then the cost
    model's report card under production defaults: its pick
    (``auto_mode``), the dispatch's wall time (``auto_s``) and the
    pick's penalty over the best fixed mode (``auto_ratio``, from the
    fixed-mode timings).  Every mode in both configurations must match
    the looped baseline bitwise.
    """
    n = max(256, int(num_nodes * scale))
    weighted_graph = rmat(
        n, edge_factor * n, seed=seed, weight_range=(1.0, 8.0)
    )
    # hop-count batches run on the weight-stripped graph, exactly as
    # the serving layer prepares bfs queries (and as the bit-packed
    # MS-BFS fast path requires)
    hop_graph = weighted_graph.without_weights()
    rng = np.random.default_rng(seed)
    # The loop-vs-lanes certification pins the scalar numpy kernels on
    # both sides: it measures the *lane engine's* gather sharing, and
    # letting the auto backend resolution hand the loop a JIT kernel
    # would fold an orthogonal axis (bench_kernels' job) into the
    # comparison.  The cost-model report card below runs under
    # production defaults instead — that is the configuration whose
    # best mode the model must actually pick.
    numpy_options = EngineOptions(kernel_backend="numpy")
    default_options = EngineOptions()
    # warm numpy/scheduler/JIT code paths so the first timed row is
    # not charged for one-time costs
    for options in (numpy_options, default_options):
        multi_source_distances(
            hop_graph, [0, 1], weighted=False, options=options
        )
    report = ExperimentReport(
        "Multi-source lanes",
        f"R-MAT n={weighted_graph.num_nodes} m={weighted_graph.num_edges}, "
        "loop vs lane-parallel multi_source_distances",
    )
    for algorithm, weighted in (("bfs", False), ("sssp", True)):
        graph = weighted_graph if weighted else hop_graph
        for count in source_counts:
            sources = [
                int(s) for s in rng.choice(graph.num_nodes, size=count, replace=False)
            ]
            rows, times = _time_modes(
                graph, sources, weighted=weighted, options=numpy_options,
                modes=("loop", "lanes"),
            )
            loop_s, lanes_s = times["loop"], times["lanes"]
            prod_rows, prod = _time_modes(
                graph, sources, weighted=weighted, options=default_options,
                modes=("loop", "lanes", "auto"),
            )
            auto_mode = resolve_multisource_mode(
                algorithm=algorithm, num_sources=count,
                num_edges=graph.num_edges,
            )
            match = bool(
                all(np.array_equal(rows["loop"], r) for r in rows.values())
                and all(
                    np.array_equal(rows["loop"], r) for r in prod_rows.values()
                )
            )
            speedup = loop_s / lanes_s if lanes_s > 0 else float("inf")
            # the pick's cost is the fixed-mode measurement of the mode
            # auto chose — re-timing the identical code path would only
            # add noise to a pure strategy question
            best_s = min(prod["loop"], prod["lanes"])
            auto_ratio = prod[auto_mode] / best_s if best_s > 0 else float("inf")
            report.add_row(
                algorithm=algorithm,
                sources=count,
                loop_s=loop_s,
                lanes_s=lanes_s,
                auto_s=prod["auto"],
                auto_mode=auto_mode,
                auto_ratio=auto_ratio,
                speedup=speedup,
                per_lane_ms=lanes_s / count * 1e3,
                bitwise_equal=match,
            )
            if count == 16:
                report.extras[f"{algorithm}_speedup_16"] = speedup
            if algorithm == "sssp":
                report.extras[f"sssp_auto_mode_{count}"] = auto_mode
    # the acceptance headline: a 16-source hop-count batch (what the
    # serving layer's bfs traffic becomes) against the looped baseline
    report.extras["batch_speedup_16"] = report.extras["bfs_speedup_16"]
    report.extras["all_bitwise_equal"] = all(report.column("bitwise_equal"))
    # the cost model's report card: its pick is allowed measurement
    # noise over the best fixed mode, never a strategy-class miss
    report.extras["auto_worst_ratio"] = max(report.column("auto_ratio"))
    return report
