"""Lane-parallel multi-source traversal vs the per-source loop.

Not a paper table — this experiment justifies the lane engine the way
Table 8 justifies the transformations: a batch of S sources on one
graph shares every edge gather, so one lane-parallel pass carrying S
lanes must beat S scalar passes by a wide margin.  The experiment
times both modes of :func:`repro.algorithms.multi_source
.multi_source_distances` on one R-MAT stand-in and checks the two
distance matrices are **bitwise identical** — the speedup is only
interesting if the answers are exactly the scalar answers.

Rows sweep (algorithm, source-count); BFS additionally exercises the
bit-packed visited-mask fast path, SSSP the generic float lanes.
"""

from __future__ import annotations

import time
from typing import Sequence, Tuple

import numpy as np

from repro.algorithms.multi_source import multi_source_distances
from repro.bench.report import ExperimentReport
from repro.engine.push import EngineOptions
from repro.graph.generators import rmat

#: source counts swept per algorithm; 16 is the acceptance point.
DEFAULT_SOURCE_COUNTS = (4, 16, 64)


def _time_mode(
    graph, sources, *, weighted: bool, options: EngineOptions, mode: str,
    repeats: int = 5,
) -> Tuple[np.ndarray, float]:
    """Best-of-``repeats`` wall time (the runs are deterministic, so
    the minimum is the least-noisy estimate of the actual cost)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        rows = multi_source_distances(
            graph, sources, weighted=weighted, options=options, mode=mode
        )
        best = min(best, time.perf_counter() - start)
    return rows, best


def multisource_lanes(
    scale: float = 1.0,
    *,
    num_nodes: int = 30_000,
    edge_factor: int = 32,
    source_counts: Sequence[int] = DEFAULT_SOURCE_COUNTS,
    seed: int = 11,
) -> ExperimentReport:
    """Looped vs lane-parallel multi-source distances on an R-MAT graph.

    Per (algorithm, S) row: wall time of S scalar passes (``loop``),
    wall time of the lane engine (``lanes``), the batch speedup, the
    *per-lane* speedup (batch speedup is the headline; per-lane shows
    each extra source rides almost free), and whether the two distance
    matrices matched bitwise.
    """
    n = max(256, int(num_nodes * scale))
    weighted_graph = rmat(
        n, edge_factor * n, seed=seed, weight_range=(1.0, 8.0)
    )
    # hop-count batches run on the weight-stripped graph, exactly as
    # the serving layer prepares bfs queries (and as the bit-packed
    # MS-BFS fast path requires)
    hop_graph = weighted_graph.without_weights()
    rng = np.random.default_rng(seed)
    options = EngineOptions()
    # warm numpy/scheduler code paths so the first timed row is not
    # charged for one-time costs
    multi_source_distances(hop_graph, [0, 1], weighted=False, options=options)
    report = ExperimentReport(
        "Multi-source lanes",
        f"R-MAT n={weighted_graph.num_nodes} m={weighted_graph.num_edges}, "
        "loop vs lane-parallel multi_source_distances",
    )
    for algorithm, weighted in (("bfs", False), ("sssp", True)):
        graph = weighted_graph if weighted else hop_graph
        for count in source_counts:
            sources = [
                int(s) for s in rng.choice(graph.num_nodes, size=count, replace=False)
            ]
            looped, loop_s = _time_mode(
                graph, sources, weighted=weighted, options=options, mode="loop"
            )
            lanes, lanes_s = _time_mode(
                graph, sources, weighted=weighted, options=options, mode="lanes"
            )
            match = bool(np.array_equal(looped, lanes))
            speedup = loop_s / lanes_s if lanes_s > 0 else float("inf")
            report.add_row(
                algorithm=algorithm,
                sources=count,
                loop_s=loop_s,
                lanes_s=lanes_s,
                speedup=speedup,
                per_lane_ms=lanes_s / count * 1e3,
                bitwise_equal=match,
            )
            if count == 16:
                report.extras[f"{algorithm}_speedup_16"] = speedup
    # the acceptance headline: a 16-source hop-count batch (what the
    # serving layer's bfs traffic becomes) against the looped baseline
    report.extras["batch_speedup_16"] = report.extras["bfs_speedup_16"]
    report.extras["all_bitwise_equal"] = all(report.column("bitwise_equal"))
    return report
