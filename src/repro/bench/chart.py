"""Terminal bar charts for figure-type experiments.

The paper's Figure 13 is a grouped bar chart; this renders the same
data as aligned unicode bars so ``python -m repro.bench fig13`` shows
an actual figure, not only a table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: glyph used for whole bar cells.
BAR = "█"
#: eighth-width glyphs for the fractional cell.
PARTIAL = ["", "▏", "▎", "▍", "▌", "▋", "▊", "▉"]


def render_bar(value: float, max_value: float, width: int = 40) -> str:
    """One horizontal bar scaled so ``max_value`` fills ``width`` cells."""
    if max_value <= 0 or value <= 0:
        return ""
    cells = value / max_value * width
    whole = int(cells)
    fraction = int((cells - whole) * 8)
    return BAR * whole + PARTIAL[fraction]


def bar_chart(
    rows: Sequence[Dict],
    *,
    label_key: str,
    value_keys: Sequence[str],
    width: int = 40,
    title: Optional[str] = None,
    reference: Optional[float] = None,
) -> str:
    """A grouped horizontal bar chart.

    One group per row (labelled by ``label_key``), one bar per entry
    of ``value_keys``.  ``reference`` draws a marker column at that
    value (Figure 13's "1x = baseline" line).
    """
    values = [
        float(row[key])
        for row in rows for key in value_keys
        if isinstance(row.get(key), (int, float)) and row[key] == row[key]
    ]
    if not values:
        return (title + "\n" if title else "") + "(no data)"
    max_value = max(values + ([reference] if reference else []))

    label_width = max(
        [len(str(row[label_key])) for row in rows] + [len(k) for k in value_keys]
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    ref_col = (
        int(reference / max_value * width) if reference and max_value > 0 else None
    )
    for row in rows:
        lines.append(f"{row[label_key]}")
        for key in value_keys:
            value = row.get(key)
            if not isinstance(value, (int, float)) or value != value:
                lines.append(f"  {key:<{label_width}}  (n/a)")
                continue
            bar = render_bar(float(value), max_value, width)
            if ref_col is not None and len(bar) < ref_col:
                bar = bar + " " * (ref_col - len(bar)) + "|"
            lines.append(f"  {key:<{label_width}}  {bar} {value:.2f}")
    if reference:
        lines.append(f"  {'':<{label_width}}  {' ' * (ref_col or 0)}^ {reference:g}x reference")
    return "\n".join(lines)
