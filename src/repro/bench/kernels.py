"""Scalar numpy vs JIT kernel backends across the core analytics.

Not a paper table — this experiment certifies the kernel-backend
registry (:mod:`repro.engine.kernels`) the way the multisource bench
certifies the lane engine: every JIT backend must produce **bitwise
identical** results to the numpy baseline while actually being faster,
else the whole subsystem is risk without reward.

Rows sweep (graph, algorithm); one column pair per available JIT
backend gives the warm wall time and the speedup over numpy.  Warm
timings exclude the one-time backend setup (compile or shared-library
load), which is reported separately in the extras — a JIT that only
wins by amortising its compile over many runs must say so.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.algorithms.bfs import bfs
from repro.algorithms.cc import connected_components
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import sssp
from repro.bench.report import ExperimentReport
from repro.engine import kernels
from repro.engine.push import EngineOptions
from repro.graph.generators import configuration_power_law, rmat

#: the analytics swept: one per (relax, reduce) family the backends
#: accelerate — additive/min, propagation/min, and the pagerank
#: edge-multiply-add fast path.
ALGORITHMS = ("bfs", "sssp", "cc", "pr")


def _run(algorithm: str, graph, options: EngineOptions) -> np.ndarray:
    if algorithm == "bfs":
        return bfs(graph, 0, options=options).values
    if algorithm == "sssp":
        return sssp(graph, 0, options=options).values
    if algorithm == "cc":
        return connected_components(graph, options=options).values
    if algorithm == "pr":
        return pagerank(graph, max_iterations=20, options=options).values
    raise ValueError(f"unknown algorithm {algorithm!r}")


def _time_backend(
    algorithm: str, graph, backend_name: str, repeats: int
) -> Tuple[np.ndarray, float, int]:
    """Best-of-``repeats`` wall time plus the backend's engagement
    delta (0 means every launch fell back to the numpy path and the
    timing says nothing about the backend)."""
    options = EngineOptions(kernel_backend=backend_name)
    backend = kernels.get_backend(backend_name)
    engaged_before = backend.engaged
    best = float("inf")
    values: Optional[np.ndarray] = None
    for _ in range(repeats):
        start = time.perf_counter()
        values = _run(algorithm, graph, options)
        best = min(best, time.perf_counter() - start)
    return values, best, backend.engaged - engaged_before


def _cold_compile_seconds() -> float:
    """Wall seconds for a from-scratch cjit compile.

    The registered backend caches its shared library on disk *and* in
    the process, so a fresh instance pointed at an empty cache dir is
    the only honest way to measure the compile-included cost.
    """
    import tempfile

    from repro.engine.kernels import CJitBackend

    with tempfile.TemporaryDirectory(prefix="repro-kernels-cold-") as tmp:
        saved = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = tmp
        try:
            backend = CJitBackend()
            start = time.perf_counter()
            lib = backend._ensure_lib()
            elapsed = time.perf_counter() - start
        finally:
            if saved is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = saved
    return elapsed if lib is not None else float("nan")


def kernel_backends(
    scale: float = 1.0,
    *,
    num_nodes: int = 30_000,
    edge_factor: int = 16,
    seed: int = 7,
    repeats: int = 3,
) -> ExperimentReport:
    """Numpy baseline vs every available JIT backend, per analytic.

    Per (graph, algorithm) row: the numpy wall time, then one
    ``<backend>_s`` / ``<backend>_x`` pair per JIT backend (warm
    timings, bitwise-checked).  Extras carry the one-time costs
    (``<backend>_first_run_s``, ``cjit_compile_s``) and the headline
    ``best_jit_speedup``.
    """
    n = max(256, int(num_nodes * scale))
    graphs = {
        "rmat": rmat(n, edge_factor * n, seed=seed, weight_range=(1.0, 8.0)),
        "power-law": configuration_power_law(
            n, exponent=2.1, target_edges=edge_factor * n, seed=seed,
            weight_range=(1.0, 8.0),
        ),
    }
    jits = [name for name in kernels.available_backends() if name != "numpy"]
    report = ExperimentReport(
        "Kernel backends",
        "scalar numpy vs JIT kernel backends "
        f"(available: {', '.join(['numpy'] + jits)}), warm timings, "
        "bitwise-checked",
    )

    # One-time setup per JIT backend (compile or .so load), measured on
    # a tiny graph so the engine work itself is noise.
    tiny = rmat(256, 2048, seed=seed, weight_range=(1.0, 8.0))
    for name in jits:
        start = time.perf_counter()
        _run("sssp", tiny, EngineOptions(kernel_backend=name))
        report.extras[f"{name}_first_run_s"] = time.perf_counter() - start
    if "cjit" in jits:
        report.extras["cjit_compile_s"] = _cold_compile_seconds()

    all_equal = True
    all_engaged = True
    best_speedup: Dict[str, float] = {name: 0.0 for name in jits}
    for graph_name, weighted_graph in graphs.items():
        hop_graph = weighted_graph.without_weights()
        for algorithm in ALGORITHMS:
            graph = weighted_graph if algorithm == "sssp" else hop_graph
            base_values, base_s, _ = _time_backend(
                algorithm, graph, "numpy", repeats
            )
            row = {
                "graph": graph_name,
                "algorithm": algorithm,
                "numpy_s": base_s,
            }
            for name in jits:
                values, jit_s, engaged = _time_backend(
                    algorithm, graph, name, repeats
                )
                equal = bool(np.array_equal(base_values, values))
                all_equal = all_equal and equal
                all_engaged = all_engaged and engaged > 0
                speedup = base_s / jit_s if jit_s > 0 else float("inf")
                best_speedup[name] = max(best_speedup[name], speedup)
                row[f"{name}_s"] = jit_s
                row[f"{name}_x"] = speedup
                row[f"{name}_equal"] = equal
            report.add_row(**row)

    report.extras["all_bitwise_equal"] = all_equal
    report.extras["all_jit_engaged"] = all_engaged
    for name in jits:
        report.extras[f"{name}_best_speedup"] = best_speedup[name]
    report.extras["best_jit_speedup"] = max(
        best_speedup.values(), default=0.0
    )
    return report
