"""Result containers and plain-text table rendering for experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0.0 for empty input)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1e5 or (0 < abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: List[Dict[str, Any]], *, title: Optional[str] = None) -> str:
    """Render dict rows as an aligned plain-text table.

    Column order follows first appearance across rows; missing cells
    render as ``-``.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_fmt(row.get(col, "-")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentReport:
    """One regenerated table/figure: rows of cells plus metadata.

    ``rows`` are ordered dicts (column -> value); ``extras`` carries
    experiment-level aggregates (e.g. Figure 13's geometric means).
    """

    experiment: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **cells: Any) -> None:
        self.rows.append(dict(cells))

    def to_text(self) -> str:
        text = format_table(self.rows, title=f"{self.experiment}: {self.description}")
        if self.extras:
            extra_lines = [f"  {k} = {_fmt(v)}" for k, v in self.extras.items()]
            text += "\n" + "\n".join(extra_lines)
        return text

    def column(self, name: str) -> List[Any]:
        """All values of one column, skipping missing cells."""
        return [row[name] for row in self.rows if name in row]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
