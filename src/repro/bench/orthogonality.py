"""Composition experiments: multi-GPU orthogonality and device sweeps.

Two studies about *where* Tigr's benefit lives:

* :func:`multigpu_orthogonality` — §7.2's claim, executed: Tigr's
  per-device speedup survives partitioning across 1/2/4 devices.
* :func:`device_generation_sweep` — the Figure 13 breakdown repeated
  on three device generations (P4000-class baseline, a twice-wider
  V100-class, a four-times-wider A100-class with faster memory): the
  winners and orderings must not be artifacts of one hardware point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.programs import SSSPProgram
from repro.baselines.simple import BaselineMethod
from repro.baselines.tigr import TigrVirtualMethod
from repro.bench.report import ExperimentReport
from repro.bench.tables import default_source
from repro.gpu.config import GPUConfig
from repro.graph.datasets import load_dataset
from repro.multigpu import MultiGPUConfig, run_multi_gpu

#: three simulated device generations: (name, config).  Cores scale
#: the width; cycles-per-transaction scales with memory bandwidth
#: (HBM2/HBM2e vs GDDR5) through the per-method profiles' shared
#: default, so it is varied via clock here to stay profile-agnostic.
DEVICE_GENERATIONS = [
    ("p4000-class", GPUConfig()),
    ("v100-class", GPUConfig(cores=1792, clock_ghz=1.5)),
    ("a100-class", GPUConfig(cores=3584, clock_ghz=1.4)),
]


def multigpu_orthogonality(
    *,
    dataset: str = "livejournal",
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> ExperimentReport:
    """SSSP across 1/2/4 devices, with and without per-device Tigr."""
    report = ExperimentReport(
        "Multi-GPU", f"Tigr x device-count composition (SSSP, {dataset})"
    )
    graph = load_dataset(dataset, scale=scale, seed=seed)
    source = default_source(graph)
    reference = None
    for devices in (1, 2, 4):
        config = MultiGPUConfig(num_devices=devices)
        base = run_multi_gpu(graph, SSSPProgram(), source, config=config)
        tigr = run_multi_gpu(graph, SSSPProgram(), source, config=config,
                             degree_bound=10)
        if reference is None:
            reference = base.values
        assert np.allclose(base.values, reference)
        assert np.allclose(tigr.values, reference)
        report.add_row(
            devices=devices,
            base_kernel_ms=base.kernel_time_ms,
            tigr_kernel_ms=tigr.kernel_time_ms,
            tigr_kernel_speedup=base.kernel_time_ms / tigr.kernel_time_ms,
            base_total_ms=base.total_time_ms,
            tigr_total_ms=tigr.total_time_ms,
            transfer_bytes=base.transfer_bytes,
        )
    return report


def device_generation_sweep(
    *,
    dataset: str = "livejournal",
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> ExperimentReport:
    """Figure 13's core comparison repeated per device generation."""
    report = ExperimentReport(
        "Device sweep", f"Tigr-V+ speedup across device generations (SSSP, {dataset})"
    )
    graph = load_dataset(dataset, scale=scale, seed=seed)
    source = default_source(graph)
    for name, config in DEVICE_GENERATIONS:
        base = BaselineMethod().run(graph, "sssp", source, config=config)
        tigr = TigrVirtualMethod(degree_bound=10, coalesced=True).run(
            graph, "sssp", source, config=config
        )
        assert np.allclose(base.values, tigr.values)
        report.add_row(
            device=name,
            cores=config.cores,
            baseline_ms=base.time_ms,
            tigr_ms=tigr.time_ms,
            speedup=base.time_ms / tigr.time_ms,
            base_warp_eff=base.metrics.warp_efficiency,
            tigr_warp_eff=tigr.metrics.warp_efficiency,
        )
    return report
