"""Regeneration of the paper's Figure 13 and the §2.3 degree profile."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.baselines.simple import BaselineMethod
from repro.baselines.tigr import TigrUDTMethod, TigrVirtualMethod
from repro.bench.report import ExperimentReport, geometric_mean
from repro.bench.tables import default_source
from repro.gpu.config import GPUConfig
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.stats import degree_stats


def figure13_speedups(
    *,
    algorithm: str = "sssp",
    datasets: Optional[Iterable[str]] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
    config: Optional[GPUConfig] = None,
) -> ExperimentReport:
    """Figure 13: speedups of Tigr variants over the baseline engine.

    Per dataset, the simulated-time ratio baseline / variant for
    Tigr-UDT, Tigr-V and Tigr-V+ running SSSP (the paper's figure; any
    of the six analytics can be passed).  Extras carry the geometric
    means — the paper reports 1.2× / 1.7× / 2.1×, and the expected
    shape is UDT < V < V+ with all three above 1.
    """
    report = ExperimentReport(
        "Figure 13", f"speedups of Tigr over baseline ({algorithm})"
    )
    config = config or GPUConfig()
    names = list(datasets) if datasets is not None else list(dataset_names())
    speedups = {"tigr-udt": [], "tigr-v": [], "tigr-v+": []}
    for name in names:
        spec = DATASETS[name]
        graph = load_dataset(name, scale=scale, seed=seed)
        source = default_source(graph)
        base = BaselineMethod().run(graph, algorithm, source, config=config)
        row = {"dataset": name}
        variants = [
            TigrUDTMethod(degree_bound=spec.k_udt),
            TigrVirtualMethod(degree_bound=spec.k_v, coalesced=False),
            TigrVirtualMethod(degree_bound=spec.k_v, coalesced=True),
        ]
        for method in variants:
            if not method.supports(algorithm):
                row[method.name] = float("nan")
                continue
            result = method.run(graph, algorithm, source, config=config)
            ratio = base.time_ms / result.time_ms
            row[method.name] = ratio
            speedups[method.name].append(ratio)
        report.add_row(**row)
    for key, values in speedups.items():
        report.extras[f"geomean_{key}"] = geometric_mean(values)
    from repro.bench.chart import bar_chart

    report.extras["chart"] = "\n" + bar_chart(
        report.rows, label_key="dataset",
        value_keys=["tigr-udt", "tigr-v", "tigr-v+"],
        title="speedup over baseline (bars; | marks 1x)",
        reference=1.0,
    )
    return report


def degree_profile(
    *, scale: float = 1.0, seed: Optional[int] = None
) -> ExperimentReport:
    """§2.3 profile: the power-law shape motivating Tigr.

    The paper observes that "over 90% of nodes have degrees less than
    20 while less than 2% of nodes have degrees around 1000" on its
    social graphs.  The stand-ins are generated to sit in the same
    regime; this bench reports the fractions plus skew measures.
    """
    report = ExperimentReport(
        "Sec 2.3", "degree distribution profile of the stand-in datasets"
    )
    for name in dataset_names():
        graph = load_dataset(name, scale=scale, seed=seed)
        stats = degree_stats(graph)
        report.add_row(
            dataset=name,
            frac_below_20=f"{stats.frac_degree_below_20 * 100:.1f}%",
            frac_1000_plus=f"{stats.frac_degree_at_least_1000 * 100:.2f}%",
            d_max=stats.max_degree,
            mean=round(stats.mean_degree, 1),
            cv=round(stats.coefficient_of_variation, 2),
            gini=round(stats.gini, 2),
        )
    return report
