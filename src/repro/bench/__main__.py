"""CLI: regenerate every paper table/figure in one run.

Usage::

    python -m repro.bench                # all experiments, full scale
    python -m repro.bench --scale 0.25   # quick pass on shrunken graphs
    python -m repro.bench table4 fig13   # a subset

Experiment keys: table1, table3, table4, table5, table6, table7,
table8, fig13, profile — plus the beyond-the-paper extensions
ablation-vk, ablation-udtk, ablation-grid, ablation-topo, hardwired,
skew, reorder, scaling, scaling-speedup.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench import (
    cache_policy,
    degree_profile,
    device_generation_sweep,
    multigpu_orthogonality,
    push_vs_pull,
    figure13_speedups,
    hardwired_comparison,
    k_sweep_physical,
    k_sweep_virtual,
    kernel_backends,
    multisource_lanes,
    optimization_grid,
    reordering_comparison,
    service_backend_sweep,
    service_throughput,
    service_trace_replay,
    sharded_scaling,
    skew_sweep,
    speedup_scaling,
    table1_split_properties,
    table3_datasets,
    table4_performance,
    table5_udt_space,
    table6_virtual_space,
    table7_transform_time,
    table8_sssp_profile,
    topology_race,
    transform_scaling,
)

EXPERIMENTS = {
    "table1": lambda scale: table1_split_properties(),
    "table3": lambda scale: table3_datasets(scale=scale),
    "table4": lambda scale: table4_performance(scale=scale),
    "fig13": lambda scale: figure13_speedups(scale=scale),
    "table5": lambda scale: table5_udt_space(scale=scale),
    "table6": lambda scale: table6_virtual_space(scale=scale),
    "table7": lambda scale: table7_transform_time(scale=scale),
    "table8": lambda scale: table8_sssp_profile(scale=scale),
    "profile": lambda scale: degree_profile(scale=scale),
    # extensions beyond the paper's tables (DESIGN.md section 7)
    "ablation-vk": lambda scale: k_sweep_virtual(scale=scale),
    "ablation-udtk": lambda scale: k_sweep_physical(scale=scale),
    "ablation-grid": lambda scale: optimization_grid(scale=scale),
    "ablation-topo": lambda scale: topology_race(scale=scale),
    "ablation-dir": lambda scale: push_vs_pull(scale=scale),
    "hardwired": lambda scale: hardwired_comparison(scale=scale),
    "skew": lambda scale: skew_sweep(),
    "reorder": lambda scale: reordering_comparison(scale=scale),
    "scaling": lambda scale: transform_scaling(),
    "scaling-speedup": lambda scale: speedup_scaling(),
    "table4x": lambda scale: table4_performance(scale=scale, extended=True),
    "multigpu": lambda scale: multigpu_orthogonality(scale=scale),
    "devices": lambda scale: device_generation_sweep(scale=scale),
    "service": lambda scale: service_throughput(scale=scale),
    "service-backends": lambda scale: service_backend_sweep(scale=scale),
    "service-trace": lambda scale: service_trace_replay(scale=scale),
    "cache-policy": lambda scale: cache_policy(scale=scale),
    "sharded": lambda scale: sharded_scaling(scale=scale),
    "multisource": lambda scale: multisource_lanes(scale=scale),
    "kernels": lambda scale: kernel_backends(scale=scale),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the Tigr paper's evaluation tables/figures.",
    )
    parser.add_argument(
        "experiments", nargs="*", default=list(EXPERIMENTS),
        help=f"subset to run (default: all). Keys: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale factor (default 1.0)")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also write each report as JSON into DIR")
    args = parser.parse_args(argv)

    unknown = [e for e in args.experiments if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    if args.json:
        os.makedirs(args.json, exist_ok=True)
    for key in args.experiments:
        start = time.perf_counter()
        report = EXPERIMENTS[key](args.scale)
        elapsed = time.perf_counter() - start
        print(report.to_text())
        print(f"  [{key} regenerated in {elapsed:.1f}s]")
        if args.json:
            from repro.bench.export import export_key, save_report

            path = os.path.join(args.json, f"{export_key(key)}.json")
            save_report(report, path)
            print(f"  [written to {path}]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
