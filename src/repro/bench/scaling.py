"""Size-scaling study: linearity of the transformations (§6.4).

The paper: "In general, the transformation time is proportional to
the size of the graph for both physical and virtual graph
transformations."  This experiment sweeps the stand-in scale factor
and fits the growth exponent of transformation time vs edge count —
a slope near 1 on a log-log fit confirms linearity.  It also tracks
the Tigr-V+ SSSP speedup across scales, which should persist rather
than be an artifact of one graph size.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.algorithms import sssp
from repro.baselines.simple import BaselineMethod
from repro.baselines.tigr import TigrVirtualMethod
from repro.bench.report import ExperimentReport
from repro.bench.tables import default_source
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.gpu.config import GPUConfig
from repro.graph.datasets import DATASETS, load_dataset


def transform_scaling(
    *,
    dataset: str = "livejournal",
    scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    seed: Optional[int] = None,
    repeats: int = 3,
) -> ExperimentReport:
    """Transformation wall-clock vs graph size (log-log slope ~ 1)."""
    report = ExperimentReport(
        "Scaling transform", f"transformation time vs |E| ({dataset})"
    )
    spec = DATASETS[dataset]
    edges, phys_times, virt_times = [], [], []
    for scale in scales:
        graph = load_dataset(dataset, scale=scale, seed=seed)
        physical = min(
            _timed(lambda: udt_transform(graph, spec.k_udt)) for _ in range(repeats)
        )
        virtual = min(
            _timed(lambda: virtual_transform(graph, spec.k_v, coalesced=True))
            for _ in range(repeats)
        )
        edges.append(graph.num_edges)
        phys_times.append(physical)
        virt_times.append(virtual)
        report.add_row(
            scale=scale, edges=graph.num_edges,
            physical_ms=physical * 1e3, virtual_ms=virtual * 1e3,
        )
    report.extras["physical_slope"] = _loglog_slope(edges, phys_times)
    report.extras["virtual_slope"] = _loglog_slope(edges, virt_times)
    return report


def speedup_scaling(
    *,
    dataset: str = "livejournal",
    scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    seed: Optional[int] = None,
    config: Optional[GPUConfig] = None,
) -> ExperimentReport:
    """Tigr-V+ speedup over the baseline across graph sizes."""
    report = ExperimentReport(
        "Scaling speedup", f"Tigr-V+ speedup vs graph size (SSSP, {dataset})"
    )
    config = config or GPUConfig()
    spec = DATASETS[dataset]
    for scale in scales:
        graph = load_dataset(dataset, scale=scale, seed=seed)
        source = default_source(graph)
        base = BaselineMethod().run(graph, "sssp", source, config=config)
        tigr = TigrVirtualMethod(degree_bound=spec.k_v, coalesced=True).run(
            graph, "sssp", source, config=config
        )
        report.add_row(
            scale=scale, edges=graph.num_edges,
            baseline_ms=base.time_ms, tigr_ms=tigr.time_ms,
            speedup=base.time_ms / tigr.time_ms,
        )
    return report


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _loglog_slope(xs, ys) -> float:
    """Least-squares slope of log(y) against log(x)."""
    lx, ly = np.log(np.asarray(xs, float)), np.log(np.asarray(ys, float))
    return float(np.polyfit(lx, ly, 1)[0])
