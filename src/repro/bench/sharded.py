"""Sharded serving tier scaling: shard count vs throughput, with parity.

Not a paper table — the companion experiment to ``docs/sharding.md``:
it drives one synthetic workload through
:class:`~repro.service.sharding.ShardedAnalyticsService` at increasing
shard counts and reports queries/sec, latency percentiles, and the
scatter-gather accounting (supersteps, exchanged bytes).  The
``shards=1`` row is the honest baseline: a single shard routes every
batch to the plain single-engine path, so the remaining rows price
exactly the scatter-gather machinery.

Every row also *proves* the digest-parity contract as it measures: the
values of each query are compared bitwise against the single-engine
answers, and a mismatch fails the experiment — the benchmark cannot
report a speedup for a tier that changed the answers.
"""

from __future__ import annotations

import time
from typing import List, Sequence

import numpy as np

from repro.bench.report import ExperimentReport
from repro.bench.service import _make_requests
from repro.graph.datasets import load_dataset
from repro.service import GraphCatalog, ShardedAnalyticsService, percentile


def sharded_scaling(
    scale: float = 1.0,
    *,
    dataset: str = "pokec",
    num_queries: int = 32,
    shard_counts: Sequence[int] = (1, 2, 3, 4),
    workers: int = 2,
    algorithms: List[str] = ("bfs", "sssp", "pr"),
    seed: int = 7,
) -> ExperimentReport:
    """One row per shard count over an identical query stream.

    Uses ``transform="none"`` so every algorithm (PageRank included)
    is eligible for the scatter-gather path — the point is to scale
    the superstep fan-out, not the transform planner.
    """
    report = ExperimentReport(
        "Sharded scaling",
        f"{num_queries} untransformed queries on {dataset}, {workers} "
        f"workers, shards {'/'.join(str(s) for s in shard_counts)}; "
        f"every row digest-checked against the single-engine answers",
    )
    graph = load_dataset(dataset, scale=scale)
    algorithms = list(algorithms)
    requests = _make_requests(
        dataset, graph.num_nodes, num_queries, algorithms, seed, "none"
    )

    baseline_values = None
    baseline_qps = None
    for shards in shard_counts:
        with ShardedAnalyticsService(
            GraphCatalog(), shards=shards, workers=workers,
            queue_size=max(128, num_queries),
        ) as service:
            service.register(dataset, graph)
            # warm the prepared-graph cache and the shard slices so the
            # timed pass measures steady-state serving, not partitioning
            for algorithm in algorithms:
                warmup = _make_requests(
                    dataset, graph.num_nodes, 1, [algorithm], 0, "none"
                )[0]
                assert service.run(warmup).ok
            start = time.perf_counter()
            tickets = service.submit_batch(requests)
            results = [t.result() for t in tickets]
            elapsed = time.perf_counter() - start
            assert all(r.ok for r in results)
            values = [r.values for r in results]
            if baseline_values is None:
                baseline_values = values
            else:
                for got, want in zip(values, baseline_values):
                    assert got.keys() == want.keys() and all(
                        np.array_equal(got[key], want[key]) for key in want
                    ), f"digest parity violated at shards={shards}"
            latencies = [r.timings.total_s for r in results]
            summary = service.metrics.summary()
            qps = num_queries / elapsed if elapsed > 0 else float("inf")
            if baseline_qps is None:
                baseline_qps = qps
            report.add_row(
                shards=shards,
                queries=num_queries,
                seconds=elapsed,
                qps=qps,
                p50_ms=percentile(latencies, 0.5) * 1e3,
                p95_ms=percentile(latencies, 0.95) * 1e3,
                sharded_batches=summary["sharded_batches"],
                supersteps=summary["shard_supersteps"],
                exchange_mb=summary["shard_exchange_bytes"] / 1e6,
            )
            report.extras[f"speedup_x{shards}"] = qps / baseline_qps
    report.extras["parity"] = "bitwise (all rows vs shards=1)"
    return report
