"""Hardwired-primitive comparison — the paper's "project website" bench.

§6.1: "we compared with low-level implementations of some specific
graph primitives, such as ECL-CC, Elsen and Vaidyanathan's PR,
Davidson and others' SSSP, as well as the BFS by Merrill and others
... we choose to compare with Gunrock and leave the comparisons with
these specific implementations to our project website."  This bench
runs that deferred comparison: each hardwired primitive against
Tigr-V+ on its own algorithm.

Expected shape (from Gunrock's published comparison, which the paper
cites): general frameworks hold their own against hardwired codes
*except* on CC, where pointer-jumping (ECL-CC) structurally wins by
converging in O(log n) rounds instead of O(diameter).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.baselines.base import ALGORITHMS
from repro.baselines.hardwired import hardwired_methods
from repro.baselines.tigr import TigrVirtualMethod
from repro.bench.report import ExperimentReport
from repro.bench.tables import default_source
from repro.gpu.config import GPUConfig
from repro.graph.datasets import DATASETS, dataset_names, load_dataset


def hardwired_comparison(
    *,
    datasets: Optional[Iterable[str]] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
    config: Optional[GPUConfig] = None,
) -> ExperimentReport:
    """Tigr-V+ vs the four hardwired primitives, per dataset."""
    report = ExperimentReport(
        "Hardwired", "Tigr-V+ vs hand-tuned primitives (simulated ms)"
    )
    config = config or GPUConfig()
    names = list(datasets) if datasets is not None else list(dataset_names())
    for name in names:
        spec = DATASETS[name]
        graph = load_dataset(name, scale=scale, seed=seed)
        source = default_source(graph)
        tigr = TigrVirtualMethod(degree_bound=spec.k_v, coalesced=True)
        for method in hardwired_methods():
            algorithm = method.algorithm
            src = source if ALGORITHMS[algorithm].needs_source else None
            hard = method.run(graph, algorithm, src, config=config)
            general = tigr.run(graph, algorithm, src, config=config)
            report.add_row(
                dataset=name,
                algorithm=algorithm,
                hardwired=method.name,
                hardwired_ms=hard.time_ms,
                tigr_ms=general.time_ms,
                tigr_over_hardwired=general.time_ms / hard.time_ms,
            )
    return report
