"""Serving-layer throughput: cold vs warm cache, single vs batched.

Not a paper table — this experiment justifies the serving layer the
way §6.5 justifies the transformations: the transform is a one-time
cost, so a layer that amortises it across queries must show (a) warm
queries paying zero transform time, and (b) batched multi-source
traffic beating the same queries issued one-by-one against a cold
service.  Three phases over one dataset stand-in:

``cold-single``
    A fresh service per query: every request pays preparation and
    transform construction (the pre-serving-layer behaviour).
``warm-single``
    One service, sequential queries: the first request per analytic
    builds the artifact, every later one hits the catalog.
``warm-batched``
    One service, requests submitted in batches: catalog hits plus
    source dedup and shared fan-out.
"""

from __future__ import annotations

import io
import os
import random
import threading
import time
from typing import List

from repro.baselines.base import ALGORITHMS
from repro.bench.report import ExperimentReport
from repro.graph.datasets import load_dataset
from repro.service import AnalyticsService, GraphCatalog, QueryRequest


def _make_requests(
    name: str,
    num_nodes: int,
    count: int,
    algorithms: List[str],
    seed: int,
    transform: str,
) -> List[QueryRequest]:
    rng = random.Random(seed)
    requests = []
    for _ in range(count):
        algorithm = rng.choice(algorithms)
        if ALGORITHMS[algorithm].needs_source:
            requests.append(
                QueryRequest.single(
                    algorithm, name, rng.randrange(num_nodes), transform=transform
                )
            )
        else:
            requests.append(QueryRequest(algorithm, name, transform=transform))
    return requests


def service_throughput(
    scale: float = 1.0,
    *,
    dataset: str = "pokec",
    num_queries: int = 48,
    workers: int = 4,
    algorithms: List[str] = ("bfs", "sssp"),
    transform: str = "udt",
    seed: int = 7,
) -> ExperimentReport:
    """Queries/sec and latency percentiles across the three phases.

    Defaults to the physical (UDT) transform: it is the expensive one
    (10-60x the virtual overlay, Table 7), so it is where amortising
    transform work across a query stream matters most.
    """
    report = ExperimentReport(
        "Service throughput",
        f"{num_queries} {transform} queries on {dataset}, {workers} workers, "
        f"algorithms {'/'.join(algorithms)}",
    )
    graph = load_dataset(dataset, scale=scale)
    algorithms = list(algorithms)

    def requests_for(name: str) -> List[QueryRequest]:
        return _make_requests(
            name, graph.num_nodes, num_queries, algorithms, seed, transform
        )

    # -- cold-single: a fresh catalog per query, no reuse at all -------
    start = time.perf_counter()
    latencies = []
    for request in requests_for(dataset):
        with AnalyticsService(GraphCatalog(), workers=1) as service:
            service.register(dataset, graph)
            t0 = time.perf_counter()
            result = service.run(request)
            latencies.append(time.perf_counter() - t0)
            assert result.ok and not result.cache_hit
    cold_elapsed = time.perf_counter() - start
    _add_phase(report, "cold-single", num_queries, cold_elapsed, latencies, 0.0)

    # -- warm-single: shared catalog, sequential submission ------------
    with AnalyticsService(GraphCatalog(), workers=workers) as service:
        service.register(dataset, graph)
        for algorithm in algorithms:  # pre-warm one artifact per analytic
            service.run(_make_requests(
                dataset, graph.num_nodes, 1, [algorithm], 0, transform)[0])
        start = time.perf_counter()
        latencies = []
        for request in requests_for(dataset):
            t0 = time.perf_counter()
            result = service.run(request)
            latencies.append(time.perf_counter() - t0)
            assert result.ok and result.cache_hit
        warm_elapsed = time.perf_counter() - start
        _add_phase(
            report, "warm-single", num_queries, warm_elapsed, latencies,
            service.metrics.cache_hit_rate,
        )

    # -- warm-batched: shared catalog + coalesced submission -----------
    with AnalyticsService(GraphCatalog(), workers=workers) as service:
        service.register(dataset, graph)
        for algorithm in algorithms:
            service.run(_make_requests(
                dataset, graph.num_nodes, 1, [algorithm], 0, transform)[0])
        start = time.perf_counter()
        tickets = service.submit_batch(requests_for(dataset))
        results = [t.result() for t in tickets]
        batched_elapsed = time.perf_counter() - start
        assert all(r.ok and r.cache_hit for r in results)
        latencies = [r.timings.total_s for r in results]
        _add_phase(
            report, "warm-batched", num_queries, batched_elapsed, latencies,
            service.metrics.cache_hit_rate,
        )

    cold_qps = report.rows[0]["qps"]
    report.extras["warm_single_speedup"] = report.rows[1]["qps"] / cold_qps
    report.extras["warm_batched_speedup"] = report.rows[2]["qps"] / cold_qps
    return report


def service_backend_sweep(
    scale: float = 1.0,
    *,
    dataset: str = "pokec",
    num_queries: int = 48,
    workers_list: List[int] = (1, 2, 4),
    clients: int = 4,
    algorithms: List[str] = ("bfs", "sssp"),
    transform: str = "udt",
    seed: int = 7,
) -> ExperimentReport:
    """Threads vs processes on a warm multi-client workload.

    One row per ``(backend, workers)`` cell: ``clients`` concurrent
    client threads drain ``num_queries`` warm-cache queries through a
    shared service.  Warm is the honest comparison — a cold sweep
    measures transform construction (identical work on both backends),
    not execution concurrency.  The process rows additionally pay
    graph export, spec/reply pickling, and result IPC; whether that
    overhead is bought back depends on hardware parallelism, so the
    report records ``cpu_count`` and per-``workers`` speedup ratios in
    ``extras`` and leaves the verdict to the caller (the benchmark
    asserts processes win at >= 4 workers only on multi-core hosts;
    see ``docs/operations.md``).
    """
    report = ExperimentReport(
        "Service backend sweep",
        f"{num_queries} warm {transform} queries on {dataset}, "
        f"{clients} client threads, backends threads/processes, "
        f"workers {'/'.join(str(w) for w in workers_list)}",
    )
    graph = load_dataset(dataset, scale=scale)
    algorithms = list(algorithms)
    requests = _make_requests(
        dataset, graph.num_nodes, num_queries, algorithms, seed, transform
    )
    qps: dict = {}
    for backend in ("threads", "processes"):
        for workers in workers_list:
            with AnalyticsService(
                GraphCatalog(), workers=workers, backend=backend,
                queue_size=max(128, num_queries),
            ) as service:
                service.register(dataset, graph)
                for algorithm in algorithms:  # warm one artifact each
                    warmup = _make_requests(
                        dataset, graph.num_nodes, 1, [algorithm], 0, transform
                    )[0]
                    assert service.run(warmup).ok
                if backend == "processes":
                    # every worker must have hydrated before timing:
                    # run one query per worker so no timed request
                    # pays a worker's first graph/artifact load
                    for _ in range(workers):
                        assert service.run(requests[0]).ok

                latencies: List[float] = []
                lock = threading.Lock()

                def client(shard: List[QueryRequest]) -> None:
                    mine = []
                    for request in shard:
                        t0 = time.perf_counter()
                        result = service.run(request)
                        mine.append(time.perf_counter() - t0)
                        assert result.ok
                    with lock:
                        latencies.extend(mine)

                shards = [requests[i::clients] for i in range(clients)]
                threads = [
                    threading.Thread(target=client, args=(shard,))
                    for shard in shards if shard
                ]
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - start
                qps[(backend, workers)] = num_queries / elapsed
                from repro.service import percentile

                report.add_row(
                    backend=backend,
                    workers=workers,
                    queries=num_queries,
                    seconds=elapsed,
                    qps=qps[(backend, workers)],
                    p50_ms=percentile(latencies, 0.5) * 1e3,
                    p95_ms=percentile(latencies, 0.95) * 1e3,
                    cache_hit_rate=service.metrics.cache_hit_rate,
                    ipc_mb=service.metrics.summary()["ipc_bytes"] / 1e6,
                )
    report.extras["cpu_count"] = os.cpu_count() or 1
    for workers in workers_list:
        report.extras[f"processes_vs_threads_x{workers}"] = (
            qps[("processes", workers)] / qps[("threads", workers)]
        )
    return report


def service_trace_replay(
    scale: float = 1.0,
    *,
    dataset: str = "pokec",
    num_queries: int = 48,
    workers: int = 4,
    algorithms: List[str] = ("bfs", "sssp"),
    transform: str = "udt",
    seed: int = 7,
    batch: int = 8,
) -> ExperimentReport:
    """Record a synthetic stream once, replay it on both backends.

    The trace-driven counterpart of :func:`service_throughput`: the
    record phase captures ``num_queries`` requests plus their result
    digests into an in-memory JSONL trace, then each replay phase
    re-drives a fresh service from that trace and diffs every digest
    (:func:`repro.service.replay_trace`).  One row per phase; the
    digest columns are the point — a throughput number from a replay
    whose answers drifted is not a benchmark, it is a bug report.
    """
    from repro.service import TraceRecorder, dataset_graph_entry, replay_trace

    report = ExperimentReport(
        "Service trace replay",
        f"{num_queries} {transform} queries on {dataset} recorded once, "
        f"replayed on threads and processes ({workers} workers, "
        f"submit window {batch})",
    )
    graph = load_dataset(dataset, scale=scale)
    algorithms = list(algorithms)
    requests = _make_requests(
        dataset, graph.num_nodes, num_queries, algorithms, seed, transform
    )
    recipes = {
        dataset: dataset_graph_entry(
            dataset, scale=scale, fingerprint=graph.fingerprint()
        )
    }

    # -- record: drive the stream once, capturing requests + digests ---
    sink = io.StringIO()
    recorder = TraceRecorder(sink, graphs=recipes)
    with AnalyticsService(
        GraphCatalog(), workers=workers, recorder=recorder,
        queue_size=max(128, num_queries),
    ) as service:
        service.register(dataset, graph)
        start = time.perf_counter()
        tickets = service.submit_batch(requests)
        results = [t.result() for t in tickets]
        record_elapsed = time.perf_counter() - start
        assert all(r.ok for r in results)
    recorder.close()
    trace_text = sink.getvalue()
    report.add_row(
        phase="record",
        backend="threads",
        queries=num_queries,
        seconds=record_elapsed,
        qps=num_queries / record_elapsed if record_elapsed > 0 else float("inf"),
        digests_checked=0,
        digests_matched=0,
    )
    report.extras["trace_lines"] = trace_text.count("\n")
    report.extras["trace_bytes"] = len(trace_text)

    # -- replay: same trace, fresh service per backend -----------------
    for backend in ("threads", "processes"):
        from repro.service import load_trace

        trace = load_trace(io.StringIO(trace_text))
        replay = replay_trace(
            trace,
            backend=backend,
            workers=workers,
            queue_size=max(128, num_queries),
            batch=batch,
            graphs={dataset: graph},
        )
        summary = replay.summary()
        assert replay.ok, "\n".join(str(m) for m in replay.mismatches)
        report.add_row(
            phase=f"replay-{backend}",
            backend=backend,
            queries=replay.requests_submitted,
            seconds=replay.elapsed_s,
            qps=replay.qps,
            digests_checked=summary["digests_checked"],
            digests_matched=summary["digests_matched"],
        )
    # -- replay-http: same trace again, through the network edge -------
    from repro.service import load_trace
    from repro.service.api import ThreadedApiServer, replay_trace_http

    trace = load_trace(io.StringIO(trace_text))
    with AnalyticsService(
        GraphCatalog(), workers=workers, queue_size=max(128, num_queries),
    ) as service:
        service.register(dataset, graph)
        with ThreadedApiServer(service) as handle:
            replay = replay_trace_http(
                trace, handle.address, batch=batch, check_graphs=True,
            )
        summary = replay.summary()
        assert replay.ok, "\n".join(str(m) for m in replay.mismatches)
        metrics = service.metrics.summary()
        report.add_row(
            phase="replay-http",
            backend="threads",
            queries=replay.requests_submitted,
            seconds=replay.elapsed_s,
            qps=replay.qps,
            digests_checked=summary["digests_checked"],
            digests_matched=summary["digests_matched"],
            http_p50_ms=metrics["http_p50_ms"],
            http_p95_ms=metrics["http_p95_ms"],
            http_rate_limited=metrics["http_rate_limited"],
        )

    report.extras["replay_threads_vs_record"] = (
        report.rows[1]["qps"] / report.rows[0]["qps"]
    )
    report.extras["replay_http_vs_threads"] = (
        report.rows[3]["qps"] / report.rows[1]["qps"]
    )
    return report


def _add_phase(
    report: ExperimentReport,
    phase: str,
    count: int,
    elapsed: float,
    latencies: List[float],
    hit_rate: float,
) -> None:
    from repro.service import percentile

    report.add_row(
        phase=phase,
        queries=count,
        seconds=elapsed,
        qps=count / elapsed if elapsed > 0 else float("inf"),
        p50_ms=percentile(latencies, 0.5) * 1e3,
        p95_ms=percentile(latencies, 0.95) * 1e3,
        cache_hit_rate=hit_rate,
    )
