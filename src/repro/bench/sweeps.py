"""Scaling sweeps: how Tigr's benefit depends on the input's shape.

Two studies that flesh out the paper's Figure 1 narrative ("G (high
irregularity) → G' (low irregularity)") with measurements:

* :func:`skew_sweep` — speedup of Tigr-V+ over the baseline as the
  degree-distribution skew grows (power-law exponent falls, max
  degree rises).  Expected: speedup grows with skew and is ~1 on
  regular graphs — Tigr removes irregularity, so its benefit is a
  function of how much there is to remove.
* :func:`reordering_comparison` — degree sorting / BFS ordering
  (the classical mitigations) vs the virtual transformation.
  Expected: orderings recover part of the warp efficiency, but hubs
  still serialise their warps, so Tigr-V+ stays ahead — and the two
  compose (Tigr on a reordered graph is no worse).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.algorithms import sssp
from repro.bench.report import ExperimentReport
from repro.core.virtual import virtual_transform
from repro.engine.push import EngineOptions
from repro.engine.schedule import NodeScheduler, VirtualScheduler
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import GPUSimulator
from repro.graph.datasets import load_dataset
from repro.graph.generators import configuration_power_law, regular_ring
from repro.graph.reorder import bfs_ordered, degree_sorted
from repro.graph.stats import degree_stats


def _run(scheduler, source, config):
    simulator = GPUSimulator(config)
    result = sssp(scheduler, source, options=EngineOptions(worklist=True),
                  simulator=simulator)
    return result


def skew_sweep(
    *,
    num_nodes: int = 8_000,
    target_edges: int = 70_000,
    max_degrees: Sequence[int] = (16, 64, 256, 1_024, 4_000),
    degree_bound: int = 10,
    seed: Optional[int] = 1,
    config: Optional[GPUConfig] = None,
) -> ExperimentReport:
    """Tigr-V+ speedup as a function of maximum degree (fixed size).

    All graphs share node/edge counts; only the tail length changes.
    The last row is a degree-regular ring — the zero-irregularity
    control.
    """
    report = ExperimentReport(
        "Sweep skew", "Tigr-V+ speedup vs degree-distribution skew (SSSP)"
    )
    config = config or GPUConfig()
    for max_degree in max_degrees:
        graph = configuration_power_law(
            num_nodes, exponent=2.0, min_degree=2, max_degree=max_degree,
            target_edges=target_edges, seed=seed, weight_range=(1, 64),
        )
        report.add_row(**_speedup_row(f"dmax={max_degree}", graph, degree_bound, config))
    ring = regular_ring(num_nodes, max(2, target_edges // num_nodes),
                        weight_range=(1, 64), seed=seed)
    report.add_row(**_speedup_row("regular ring", ring, degree_bound, config))
    return report


def _speedup_row(label: str, graph, degree_bound: int, config: GPUConfig) -> dict:
    source = int(np.argmax(graph.out_degrees()))
    stats = degree_stats(graph)
    base = _run(NodeScheduler(graph), source, config)
    virtual = virtual_transform(graph, degree_bound, coalesced=True)
    tigr = _run(VirtualScheduler(virtual), source, config)
    assert np.allclose(base.values, tigr.values)
    return dict(
        graph=label,
        d_max=stats.max_degree,
        cv=round(stats.coefficient_of_variation, 2),
        baseline_ms=base.metrics.total_time_ms,
        tigr_ms=tigr.metrics.total_time_ms,
        speedup=base.metrics.total_time_ms / tigr.metrics.total_time_ms,
        base_warp_eff=base.metrics.warp_efficiency,
        tigr_warp_eff=tigr.metrics.warp_efficiency,
    )


def reordering_comparison(
    *,
    dataset: str = "livejournal",
    degree_bound: int = 10,
    scale: float = 1.0,
    seed: Optional[int] = None,
    config: Optional[GPUConfig] = None,
) -> ExperimentReport:
    """Node reordering vs virtual transformation (SSSP).

    Four configurations on the same graph: original ids, degree-sorted
    ids, BFS-ordered ids — all baseline-scheduled — and Tigr-V+ on the
    original ids.  A final row runs Tigr-V+ *on* the degree-sorted
    graph (they compose).
    """
    report = ExperimentReport(
        "Sweep reorder", f"reordering vs transformation (SSSP, {dataset})"
    )
    config = config or GPUConfig()
    graph = load_dataset(dataset, scale=scale, seed=seed)

    variants = {
        "original ids": graph,
        "degree-sorted": degree_sorted(graph),
        "bfs-ordered": bfs_ordered(graph),
    }
    results = {}
    for label, g in variants.items():
        source = int(np.argmax(g.out_degrees()))
        run = _run(NodeScheduler(g), source, config)
        results[label] = run
        report.add_row(
            config=label, time_ms=run.metrics.total_time_ms,
            warp_efficiency=run.metrics.warp_efficiency,
        )
    for label, g in (("tigr-v+ (original)", graph),
                     ("tigr-v+ (degree-sorted)", degree_sorted(graph))):
        source = int(np.argmax(g.out_degrees()))
        run = _run(VirtualScheduler(virtual_transform(g, degree_bound, coalesced=True)),
                   source, config)
        report.add_row(
            config=label, time_ms=run.metrics.total_time_ms,
            warp_efficiency=run.metrics.warp_efficiency,
        )
    return report
