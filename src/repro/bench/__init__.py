"""Experiment harness: one entry point per paper table/figure.

Every quantitative artifact of the paper's evaluation (§6) has a
function here that regenerates it on the synthetic stand-ins:

========================  =============================================
:func:`table1_split_properties`   Table 1 — split transformation properties
:func:`table3_datasets`           Table 3 — dataset statistics
:func:`table4_performance`        Table 4 — framework comparison (+ OOM)
:func:`figure13_speedups`         Figure 13 — Tigr speedups over baseline
:func:`table5_udt_space`          Table 5 — UDT space cost
:func:`table6_virtual_space`      Table 6 — virtual transformation space cost
:func:`table7_transform_time`     Table 7 — transformation time cost
:func:`table8_sssp_profile`       Table 8 — SSSP performance details
:func:`degree_profile`            §2.3 — power-law degree profile
========================  =============================================

Each returns an :class:`~repro.bench.report.ExperimentReport` holding
raw rows plus a formatted table; the ``benchmarks/`` pytest files are
thin wrappers that time these and assert the expected *shape* (who
wins, by roughly what factor) — see EXPERIMENTS.md.
"""

from repro.bench.cache_policy import cache_policy
from repro.bench.chart import bar_chart, render_bar
from repro.bench.ablations import (
    k_sweep_physical,
    k_sweep_virtual,
    optimization_grid,
    push_vs_pull,
    topology_race,
)
from repro.bench.figures import degree_profile, figure13_speedups
from repro.bench.hardwired import hardwired_comparison
from repro.bench.kernels import kernel_backends
from repro.bench.multisource import multisource_lanes
from repro.bench.orthogonality import device_generation_sweep, multigpu_orthogonality
from repro.bench.report import ExperimentReport, format_table, geometric_mean
from repro.bench.scaling import speedup_scaling, transform_scaling
from repro.bench.service import (
    service_backend_sweep,
    service_throughput,
    service_trace_replay,
)
from repro.bench.sharded import sharded_scaling
from repro.bench.sweeps import reordering_comparison, skew_sweep
from repro.bench.tables import (
    table1_split_properties,
    table3_datasets,
    table4_performance,
    table5_udt_space,
    table6_virtual_space,
    table7_transform_time,
    table8_sssp_profile,
)

__all__ = [
    "ExperimentReport",
    "format_table",
    "geometric_mean",
    "table1_split_properties",
    "table3_datasets",
    "table4_performance",
    "table5_udt_space",
    "table6_virtual_space",
    "table7_transform_time",
    "table8_sssp_profile",
    "figure13_speedups",
    "degree_profile",
    "k_sweep_virtual",
    "k_sweep_physical",
    "optimization_grid",
    "topology_race",
    "push_vs_pull",
    "hardwired_comparison",
    "transform_scaling",
    "speedup_scaling",
    "cache_policy",
    "service_backend_sweep",
    "service_throughput",
    "service_trace_replay",
    "sharded_scaling",
    "multisource_lanes",
    "kernel_backends",
    "skew_sweep",
    "reordering_comparison",
    "bar_chart",
    "render_bar",
    "multigpu_orthogonality",
    "device_generation_sweep",
]
