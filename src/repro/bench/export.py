"""Persisting experiment reports as machine-readable artifacts.

``python -m repro.bench --json results/`` writes one JSON file per
experiment next to the printed tables, so downstream analysis
(plotting, regression tracking across library versions) never has to
scrape text output.  The schema is deliberately flat: metadata plus
the report's rows and extras exactly as produced.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Union

from repro.bench.report import ExperimentReport

PathLike = Union[str, "os.PathLike[str]"]

#: bumped when the JSON layout changes.
SCHEMA_VERSION = 1


def report_to_dict(report: ExperimentReport) -> Dict[str, Any]:
    """The JSON-ready representation of a report."""
    return {
        "schema_version": SCHEMA_VERSION,
        "experiment": report.experiment,
        "description": report.description,
        "rows": [_jsonable(row) for row in report.rows],
        "extras": _jsonable(report.extras),
    }


def save_report(report: ExperimentReport, path: PathLike) -> None:
    """Write one report as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report_to_dict(report), handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_report(path: PathLike) -> ExperimentReport:
    """Read a report saved by :func:`save_report`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    report = ExperimentReport(
        experiment=payload["experiment"],
        description=payload["description"],
    )
    report.rows.extend(payload["rows"])
    report.extras.update(payload["extras"])
    return report


def export_key(experiment_name: str) -> str:
    """Filesystem-safe file stem for an experiment name."""
    return (
        experiment_name.lower()
        .replace(" ", "_").replace(".", "").replace("/", "-")
    )


def compare_results(
    baseline_dir: PathLike,
    candidate_dir: PathLike,
    *,
    tolerance: float = 0.10,
) -> Dict[str, Any]:
    """Diff two result directories written by ``--json``.

    The regression check a CI pipeline wants: for every experiment
    present in both directories, compare each numeric cell and report
    relative drifts beyond ``tolerance`` plus any structural changes
    (rows or columns appearing/disappearing).  Non-numeric cells
    (winners, OOM markers) must match exactly.

    Returns ``{"experiments": int, "drifts": [...], "structural": [...]}``
    — empty lists mean the runs agree.
    """
    import glob

    drifts = []
    structural = []
    compared = 0
    baseline_files = {
        os.path.basename(p): p
        for p in glob.glob(os.path.join(str(baseline_dir), "*.json"))
    }
    candidate_files = {
        os.path.basename(p): p
        for p in glob.glob(os.path.join(str(candidate_dir), "*.json"))
    }
    for name in sorted(set(baseline_files) - set(candidate_files)):
        structural.append(f"experiment removed: {name}")
    for name in sorted(set(candidate_files) - set(baseline_files)):
        structural.append(f"experiment added: {name}")

    for name in sorted(set(baseline_files) & set(candidate_files)):
        compared += 1
        before = load_report(baseline_files[name])
        after = load_report(candidate_files[name])
        if len(before.rows) != len(after.rows):
            structural.append(
                f"{name}: row count {len(before.rows)} -> {len(after.rows)}"
            )
            continue
        for index, (old, new) in enumerate(zip(before.rows, after.rows)):
            if set(old) != set(new):
                structural.append(f"{name}[{index}]: columns changed")
                continue
            for key, old_value in old.items():
                new_value = new[key]
                if isinstance(old_value, (int, float)) and isinstance(
                    new_value, (int, float)
                ) and not isinstance(old_value, bool):
                    denom = max(abs(old_value), 1e-12)
                    drift = abs(new_value - old_value) / denom
                    if drift > tolerance:
                        drifts.append(
                            f"{name}[{index}].{key}: {old_value} -> {new_value} "
                            f"({drift:+.0%})"
                        )
                elif old_value != new_value:
                    drifts.append(
                        f"{name}[{index}].{key}: {old_value!r} -> {new_value!r}"
                    )
    return {"experiments": compared, "drifts": drifts, "structural": structural}


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays and other non-JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        return value.item()
    if hasattr(value, "tolist") and callable(value.tolist):  # numpy array
        return value.tolist()
    if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
        return str(value)
    return value
